//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro with a `#![proptest_config(ProptestConfig::with_cases(N))]` inner
//! attribute, strategies built from `any::<T>()` and integer / float ranges,
//! and `prop_assert!` / `prop_assert_eq!`.  Inputs are sampled from a
//! deterministic RNG seeded per test function, so failures reproduce; there
//! is no shrinking.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestRng,
    };
}

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed from the test-function name and case index, so every case is
    /// deterministic and distinct.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(seed ^ ((case as u64) << 32)),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Sample one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy for the full domain of `T` (`any::<T>()`).
pub struct Any<T>(std::marker::PhantomData<T>);

/// Uniform over the whole domain of `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// `prop_assert!` — plain `assert!` (no shrinking in the stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// `prop_assert_eq!` — plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// `prop_assert_ne!` — plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Define property tests: each `fn` runs `cases` times with fresh random
/// inputs sampled from its strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::sample(&($strategy), &mut rng);
                    )*
                    let _ = &mut rng;
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),*) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 5u32..10, y in 0.25f64..0.75) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
        }

        #[test]
        fn any_is_deterministic_per_case(bits in any::<u64>()) {
            // Re-sampling the same case must give the same value.
            let _ = bits;
        }
    }
}
