//! Offline stand-in for `criterion`.
//!
//! Exposes the macro/API surface the `hc-bench` bench targets use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}` and
//! `Bencher::iter` — backed by a simple wall-clock harness: after one warmup
//! iteration it times `sample_size` iterations and reports min / mean.
//! No statistics, plots or baselines; the point is that `cargo bench`
//! exercises every experiment code path and prints comparable timings.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level bench context, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: if self.default_sample_size == 0 {
                10
            } else {
                self.default_sample_size
            },
            _criterion: self,
        }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(name, f);
        g.finish();
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let label = if self.name.is_empty() {
            name.to_string()
        } else {
            format!("{}/{name}", self.name)
        };
        report(&label, &bencher.samples);
        self
    }

    /// Finish the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to time.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `sample_size` executions of `f` after one warmup execution.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{label:<48} min {:>12?}  mean {:>12?}  ({} samples)",
        min,
        mean,
        samples.len()
    );
}

/// Define a function that runs a list of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running one or more groups, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_requested_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(4);
        let mut runs = 0u32;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 5, "1 warmup + 4 samples");
    }
}
