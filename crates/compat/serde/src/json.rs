//! JSON encoding and decoding over the [`Value`] data model —
//! the subset of `serde_json` this workspace uses.

use crate::{Deserialize, Error, Serialize, Value};
use std::fmt::Write as _;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    out
}

/// Serialize a value to a two-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> String {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    out
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Parse a JSON string into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that round-trips.
                let _ = write!(out, "{f:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, depth + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..(depth + 1) * width {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in sequence")),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}` in map")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::custom("unknown escape sequence")),
                    }
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "12", "-7", "1.5", "\"hi\\n\""] {
            let v = parse(text).unwrap();
            assert_eq!(parse(&to_string(&v)).unwrap(), v);
        }
    }

    #[test]
    fn nested_round_trip() {
        let text = r#"{"a": [1, 2.5, {"b": null}], "c": "x\"y"}"#;
        let v = parse(text).unwrap();
        assert_eq!(parse(&to_string(&v)).unwrap(), v);
        assert_eq!(parse(&to_string_pretty(&v)).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        let f = 0.123_456_789_012_345_68_f64;
        let v = Value::Float(f);
        match parse(&to_string(&v)).unwrap() {
            Value::Float(g) => assert_eq!(f, g),
            other => panic!("expected float, got {other:?}"),
        }
    }
}
