//! Offline stand-in for `serde`.
//!
//! The container this workspace builds in has no access to crates.io, so this
//! crate provides the subset of serde the workspace relies on, implemented
//! from scratch:
//!
//! * [`Serialize`] / [`Deserialize`] traits over a self-describing [`Value`]
//!   data model (maps, sequences, scalars) — the same externally-tagged shape
//!   real serde uses for enums, so swapping the real crate back in changes no
//!   on-disk schema.
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   proc-macro crate (re-exported here, like serde's `derive` feature).
//! * A [`json`] module with `to_string` / `to_string_pretty` / `from_str`,
//!   covering what `serde_json` would provide.
//!
//! Only the shapes this workspace actually derives are supported: structs
//! with named fields, newtype/tuple structs, and enums with unit, tuple and
//! struct variants.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// The self-describing data model values serialize into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with string keys, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the map entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the sequence elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Create an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn expected(what: &str, got: &Value) -> Error {
    Error::custom(format!("expected {what}, got {}", got.type_name()))
}

// ---------------------------------------------------------------------------
// Scalar impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    _ => return Err(expected("unsigned integer", v)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) => {
                        i64::try_from(n).map_err(|_| Error::custom("integer out of range"))?
                    }
                    _ => return Err(expected("integer", v)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::UInt(n) => Ok(n as f64),
            Value::Int(n) => Ok(n as f64),
            _ => Err(expected("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| expected("char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| expected("sequence", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected sequence of length {N}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_seq().ok_or_else(|| expected("2-tuple", v))?;
        if s.len() != 2 {
            return Err(Error::custom("expected sequence of length 2"));
        }
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_seq().ok_or_else(|| expected("3-tuple", v))?;
        if s.len() != 3 {
            return Err(Error::custom("expected sequence of length 3"));
        }
        Ok((
            A::from_value(&s[0])?,
            B::from_value(&s[1])?,
            C::from_value(&s[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| expected("map", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Support functions used by the derive-generated code
// ---------------------------------------------------------------------------

/// Deserialize one named field from a map's entries (missing keys behave as
/// `null`, so `Option` fields tolerate absence).
pub fn de_field<T: Deserialize>(map: &[(String, Value)], key: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("field `{key}`: {e}"))),
        None => {
            T::from_value(&Value::Null).map_err(|_| Error::custom(format!("missing field `{key}`")))
        }
    }
}

/// Deserialize one positional element from a sequence.
pub fn de_index<T: Deserialize>(seq: &[Value], index: usize) -> Result<T, Error> {
    match seq.get(index) {
        Some(v) => T::from_value(v).map_err(|e| Error::custom(format!("index {index}: {e}"))),
        None => Err(Error::custom(format!("missing element {index}"))),
    }
}

pub mod json;
