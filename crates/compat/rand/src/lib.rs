//! Offline stand-in for `rand` (0.8 API shape).
//!
//! Provides `StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods the
//! workload generators use (`gen`, `gen_bool`, `gen_range` over half-open and
//! inclusive integer ranges).  The generator is SplitMix64: deterministic,
//! fast, and statistically fine for synthesizing workload traces — the
//! workspace only relies on seed-determinism, not on matching the upstream
//! ChaCha streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling front-end, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// Sample uniformly from a range.  Generic over the output type like
    /// rand 0.8, so `let b: u8 = rng.gen_range(0..16)` infers the literals.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(&mut || self.next_u64())
    }
}

impl<T: RngCore> Rng for T {}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types sampleable uniformly over their whole domain.
pub trait Standard: Sized {
    /// Sample a value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Ranges that can be sampled uniformly, producing `T`.
pub trait SampleRange<T> {
    /// Sample from the range using the given entropy source.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = next() as u128 % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = next() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> f64 {
        self.start + unit_f64(next()) * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // Like upstream rand, expand the seed through the generator once
            // so consecutive small seeds give unrelated streams.
            let mut rng = StdRng { state: seed };
            let expanded = rng.next_u64();
            StdRng { state: expanded }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele et al.), public domain reference constants.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(b'a'..=b'z');
            assert!(w.is_ascii_lowercase());
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let s = rng.gen_range(0..=0usize);
            assert_eq!(s, 0);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
