//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! stand-in.
//!
//! Implemented directly over `proc_macro::TokenStream` (no `syn`/`quote`
//! available offline): a small item parser extracts the type's shape — named
//! structs, newtype/tuple structs, and enums with unit / tuple / struct
//! variants — and the impls are generated as source text.  Generics are not
//! supported (nothing in this workspace derives serde on a generic type).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

/// Derive `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().unwrap()
}

/// Derive `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().unwrap()
}

enum Shape {
    /// `struct S;`
    UnitStruct,
    /// `struct S { a: A, b: B }`
    NamedStruct(Vec<String>),
    /// `struct S(A, B);` — field count.
    TupleStruct(usize),
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    let keyword = loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = it.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            it.next(); // pub(crate) etc.
                        }
                    }
                } else if s == "struct" || s == "enum" {
                    break s;
                }
            }
            Some(_) => {}
            None => panic!("serde derive: no struct or enum found"),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };
    skip_generics(&mut it);
    let shape = if keyword == "struct" {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde derive: unexpected struct body {other:?}"),
        }
    } else {
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde derive: unexpected enum body {other:?}"),
        }
    };
    Item { name, shape }
}

/// Skip `<...>` generics after a type name (balanced on angle depth).
fn skip_generics(it: &mut TokenIter) {
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() != '<' {
            return;
        }
    } else {
        return;
    }
    let mut depth = 0i32;
    for tok in it.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        return;
                    }
                }
                _ => {}
            }
        }
    }
}

/// Parse `a: A, b: B, ...` field names from a brace-group stream.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let name = loop {
            match it.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                }
                Some(TokenTree::Ident(id)) => {
                    let s = id.to_string();
                    if s == "pub" {
                        if let Some(TokenTree::Group(g)) = it.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                it.next();
                            }
                        }
                    } else {
                        break Some(s);
                    }
                }
                Some(other) => panic!("serde derive: unexpected token in fields: {other:?}"),
                None => break None,
            }
        };
        let Some(name) = name else { break };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&mut it);
        fields.push(name);
    }
    fields
}

/// Consume a type up to (and including) the next top-level `,`.
fn skip_type(it: &mut TokenIter) {
    let mut angle_depth = 0i32;
    while let Some(tok) = it.peek() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    it.next();
                    return;
                }
                _ => {}
            }
        }
        it.next();
    }
}

/// Count fields in a paren-group (tuple struct / tuple variant) stream.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut it = stream.into_iter().peekable();
    while it.peek().is_some() {
        skip_type(&mut it);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        // Skip attributes before the variant name.
        let name = loop {
            match it.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    it.next();
                }
                Some(TokenTree::Ident(id)) => break Some(id.to_string()),
                Some(other) => panic!("serde derive: unexpected token in variants: {other:?}"),
                None => break None,
            }
        };
        let Some(name) = name else { break };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_top_level_fields(g.stream());
                it.next();
                VariantFields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                it.next();
                VariantFields::Named(f)
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        let mut angle_depth = 0i32;
        while let Some(tok) = it.peek() {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        it.next();
                        break;
                    }
                    _ => {}
                }
            }
            it.next();
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Map(vec![({vname:?}.to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(vec![({vname:?}.to_string(), ::serde::Value::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![({vname:?}.to_string(), ::serde::Value::Map(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::UnitStruct => format!("{{ let _ = v; Ok({name}) }}"),
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(m, {f:?})?"))
                .collect();
            format!(
                "{{\n\
                     let m = v.as_map().ok_or_else(|| ::serde::Error::custom(\
                         \"expected map for struct {name}\"))?;\n\
                     Ok({name} {{ {} }})\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::de_index(s, {i})?"))
                .collect();
            format!(
                "{{\n\
                     let s = v.as_seq().ok_or_else(|| ::serde::Error::custom(\
                         \"expected sequence for struct {name}\"))?;\n\
                     Ok({name}({}))\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(1) => Some(format!(
                            "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::de_index(s, {i})?"))
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let s = inner.as_seq().ok_or_else(|| ::serde::Error::custom(\
                                         \"expected sequence for variant {vname}\"))?;\n\
                                     Ok({name}::{vname}({}))\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| format!("{f}: ::serde::de_field(m, {f:?})?"))
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                     let m = inner.as_map().ok_or_else(|| ::serde::Error::custom(\
                                         \"expected map for variant {vname}\"))?;\n\
                                     Ok({name}::{vname} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {}\n\
                         other => Err(::serde::Error::custom(format!(\
                             \"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                         let (tag, inner) = (&m[0].0, &m[0].1);\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {}\n\
                             other => Err(::serde::Error::custom(format!(\
                                 \"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(::serde::Error::custom(\"expected string or single-key map for enum {name}\")),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
