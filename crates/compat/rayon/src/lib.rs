//! Offline stand-in for `rayon`.
//!
//! Implements the small slice of the rayon API this workspace uses —
//! `par_iter()` / `into_par_iter()` followed by `.map(...).collect()` — with
//! real data parallelism over `std::thread::scope`.  Items are split into one
//! contiguous chunk per available core; chunk results are concatenated in
//! order, so collected output is identical to the sequential equivalent.

#![forbid(unsafe_code)]

/// The rayon-style prelude: import the parallel-iterator extension traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads to fan out over.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Order-preserving parallel map over a slice.
pub fn par_map_slice<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Order-preserving parallel map over owned items.
pub fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Sync + 'a;
    /// Create a parallel iterator over references.
    fn par_iter(&'a self) -> ParSliceIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParSliceIter<'a, T> {
        ParSliceIter { items: self }
    }
}

impl<'a, T: Sync + 'a, const N: usize> IntoParallelRefIterator<'a> for [T; N] {
    type Item = T;
    fn par_iter(&'a self) -> ParSliceIter<'a, T> {
        ParSliceIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParSliceIter<'a, T> {
        ParSliceIter { items: self }
    }
}

/// `into_par_iter()` on owned collections.
pub trait IntoParallelIterator {
    /// Owned item type.
    type Item: Send;
    /// Create a parallel iterator over owned items.
    fn into_par_iter(self) -> ParVecIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParVecIter<T> {
        ParVecIter { items: self }
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParSliceIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParSliceIter<'a, T> {
    /// Map each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParSliceMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParSliceMap {
            items: self.items,
            f,
        }
    }
}

/// Pending parallel map over a slice.
pub struct ParSliceMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParSliceMap<'a, T, F> {
    /// Execute the map and collect the results in input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromIterator<R>,
    {
        par_map_slice(self.items, self.f).into_iter().collect()
    }
}

/// Parallel iterator over owned items.
pub struct ParVecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParVecIter<T> {
    /// Map each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParVecMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParVecMap {
            items: self.items,
            f,
        }
    }
}

/// Pending parallel map over owned items.
pub struct ParVecMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParVecMap<T, F> {
    /// Execute the map and collect the results in input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        par_map_vec(self.items, self.f).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_preserves_order() {
        let v: Vec<u32> = (0..1000).collect();
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_preserves_order() {
        let v: Vec<String> = (0..257).map(|i| i.to_string()).collect();
        let out: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 257);
        assert_eq!(out[0], 1);
        assert_eq!(out[256], 3);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }
}
