//! Offline stand-in for `rayon`.
//!
//! Implements the small slice of the rayon API this workspace uses —
//! `par_iter()` / `into_par_iter()` followed by `.map(...).collect()`, plus
//! `map_init` for per-worker scratch state — with real data parallelism over
//! `std::thread::scope`.  Items are split into one contiguous chunk per
//! available core; chunk results are concatenated in order, so collected
//! output is identical to the sequential equivalent.
//!
//! The worker count honours (in priority order) the process-wide cap set by
//! [`set_thread_cap`], the `RAYON_NUM_THREADS` environment variable, and the
//! machine's available parallelism.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// The rayon-style prelude: import the parallel-iterator extension traits.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Process-wide worker cap; 0 = no cap set.
static THREAD_CAP: AtomicUsize = AtomicUsize::new(0);

/// Cap the number of worker threads every later parallel call may use.
/// `0` removes the cap.  (Real rayon configures this through a thread-pool
/// builder; the stand-in exposes the cap directly.)
pub fn set_thread_cap(threads: usize) {
    THREAD_CAP.store(threads, Ordering::Relaxed);
}

/// Number of worker threads to fan out over: the [`set_thread_cap`] cap if
/// set, else `RAYON_NUM_THREADS` if set and valid, else the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    let cap = THREAD_CAP.load(Ordering::Relaxed);
    if cap > 0 {
        return cap;
    }
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Order-preserving parallel map over a slice.
pub fn par_map_slice<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Order-preserving parallel map over a slice with per-worker state: `init`
/// runs once per worker thread and the resulting value is threaded through
/// every call that worker performs — rayon's `map_init`.  A serial fallback
/// (one worker) calls `init` exactly once.
pub fn par_map_slice_init<'a, T, S, R, I, F>(items: &'a [T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &'a T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        let f = &f;
        let init = &init;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| {
                s.spawn(move || {
                    let mut state = init();
                    c.iter().map(|item| f(&mut state, item)).collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Order-preserving parallel map over owned items.
pub fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items.into_iter();
    loop {
        let chunk: Vec<T> = items.by_ref().take(chunk_len).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Sync + 'a;
    /// Create a parallel iterator over references.
    fn par_iter(&'a self) -> ParSliceIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParSliceIter<'a, T> {
        ParSliceIter { items: self }
    }
}

impl<'a, T: Sync + 'a, const N: usize> IntoParallelRefIterator<'a> for [T; N] {
    type Item = T;
    fn par_iter(&'a self) -> ParSliceIter<'a, T> {
        ParSliceIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParSliceIter<'a, T> {
        ParSliceIter { items: self }
    }
}

/// `into_par_iter()` on owned collections.
pub trait IntoParallelIterator {
    /// Owned item type.
    type Item: Send;
    /// Create a parallel iterator over owned items.
    fn into_par_iter(self) -> ParVecIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParVecIter<T> {
        ParVecIter { items: self }
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParSliceIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParSliceIter<'a, T> {
    /// Map each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParSliceMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParSliceMap {
            items: self.items,
            f,
        }
    }

    /// Map each item through `f` in parallel with per-worker state created by
    /// `init` (rayon's `map_init`): one `S` per worker thread, reused across
    /// every item that worker processes.
    pub fn map_init<S, R, I, F>(self, init: I, f: F) -> ParSliceMapInit<'a, T, I, F>
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &'a T) -> R + Sync,
    {
        ParSliceMapInit {
            items: self.items,
            init,
            f,
        }
    }
}

/// Pending parallel map over a slice.
pub struct ParSliceMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParSliceMap<'a, T, F> {
    /// Execute the map and collect the results in input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromIterator<R>,
    {
        par_map_slice(self.items, self.f).into_iter().collect()
    }
}

/// Pending parallel `map_init` over a slice.
pub struct ParSliceMapInit<'a, T, I, F> {
    items: &'a [T],
    init: I,
    f: F,
}

impl<'a, T: Sync, I, F> ParSliceMapInit<'a, T, I, F> {
    /// Execute the map and collect the results in input order.
    pub fn collect<C, S, R>(self) -> C
    where
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, &'a T) -> R + Sync,
        C: FromIterator<R>,
    {
        par_map_slice_init(self.items, self.init, self.f)
            .into_iter()
            .collect()
    }
}

/// Parallel iterator over owned items.
pub struct ParVecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParVecIter<T> {
    /// Map each item through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParVecMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParVecMap {
            items: self.items,
            f,
        }
    }
}

/// Pending parallel map over owned items.
pub struct ParVecMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParVecMap<T, F> {
    /// Execute the map and collect the results in input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        par_map_vec(self.items, self.f).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_preserves_order() {
        let v: Vec<u32> = (0..1000).collect();
        let doubled: Vec<u32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_preserves_order() {
        let v: Vec<String> = (0..257).map(|i| i.to_string()).collect();
        let out: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 257);
        assert_eq!(out[0], 1);
        assert_eq!(out[256], 3);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn map_init_preserves_order_and_reuses_state() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let v: Vec<u32> = (0..500).collect();
        let inits = AtomicUsize::new(0);
        let out: Vec<u32> = v
            .par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0u32 // per-worker accumulator, proves state is writable
                },
                |acc, x| {
                    *acc = acc.wrapping_add(*x);
                    x * 3
                },
            )
            .collect();
        assert_eq!(out, (0..500).map(|x| x * 3).collect::<Vec<_>>());
        let n = inits.load(Ordering::Relaxed);
        // One init per worker; far fewer than one per item.  (The exact
        // worker count may be perturbed by the sibling thread-cap test.)
        assert!(n >= 1, "init must run at least once");
        assert!(n < 500, "init must not run per item: {n}");
    }

    #[test]
    fn thread_cap_limits_workers() {
        crate::set_thread_cap(1);
        assert_eq!(crate::current_num_threads(), 1);
        crate::set_thread_cap(3);
        assert_eq!(crate::current_num_threads(), 3);
        crate::set_thread_cap(0);
        assert!(crate::current_num_threads() >= 1);
    }
}
