//! Streaming trace sources.
//!
//! A [`TraceSource`] is a resettable, chunked iterator of [`DynUop`]s with a
//! stable header (name, category, length, optional content digest) known
//! before the first µop is produced.  It is the abstraction the simulator and
//! the campaign grid consume: a fully materialized [`Trace`] is just one
//! implementation ([`MaterializedSource`]); on-disk `.uoptrace` files
//! ([`crate::format::FileSource`]) and phase-structured generators
//! ([`crate::phase::PhasedSource`]) stream µops in O(chunk) memory instead of
//! O(trace) per worker.
//!
//! Contract:
//!
//! * `header().len` is the exact number of µops the source yields between a
//!   `reset()` and exhaustion — consumers size their runs from it;
//! * `fill(out, max)` appends at most `max` µops to `out` and returns how
//!   many were appended; `Ok(0)` means the source is exhausted;
//! * `reset()` rewinds to the first µop and must be called before the first
//!   `fill` of every pass (warmup runs replay the same source repeatedly);
//! * two passes over the same source yield identical µop sequences.

use crate::format::TraceError;
use crate::trace::Trace;
use hc_isa::DynUop;

/// Preferred number of µops per [`TraceSource::fill`] call: large enough to
/// amortize per-chunk overhead, small enough to keep streaming memory flat.
pub const TRACE_SOURCE_CHUNK: usize = 4096;

/// The stable identity of a trace source, known before any µop is produced.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHeader {
    /// Human-readable trace name (benchmark or app identifier).
    pub name: String,
    /// Workload category label — a single Table 2 category or a `mix(...)`
    /// label when the stream interleaves several.
    pub category: Option<String>,
    /// Exact number of µops one full pass yields.
    pub len: u64,
    /// FNV-1a content digest of the encoded µop stream, when the source is
    /// backed by a recorded file (used to content-address cache keys).
    pub digest: Option<u64>,
}

impl TraceHeader {
    /// Header describing a materialized trace (no content digest).
    pub fn of_trace(trace: &Trace) -> TraceHeader {
        TraceHeader {
            name: trace.name.clone(),
            category: trace.category.clone(),
            len: trace.len() as u64,
            digest: None,
        }
    }
}

/// A resettable, chunked stream of dynamic µops.
pub trait TraceSource: Send {
    /// The source's stable header.
    fn header(&self) -> &TraceHeader;

    /// Rewind to the first µop.
    fn reset(&mut self) -> Result<(), TraceError>;

    /// Append at most `max` µops to `out`; `Ok(0)` means exhausted.
    fn fill(&mut self, out: &mut Vec<DynUop>, max: usize) -> Result<usize, TraceError>;
}

/// Drain `source` from its current position into a vector (test / tooling
/// helper; defeats the purpose of streaming for large traces).
pub fn drain_source(source: &mut dyn TraceSource) -> Result<Vec<DynUop>, TraceError> {
    let mut uops = Vec::new();
    while source.fill(&mut uops, TRACE_SOURCE_CHUNK)? > 0 {}
    Ok(uops)
}

/// A [`TraceSource`] over a fully materialized [`Trace`].
pub struct MaterializedSource {
    trace: Trace,
    header: TraceHeader,
    pos: usize,
}

impl MaterializedSource {
    /// Wrap a trace.
    pub fn new(trace: Trace) -> MaterializedSource {
        let header = TraceHeader::of_trace(&trace);
        MaterializedSource {
            trace,
            header,
            pos: 0,
        }
    }

    /// Recover the underlying trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl TraceSource for MaterializedSource {
    fn header(&self) -> &TraceHeader {
        &self.header
    }

    fn reset(&mut self) -> Result<(), TraceError> {
        self.pos = 0;
        Ok(())
    }

    fn fill(&mut self, out: &mut Vec<DynUop>, max: usize) -> Result<usize, TraceError> {
        let n = max.min(self.trace.len() - self.pos);
        out.extend_from_slice(&self.trace.uops[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_isa::uop::{AluOp, Uop, UopKind};

    fn trace(n: usize) -> Trace {
        let uops = (0..n)
            .map(|pc| DynUop::from_uop(Uop::new(pc as u64, UopKind::Alu(AluOp::Add))))
            .collect();
        Trace::from_uops("t", uops).with_category("int")
    }

    #[test]
    fn materialized_source_streams_in_chunks() {
        let t = trace(10);
        let mut src = MaterializedSource::new(t.clone());
        assert_eq!(src.header().len, 10);
        assert_eq!(src.header().name, "t");
        assert_eq!(src.header().category.as_deref(), Some("int"));
        let mut out = Vec::new();
        assert_eq!(src.fill(&mut out, 4).unwrap(), 4);
        assert_eq!(src.fill(&mut out, 4).unwrap(), 4);
        assert_eq!(src.fill(&mut out, 4).unwrap(), 2);
        assert_eq!(src.fill(&mut out, 4).unwrap(), 0);
        assert_eq!(out, t.uops);
    }

    #[test]
    fn reset_replays_identically() {
        let mut src = MaterializedSource::new(trace(7));
        let first = drain_source(&mut src).unwrap();
        src.reset().unwrap();
        let second = drain_source(&mut src).unwrap();
        assert_eq!(first, second);
        assert_eq!(first.len(), 7);
    }
}
