//! Phase-structured workloads: time-varying compositions of
//! [`WorkloadProfile`]s.
//!
//! Real applications move through phases — an encryption pass, then a
//! table-driven decode loop, then pointer chasing — and the steering and
//! width-predictor policies see non-stationary operand-width statistics as a
//! result.  A [`PhaseSchedule`] names an ordered list of `(profile, µops)`
//! phases; [`PhasedSource`] streams the concatenation one phase at a time
//! (O(phase) memory), and [`PhaseSchedule::materialize`] builds the identical
//! trace eagerly (the two are equal by construction: each phase is generated
//! by the same deterministic profile with the same seed either way).

use crate::format::TraceError;
use crate::profile::WorkloadProfile;
use crate::source::{TraceHeader, TraceSource};
use crate::trace::{mix_category, Trace};
use hc_isa::DynUop;
use serde::{Deserialize, Serialize};

/// One phase: a workload profile run for a fixed µop budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// The profile generating this phase (its own `trace_len` is ignored).
    pub profile: WorkloadProfile,
    /// Dynamic µops this phase contributes.
    pub uops: usize,
}

/// An ordered, named composition of phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSchedule {
    /// Schedule name — the trace name consumers see.
    pub name: String,
    /// The phases, in execution order.
    pub phases: Vec<Phase>,
}

impl PhaseSchedule {
    /// An empty schedule; add phases with [`PhaseSchedule::phase`].
    pub fn new(name: impl Into<String>) -> PhaseSchedule {
        PhaseSchedule {
            name: name.into(),
            phases: Vec::new(),
        }
    }

    /// Append a phase.
    pub fn phase(mut self, profile: WorkloadProfile, uops: usize) -> PhaseSchedule {
        self.phases.push(Phase { profile, uops });
        self
    }

    /// Total µops one pass over the schedule yields.
    pub fn total_uops(&self) -> u64 {
        self.phases.iter().map(|p| p.uops as u64).sum()
    }

    /// The category label of the composition: the single shared category, or
    /// a `mix(...)` of the distinct phase categories.
    pub fn category(&self) -> Option<String> {
        mix_category(self.phases.iter().map(|p| p.profile.category.as_deref()))
    }

    /// The header a [`PhasedSource`] over this schedule reports.
    pub fn header(&self) -> TraceHeader {
        TraceHeader {
            name: self.name.clone(),
            category: self.category(),
            len: self.total_uops(),
            digest: None,
        }
    }

    /// Generate one phase's trace.
    fn generate_phase(&self, idx: usize) -> Trace {
        let phase = &self.phases[idx];
        phase.profile.clone().with_trace_len(phase.uops).generate()
    }

    /// Build the full trace eagerly — byte-identical to what
    /// [`PhasedSource`] streams.
    pub fn materialize(&self) -> Trace {
        let mut trace = Trace::new(self.name.clone());
        for idx in 0..self.phases.len() {
            trace.extend(&self.generate_phase(idx));
        }
        trace
    }
}

/// A [`TraceSource`] that generates a [`PhaseSchedule`] one phase at a time.
pub struct PhasedSource {
    schedule: PhaseSchedule,
    header: TraceHeader,
    phase_idx: usize,
    current: Option<Trace>,
    pos: usize,
}

impl PhasedSource {
    /// Stream `schedule`.
    pub fn new(schedule: PhaseSchedule) -> PhasedSource {
        let header = schedule.header();
        PhasedSource {
            schedule,
            header,
            phase_idx: 0,
            current: None,
            pos: 0,
        }
    }
}

impl TraceSource for PhasedSource {
    fn header(&self) -> &TraceHeader {
        &self.header
    }

    fn reset(&mut self) -> Result<(), TraceError> {
        self.phase_idx = 0;
        self.current = None;
        self.pos = 0;
        Ok(())
    }

    fn fill(&mut self, out: &mut Vec<DynUop>, max: usize) -> Result<usize, TraceError> {
        let mut appended = 0;
        while appended < max {
            let exhausted = self
                .current
                .as_ref()
                .map(|t| self.pos >= t.len())
                .unwrap_or(true);
            if exhausted {
                if self.phase_idx >= self.schedule.phases.len() {
                    break;
                }
                self.current = Some(self.schedule.generate_phase(self.phase_idx));
                self.phase_idx += 1;
                self.pos = 0;
                continue;
            }
            let trace = self.current.as_ref().unwrap();
            let take = (max - appended).min(trace.len() - self.pos);
            out.extend_from_slice(&trace.uops[self.pos..self.pos + take]);
            self.pos += take;
            appended += take;
        }
        Ok(appended)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::KernelKind;
    use crate::source::drain_source;

    fn schedule() -> PhaseSchedule {
        PhaseSchedule::new("alt")
            .phase(
                WorkloadProfile::new("enc", vec![(KernelKind::RleCompress, 1.0)])
                    .with_category("enc"),
                600,
            )
            .phase(
                WorkloadProfile::new("tab", vec![(KernelKind::TableLookup, 1.0)])
                    .with_category("tab"),
                400,
            )
            .phase(
                WorkloadProfile::new("enc2", vec![(KernelKind::RleCompress, 1.0)])
                    .with_category("enc"),
                300,
            )
    }

    #[test]
    fn header_reports_totals_and_mix() {
        let s = schedule();
        assert_eq!(s.total_uops(), 1300);
        assert_eq!(s.category().as_deref(), Some("mix(enc+tab)"));
        let h = s.header();
        assert_eq!(h.name, "alt");
        assert_eq!(h.len, 1300);
        assert_eq!(h.digest, None);
    }

    #[test]
    fn streaming_equals_materialized() {
        let s = schedule();
        let eager = s.materialize();
        assert_eq!(eager.len(), 1300);
        assert_eq!(eager.category, s.category());
        let mut src = PhasedSource::new(s);
        let streamed = drain_source(&mut src).unwrap();
        assert_eq!(streamed, eager.uops);
        // And a reset replays identically.
        src.reset().unwrap();
        assert_eq!(drain_source(&mut src).unwrap(), eager.uops);
    }

    #[test]
    fn single_category_is_not_labelled_a_mix() {
        let s = PhaseSchedule::new("mono")
            .phase(
                WorkloadProfile::new("a", vec![(KernelKind::RleCompress, 1.0)])
                    .with_category("enc"),
                100,
            )
            .phase(
                WorkloadProfile::new("b", vec![(KernelKind::RleCompress, 1.0)])
                    .with_category("enc"),
                100,
            );
        assert_eq!(s.category().as_deref(), Some("enc"));
    }
}
