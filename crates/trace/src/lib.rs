//! # hc-trace
//!
//! Workload substrate for the helper-cluster reproduction: synthetic kernel
//! programs, an interpreter that turns them into dynamic µop traces with real
//! values, per-benchmark workload profiles (SPEC Int 2000 and the Table 2
//! categories) and the trace-level analyses behind the paper's
//! characterisation figures.
//!
//! The paper evaluated on proprietary IA-32 traces; see `DESIGN.md`
//! ("Substitutions") for why value-accurate synthetic traces exercise the same
//! steering decision paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod categories;
pub mod format;
pub mod interp;
pub mod kernels;
pub mod phase;
pub mod profile;
pub mod program;
pub mod source;
pub mod spec;
pub mod stats;
pub mod trace;

pub use categories::{paper_suite, reduced_suite, suite_profiles, SuiteProfiles, WorkloadCategory};
pub use format::{
    load_trace, read_header, record_source, recover, write_trace, FileSource, RecoveredTail,
    TraceError, TraceFileHeader, TraceWriter, TRACE_FORMAT_VERSION, TRACE_MAGIC,
};
pub use interp::{InterpConfig, Interpreter, MemImage};
pub use kernels::{Kernel, KernelKind};
pub use phase::{Phase, PhaseSchedule, PhasedSource};
pub use profile::WorkloadProfile;
pub use program::{Inst, Label, Operand, Program};
pub use source::{MaterializedSource, TraceHeader, TraceSource, TRACE_SOURCE_CHUNK};
pub use spec::SpecBenchmark;
pub use trace::{mix_category, Trace};
