//! # hc-trace
//!
//! Workload substrate for the helper-cluster reproduction: synthetic kernel
//! programs, an interpreter that turns them into dynamic µop traces with real
//! values, per-benchmark workload profiles (SPEC Int 2000 and the Table 2
//! categories) and the trace-level analyses behind the paper's
//! characterisation figures.
//!
//! The paper evaluated on proprietary IA-32 traces; see `DESIGN.md`
//! ("Substitutions") for why value-accurate synthetic traces exercise the same
//! steering decision paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod categories;
pub mod interp;
pub mod kernels;
pub mod profile;
pub mod program;
pub mod spec;
pub mod stats;
pub mod trace;

pub use categories::{paper_suite, reduced_suite, suite_profiles, SuiteProfiles, WorkloadCategory};
pub use interp::{InterpConfig, Interpreter, MemImage};
pub use kernels::{Kernel, KernelKind};
pub use profile::WorkloadProfile;
pub use program::{Inst, Label, Operand, Program};
pub use spec::SpecBenchmark;
pub use trace::Trace;
