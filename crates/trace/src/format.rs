//! The versioned, checksummed `.uoptrace` binary µop-trace format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//!      0     8  magic "HCUTRC01"
//!      8     4  format_version (u32, currently 1)
//!     12     4  isa_encoding_version (u32, hc_isa::ISA_ENCODING_VERSION)
//!     16     8  uop_count (u64; u64::MAX while the file is being written)
//!     24     8  content_digest (u64, FNV-1a over all frame payload bytes)
//!     32     8  header_checksum (u64, FNV-1a over bytes 0..32 ++ label block,
//!               with the checksum field itself zeroed during hashing — the
//!               field sits after the hashed prefix so no masking is needed)
//!     40     *  label block: name_len (u16) ++ name ++ has_category (u8)
//!               [++ category_len (u16) ++ category]
//!      *     *  frames …
//! ```
//!
//! Each frame is `frame_magic (u32) ++ uop_count (u32) ++ payload_len (u32)
//! ++ payload ++ payload_checksum (u64 FNV-1a)` where the payload is
//! [`hc_isa::codec`]-encoded µops.  Frames hold at most [`FRAME_UOPS`] µops,
//! so a reader needs O(frame) memory.
//!
//! The writer stamps `uop_count = u64::MAX` until [`TraceWriter::finish`]
//! patches the real count, digest and checksum — a crashed writer leaves a
//! file that every reader rejects as unfinished.  For files damaged *after* a
//! clean finish (interrupted copies, truncated downloads), [`recover`]
//! mirrors the packed cache segments' torn-tail rule: damage extending to end
//! of file with no later sound frame is a recoverable torn tail; damage with
//! a sound frame after it is mid-file corruption and is refused.

use crate::source::{TraceHeader, TraceSource};
use crate::trace::Trace;
use hc_isa::codec::{decode_uops, encode_uop, CodecError};
use hc_isa::{DynUop, ISA_ENCODING_VERSION};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic: "HCUTRC" + two digits of on-disk layout generation.
pub const TRACE_MAGIC: [u8; 8] = *b"HCUTRC01";
/// Version of the container layout (header + framing).  The µop payload
/// encoding is versioned separately by [`ISA_ENCODING_VERSION`].
pub const TRACE_FORMAT_VERSION: u32 = 1;
/// Maximum µops per frame.
pub const FRAME_UOPS: usize = 4096;

const FIXED_HEADER_LEN: usize = 40;
const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"UFRM");
const FRAME_HEADER_LEN: usize = 12;
const FRAME_TRAILER_LEN: usize = 8;
/// Upper bound on a sane frame payload (a full frame of worst-case µops is
/// well under 1 MiB); anything larger is treated as framing corruption
/// rather than attempted as an allocation.
const MAX_FRAME_PAYLOAD: u32 = 8 << 20;

/// A typed trace-format failure.  Decoding never panics: every way a file can
/// be wrong maps to one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(String),
    /// The file does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The container layout version is not one this build reads.
    UnsupportedFormatVersion {
        /// Version recorded in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The µop payload encoding version is not one this build reads.
    UnsupportedIsaEncoding {
        /// Version recorded in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The fixed header or label block is malformed.
    CorruptHeader(String),
    /// A frame failed its framing or checksum checks.
    CorruptFrame {
        /// Byte offset of the frame in the file.
        offset: u64,
        /// What was wrong with it.
        reason: String,
    },
    /// The file ended mid-frame.
    Truncated {
        /// Byte offset where the truncation was detected.
        offset: u64,
    },
    /// The frames decode to a different µop count than the header records.
    CountMismatch {
        /// Count recorded in the header.
        header: u64,
        /// Count actually decoded.
        decoded: u64,
    },
    /// The frame payloads hash to a different digest than the header records.
    DigestMismatch,
    /// A checksum-sound frame contained an invalid µop encoding.
    Codec(CodecError),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not a .uoptrace file (bad magic)"),
            TraceError::UnsupportedFormatVersion { found, supported } => {
                write!(
                    f,
                    "unsupported trace format version {found} (supported: {supported})"
                )
            }
            TraceError::UnsupportedIsaEncoding { found, supported } => {
                write!(
                    f,
                    "unsupported ISA encoding version {found} (supported: {supported})"
                )
            }
            TraceError::CorruptHeader(reason) => write!(f, "corrupt trace header: {reason}"),
            TraceError::CorruptFrame { offset, reason } => {
                write!(f, "corrupt frame at byte {offset}: {reason}")
            }
            TraceError::Truncated { offset } => write!(f, "trace file truncated at byte {offset}"),
            TraceError::CountMismatch { header, decoded } => {
                write!(
                    f,
                    "header records {header} µops but frames decode {decoded}"
                )
            }
            TraceError::DigestMismatch => write!(f, "content digest mismatch"),
            TraceError::Codec(e) => write!(f, "µop decode error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> TraceError {
        TraceError::Io(e.to_string())
    }
}

impl From<CodecError> for TraceError {
    fn from(e: CodecError) -> TraceError {
        TraceError::Codec(e)
    }
}

/// Incremental FNV-1a/64 (the same hash the packed cache segments use).
#[derive(Clone)]
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Everything the fixed header and label block record about a trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFileHeader {
    /// Trace name.
    pub name: String,
    /// Workload category (possibly a `mix(...)` label), if any.
    pub category: Option<String>,
    /// Total µops in the file.
    pub uop_count: u64,
    /// FNV-1a digest over all frame payload bytes — the content address.
    pub content_digest: u64,
    /// Container layout version.
    pub format_version: u32,
    /// µop payload encoding version.
    pub isa_encoding_version: u32,
    /// Byte offset of the first frame.
    pub frames_offset: u64,
}

impl TraceFileHeader {
    /// The [`TraceHeader`] a streaming consumer sees for this file.
    pub fn to_trace_header(&self) -> TraceHeader {
        TraceHeader {
            name: self.name.clone(),
            category: self.category.clone(),
            len: self.uop_count,
            digest: Some(self.content_digest),
        }
    }
}

fn label_block(name: &str, category: Option<&str>) -> Result<Vec<u8>, TraceError> {
    let mut block = Vec::new();
    let name_len = u16::try_from(name.len())
        .map_err(|_| TraceError::CorruptHeader("trace name longer than 64 KiB".into()))?;
    block.extend_from_slice(&name_len.to_le_bytes());
    block.extend_from_slice(name.as_bytes());
    match category {
        Some(cat) => {
            let cat_len = u16::try_from(cat.len())
                .map_err(|_| TraceError::CorruptHeader("category longer than 64 KiB".into()))?;
            block.push(1);
            block.extend_from_slice(&cat_len.to_le_bytes());
            block.extend_from_slice(cat.as_bytes());
        }
        None => block.push(0),
    }
    Ok(block)
}

fn fixed_header(uop_count: u64, digest: u64, label: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(FIXED_HEADER_LEN + label.len());
    bytes.extend_from_slice(&TRACE_MAGIC);
    bytes.extend_from_slice(&TRACE_FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&ISA_ENCODING_VERSION.to_le_bytes());
    bytes.extend_from_slice(&uop_count.to_le_bytes());
    bytes.extend_from_slice(&digest.to_le_bytes());
    let mut hasher = Fnv64::new();
    hasher.update(&bytes);
    hasher.update(label);
    bytes.extend_from_slice(&hasher.finish().to_le_bytes());
    bytes.extend_from_slice(label);
    bytes
}

/// Buffered streaming writer for `.uoptrace` files.
pub struct TraceWriter {
    file: BufWriter<File>,
    label: Vec<u8>,
    digest: Fnv64,
    uop_count: u64,
    pending: Vec<u8>,
    pending_uops: u32,
}

impl TraceWriter {
    /// Create `path` and write the (unfinished) header.  The file is invalid
    /// to every reader until [`TraceWriter::finish`] succeeds.
    pub fn create(
        path: &Path,
        name: &str,
        category: Option<&str>,
    ) -> Result<TraceWriter, TraceError> {
        let label = label_block(name, category)?;
        let mut file = BufWriter::new(File::create(path)?);
        file.write_all(&fixed_header(u64::MAX, 0, &label))?;
        Ok(TraceWriter {
            file,
            label,
            digest: Fnv64::new(),
            uop_count: 0,
            pending: Vec::new(),
            pending_uops: 0,
        })
    }

    /// Append one µop.
    pub fn push(&mut self, duop: &DynUop) -> Result<(), TraceError> {
        encode_uop(&mut self.pending, duop);
        self.pending_uops += 1;
        self.uop_count += 1;
        if self.pending_uops as usize >= FRAME_UOPS {
            self.flush_frame()?;
        }
        Ok(())
    }

    /// Append a slice of µops.
    pub fn push_all(&mut self, uops: &[DynUop]) -> Result<(), TraceError> {
        for duop in uops {
            self.push(duop)?;
        }
        Ok(())
    }

    fn flush_frame(&mut self) -> Result<(), TraceError> {
        if self.pending_uops == 0 {
            return Ok(());
        }
        self.file.write_all(&FRAME_MAGIC.to_le_bytes())?;
        self.file.write_all(&self.pending_uops.to_le_bytes())?;
        self.file
            .write_all(&(self.pending.len() as u32).to_le_bytes())?;
        self.file.write_all(&self.pending)?;
        self.file.write_all(&fnv64(&self.pending).to_le_bytes())?;
        self.digest.update(&self.pending);
        self.pending.clear();
        self.pending_uops = 0;
        Ok(())
    }

    /// Flush the last frame, patch the real count/digest/checksum into the
    /// header, and return the finished header.
    pub fn finish(mut self) -> Result<TraceFileHeader, TraceError> {
        self.flush_frame()?;
        let header = fixed_header(self.uop_count, self.digest.finish(), &self.label);
        self.file.flush()?;
        let mut file = self.file.get_ref().try_clone().map_err(TraceError::from)?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&header)?;
        file.sync_all()?;
        parse_fixed_header(&header).map(|mut fh| {
            fh.frames_offset = header.len() as u64;
            fh
        })
    }
}

/// Parse a fully buffered header (fixed part + label block).
fn parse_fixed_header(bytes: &[u8]) -> Result<TraceFileHeader, TraceError> {
    if bytes.len() < FIXED_HEADER_LEN {
        return Err(TraceError::CorruptHeader(
            "shorter than fixed header".into(),
        ));
    }
    if bytes[..8] != TRACE_MAGIC {
        return Err(TraceError::BadMagic);
    }
    let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
    let format_version = u32_at(8);
    if format_version != TRACE_FORMAT_VERSION {
        return Err(TraceError::UnsupportedFormatVersion {
            found: format_version,
            supported: TRACE_FORMAT_VERSION,
        });
    }
    let isa_encoding_version = u32_at(12);
    if isa_encoding_version != ISA_ENCODING_VERSION {
        return Err(TraceError::UnsupportedIsaEncoding {
            found: isa_encoding_version,
            supported: ISA_ENCODING_VERSION,
        });
    }
    let uop_count = u64_at(16);
    let content_digest = u64_at(24);
    let stored_checksum = u64_at(32);

    let mut pos = FIXED_HEADER_LEN;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], TraceError> {
        let end = pos
            .checked_add(n)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| TraceError::CorruptHeader("label block truncated".into()))?;
        let slice = &bytes[*pos..end];
        *pos = end;
        Ok(slice)
    };
    let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
    let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
        .map_err(|_| TraceError::CorruptHeader("trace name is not UTF-8".into()))?;
    let category = match take(&mut pos, 1)?[0] {
        0 => None,
        1 => {
            let cat_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
            Some(
                String::from_utf8(take(&mut pos, cat_len)?.to_vec())
                    .map_err(|_| TraceError::CorruptHeader("category is not UTF-8".into()))?,
            )
        }
        other => {
            return Err(TraceError::CorruptHeader(format!(
                "bad has_category byte {other}"
            )))
        }
    };

    let mut hasher = Fnv64::new();
    hasher.update(&bytes[..32]);
    hasher.update(&bytes[FIXED_HEADER_LEN..pos]);
    if hasher.finish() != stored_checksum {
        return Err(TraceError::CorruptHeader("header checksum mismatch".into()));
    }
    if uop_count == u64::MAX {
        return Err(TraceError::CorruptHeader(
            "file was never finished (count placeholder still present)".into(),
        ));
    }
    Ok(TraceFileHeader {
        name,
        category,
        uop_count,
        content_digest,
        format_version,
        isa_encoding_version,
        frames_offset: pos as u64,
    })
}

/// Read and validate just the header of `path` — a cheap fixed-size read, no
/// frame walk.  This is what cache-key resolution uses.
pub fn read_header(path: &Path) -> Result<TraceFileHeader, TraceError> {
    let mut file = File::open(path)?;
    // The label block is bounded by 2×64 KiB + 5 bytes; one 256 KiB read
    // covers any valid header.
    let mut buf = vec![0u8; FIXED_HEADER_LEN + 2 * (u16::MAX as usize) + 5];
    let mut read = 0;
    while read < buf.len() {
        let n = file.read(&mut buf[read..])?;
        if n == 0 {
            break;
        }
        read += n;
    }
    parse_fixed_header(&buf[..read])
}

struct FrameHeader {
    uops: u32,
    payload_len: u32,
}

/// Read one frame header at the reader's position.  `Ok(None)` at clean EOF.
fn read_frame_header(
    reader: &mut impl Read,
    offset: u64,
) -> Result<Option<FrameHeader>, TraceError> {
    let mut head = [0u8; FRAME_HEADER_LEN];
    let mut got = 0;
    while got < head.len() {
        let n = reader.read(&mut head[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(None);
            }
            return Err(TraceError::Truncated {
                offset: offset + got as u64,
            });
        }
        got += n;
    }
    let magic = u32::from_le_bytes(head[0..4].try_into().unwrap());
    if magic != FRAME_MAGIC {
        return Err(TraceError::CorruptFrame {
            offset,
            reason: format!("bad frame magic {magic:#010x}"),
        });
    }
    let uops = u32::from_le_bytes(head[4..8].try_into().unwrap());
    let payload_len = u32::from_le_bytes(head[8..12].try_into().unwrap());
    if payload_len > MAX_FRAME_PAYLOAD || uops as usize > FRAME_UOPS {
        return Err(TraceError::CorruptFrame {
            offset,
            reason: format!("implausible frame ({uops} µops, {payload_len} payload bytes)"),
        });
    }
    Ok(Some(FrameHeader { uops, payload_len }))
}

/// Read a frame's payload + checksum trailer; verifies the checksum.
fn read_frame_body(
    reader: &mut impl Read,
    offset: u64,
    header: &FrameHeader,
) -> Result<Vec<u8>, TraceError> {
    let body_len = header.payload_len as usize + FRAME_TRAILER_LEN;
    let mut body = vec![0u8; body_len];
    let mut got = 0;
    while got < body_len {
        let n = reader.read(&mut body[got..])?;
        if n == 0 {
            return Err(TraceError::Truncated {
                offset: offset + FRAME_HEADER_LEN as u64 + got as u64,
            });
        }
        got += n;
    }
    let payload = &body[..header.payload_len as usize];
    let stored = u64::from_le_bytes(body[header.payload_len as usize..].try_into().unwrap());
    if fnv64(payload) != stored {
        return Err(TraceError::CorruptFrame {
            offset,
            reason: "payload checksum mismatch".into(),
        });
    }
    body.truncate(header.payload_len as usize);
    Ok(body)
}

/// Walk every frame of `path`, verifying framing, checksums, the content
/// digest and the µop count against the header.  Payloads are hashed and
/// counted but not decoded.
fn validate_frames(path: &Path, header: &TraceFileHeader) -> Result<(), TraceError> {
    let mut reader = BufReader::new(File::open(path)?);
    reader.seek(SeekFrom::Start(header.frames_offset))?;
    let mut offset = header.frames_offset;
    let mut digest = Fnv64::new();
    let mut uops = 0u64;
    while let Some(frame) = read_frame_header(&mut reader, offset)? {
        let payload = read_frame_body(&mut reader, offset, &frame)?;
        digest.update(&payload);
        uops += frame.uops as u64;
        offset += (FRAME_HEADER_LEN + payload.len() + FRAME_TRAILER_LEN) as u64;
    }
    if uops != header.uop_count {
        return Err(TraceError::CountMismatch {
            header: header.uop_count,
            decoded: uops,
        });
    }
    if digest.finish() != header.content_digest {
        return Err(TraceError::DigestMismatch);
    }
    Ok(())
}

/// A streaming [`TraceSource`] over a finished `.uoptrace` file.
///
/// `open` validates the whole file up front (header checksum, versions, every
/// frame checksum, content digest, µop count) so that a source handed to a
/// multi-hour campaign fails at spec-resolution time, not mid-run; streaming
/// then re-reads frames with O(frame) memory.
pub struct FileSource {
    path: PathBuf,
    header: TraceHeader,
    file_header: TraceFileHeader,
    reader: BufReader<File>,
    offset: u64,
    frame: Vec<DynUop>,
    frame_pos: usize,
}

impl FileSource {
    /// Open and fully validate `path`.
    pub fn open(path: &Path) -> Result<FileSource, TraceError> {
        let file_header = read_header(path)?;
        validate_frames(path, &file_header)?;
        let mut reader = BufReader::new(File::open(path)?);
        reader.seek(SeekFrom::Start(file_header.frames_offset))?;
        Ok(FileSource {
            path: path.to_path_buf(),
            header: file_header.to_trace_header(),
            offset: file_header.frames_offset,
            file_header,
            reader,
            frame: Vec::new(),
            frame_pos: 0,
        })
    }

    /// The on-disk header.
    pub fn file_header(&self) -> &TraceFileHeader {
        &self.file_header
    }

    /// The file this source reads.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn load_next_frame(&mut self) -> Result<bool, TraceError> {
        let Some(frame) = read_frame_header(&mut self.reader, self.offset)? else {
            return Ok(false);
        };
        let payload = read_frame_body(&mut self.reader, self.offset, &frame)?;
        let uops = decode_uops(&payload)?;
        if uops.len() != frame.uops as usize {
            return Err(TraceError::CorruptFrame {
                offset: self.offset,
                reason: format!(
                    "frame header records {} µops but payload decodes {}",
                    frame.uops,
                    uops.len()
                ),
            });
        }
        self.offset += (FRAME_HEADER_LEN + payload.len() + FRAME_TRAILER_LEN) as u64;
        self.frame = uops;
        self.frame_pos = 0;
        Ok(true)
    }
}

impl TraceSource for FileSource {
    fn header(&self) -> &TraceHeader {
        &self.header
    }

    fn reset(&mut self) -> Result<(), TraceError> {
        self.reader
            .seek(SeekFrom::Start(self.file_header.frames_offset))?;
        self.offset = self.file_header.frames_offset;
        self.frame.clear();
        self.frame_pos = 0;
        Ok(())
    }

    fn fill(&mut self, out: &mut Vec<DynUop>, max: usize) -> Result<usize, TraceError> {
        let mut appended = 0;
        while appended < max {
            if self.frame_pos >= self.frame.len() && !self.load_next_frame()? {
                break;
            }
            let take = (max - appended).min(self.frame.len() - self.frame_pos);
            out.extend_from_slice(&self.frame[self.frame_pos..self.frame_pos + take]);
            self.frame_pos += take;
            appended += take;
        }
        Ok(appended)
    }
}

/// Stream `source` into a new `.uoptrace` file at `path`.
pub fn record_source(
    path: &Path,
    source: &mut dyn TraceSource,
) -> Result<TraceFileHeader, TraceError> {
    source.reset()?;
    let (name, category) = {
        let h = source.header();
        (h.name.clone(), h.category.clone())
    };
    let mut writer = TraceWriter::create(path, &name, category.as_deref())?;
    let mut chunk = Vec::new();
    loop {
        chunk.clear();
        if source.fill(&mut chunk, crate::source::TRACE_SOURCE_CHUNK)? == 0 {
            break;
        }
        writer.push_all(&chunk)?;
    }
    writer.finish()
}

/// Write a materialized trace to `path`.
pub fn write_trace(path: &Path, trace: &Trace) -> Result<TraceFileHeader, TraceError> {
    let mut writer = TraceWriter::create(path, &trace.name, trace.category.as_deref())?;
    writer.push_all(&trace.uops)?;
    writer.finish()
}

/// Load a `.uoptrace` file fully into memory.
pub fn load_trace(path: &Path) -> Result<Trace, TraceError> {
    let mut source = FileSource::open(path)?;
    let uops = crate::source::drain_source(&mut source)?;
    let mut trace = Trace::from_uops(source.header.name.clone(), uops);
    trace.category = source.header.category.clone();
    Ok(trace)
}

/// What a torn-tail scan found in a damaged file.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredTail {
    /// µops readable from the sound frames before the damage.
    pub sound_uops: u64,
    /// Sound frames before the damage.
    pub sound_frames: u64,
    /// Byte offset where the damage (or clean EOF) begins.
    pub tail_offset: u64,
    /// Whether any bytes had to be discarded (false for an undamaged file).
    pub torn: bool,
}

/// Classify damage in `path` the way the packed cache segments classify a
/// torn tail: walk frames until the first unsound one, then scan forward for
/// any later frame that still checksums clean.
///
/// * File walks clean to EOF → `Ok` with `torn: false`.
/// * Damage extends to EOF with no later sound frame → `Ok` with `torn:
///   true`; everything before `tail_offset` is salvageable.
/// * A sound frame exists *after* the damage → mid-file corruption; returns
///   [`TraceError::CorruptFrame`] because silently dropping interior µops
///   would change the workload.
///
/// The header itself must still be valid (a file with a damaged header
/// records nothing trustworthy to salvage).
pub fn recover(path: &Path) -> Result<RecoveredTail, TraceError> {
    let header = read_header(path)?;
    let bytes = std::fs::read(path)?;
    let mut offset = header.frames_offset as usize;
    let mut sound_uops = 0u64;
    let mut sound_frames = 0u64;
    while offset < bytes.len() {
        match sound_frame_at(&bytes, offset) {
            Some(frame_len_and_uops) => {
                let (frame_len, uops) = frame_len_and_uops;
                sound_uops += uops as u64;
                sound_frames += 1;
                offset += frame_len;
            }
            None => {
                // Damage. A sound frame anywhere after it means mid-file
                // corruption; none means a torn tail.
                for cand in offset + 1..bytes.len() {
                    if sound_frame_at(&bytes, cand).is_some() {
                        return Err(TraceError::CorruptFrame {
                            offset: offset as u64,
                            reason: format!(
                                "unsound frame is followed by a sound frame at byte {cand} \
                                 (mid-file corruption, not a torn tail)"
                            ),
                        });
                    }
                }
                return Ok(RecoveredTail {
                    sound_uops,
                    sound_frames,
                    tail_offset: offset as u64,
                    torn: true,
                });
            }
        }
    }
    Ok(RecoveredTail {
        sound_uops,
        sound_frames,
        tail_offset: bytes.len() as u64,
        torn: false,
    })
}

/// If a sound frame starts at `offset`, return `(total_frame_len, uops)`.
fn sound_frame_at(bytes: &[u8], offset: usize) -> Option<(usize, u32)> {
    let head = bytes.get(offset..offset + FRAME_HEADER_LEN)?;
    if u32::from_le_bytes(head[0..4].try_into().unwrap()) != FRAME_MAGIC {
        return None;
    }
    let uops = u32::from_le_bytes(head[4..8].try_into().unwrap());
    let payload_len = u32::from_le_bytes(head[8..12].try_into().unwrap());
    if payload_len > MAX_FRAME_PAYLOAD || uops as usize > FRAME_UOPS {
        return None;
    }
    let payload_start = offset + FRAME_HEADER_LEN;
    let payload = bytes.get(payload_start..payload_start + payload_len as usize)?;
    let trailer_start = payload_start + payload_len as usize;
    let trailer = bytes.get(trailer_start..trailer_start + FRAME_TRAILER_LEN)?;
    if fnv64(payload) != u64::from_le_bytes(trailer.try_into().unwrap()) {
        return None;
    }
    Some((
        FRAME_HEADER_LEN + payload_len as usize + FRAME_TRAILER_LEN,
        uops,
    ))
}
