//! Trace-level analyses used by the paper's characterisation figures.
//!
//! * [`narrow_dependence`] — Figure 1: the percentage of register source
//!   operands whose producer value is narrow (8 bits).
//! * [`alu_width_mix`] — the §1 statistics about ALU operand/result width
//!   combinations (39.4% / 3.3% / 43.5% in the paper).
//! * [`carry_propagation`] — Figure 11: among instructions with one narrow and
//!   one wide source and a wide result, the percentage whose carry does not
//!   propagate beyond bit 8, split into arithmetic and load address
//!   calculations.
//! * [`producer_consumer_distance`] — Figure 13: the average distance in
//!   instructions between a producer and its consumers.

use crate::trace::Trace;
use hc_isa::reg::NUM_ARCH_REGS;
use hc_isa::uop::UopKind;
use hc_isa::value::Value;
use serde::{Deserialize, Serialize};

/// Figure 1 metric: fraction (0..=1) of register source operands whose
/// producer value is narrow.
pub fn narrow_dependence(trace: &Trace) -> f64 {
    let mut total = 0u64;
    let mut narrow = 0u64;
    for d in trace {
        for v in d.src_vals.iter().flatten() {
            total += 1;
            if v.is_narrow() {
                narrow += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        narrow as f64 / total as f64
    }
}

/// The §1 ALU operand/result width mix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AluWidthMix {
    /// Fraction of regular ALU µops with exactly one narrow source operand.
    pub one_narrow_operand: f64,
    /// Fraction with two narrow sources producing a wide result.
    pub two_narrow_wide_result: f64,
    /// Fraction with two narrow sources producing a narrow result.
    pub two_narrow_narrow_result: f64,
    /// Number of ALU µops inspected.
    pub total_alu: u64,
}

/// Compute the ALU width mix of §1.
pub fn alu_width_mix(trace: &Trace) -> AluWidthMix {
    let mut total = 0u64;
    let mut one_narrow = 0u64;
    let mut two_narrow_wide = 0u64;
    let mut two_narrow_narrow = 0u64;
    for d in trace {
        if !d.uop.kind.is_simple_alu() {
            continue;
        }
        let srcs: Vec<Value> = d.source_values();
        if srcs.is_empty() {
            continue;
        }
        total += 1;
        let narrow_count = srcs.iter().filter(|v| v.is_narrow()).count();
        let result_narrow = d.result.map(|v| v.is_narrow()).unwrap_or(true);
        if narrow_count == 1 {
            one_narrow += 1;
        } else if narrow_count >= 2 && !result_narrow {
            two_narrow_wide += 1;
        } else if narrow_count >= 2 && result_narrow {
            two_narrow_narrow += 1;
        }
    }
    let f = |n: u64| {
        if total == 0 {
            0.0
        } else {
            n as f64 / total as f64
        }
    };
    AluWidthMix {
        one_narrow_operand: f(one_narrow),
        two_narrow_wide_result: f(two_narrow_wide),
        two_narrow_narrow_result: f(two_narrow_narrow),
        total_alu: total,
    }
}

/// Figure 11 result: carry-not-propagated fractions for arithmetic and load
/// address computations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CarryPropagationStats {
    /// Fraction of eligible arithmetic µops (one narrow + one wide source,
    /// wide result) whose carry stays within the low byte.
    pub arith_carry_free: f64,
    /// Number of eligible arithmetic µops.
    pub arith_total: u64,
    /// Fraction of loads with a wide base and narrow offset whose address
    /// calculation stays within the low byte of the base.
    pub load_carry_free: f64,
    /// Number of eligible loads.
    pub load_total: u64,
}

/// Whether an address computation `base + offset` leaves the upper 24 bits of
/// the wide operand unchanged.
fn address_carry_free(srcs: &[Value], imm: Option<Value>) -> Option<bool> {
    let mut operands: Vec<Value> = srcs.to_vec();
    if let Some(i) = imm {
        operands.push(i);
    }
    let wide: Vec<Value> = operands
        .iter()
        .copied()
        .filter(|v| !v.is_narrow())
        .collect();
    let narrow: Vec<Value> = operands.iter().copied().filter(|v| v.is_narrow()).collect();
    if wide.len() != 1 || narrow.is_empty() {
        return None;
    }
    let sum = narrow.iter().fold(wide[0], |acc, v| acc + *v);
    Some(sum.upper_bits() == wide[0].upper_bits())
}

/// Compute the Figure 11 carry-propagation statistics.
pub fn carry_propagation(trace: &Trace) -> CarryPropagationStats {
    let mut arith_total = 0u64;
    let mut arith_free = 0u64;
    let mut load_total = 0u64;
    let mut load_free = 0u64;

    for d in trace {
        match d.uop.kind {
            UopKind::Alu(op) if op.cr_eligible() => {
                // Eligible: one narrow + one wide source, wide result.
                let srcs = d.source_values();
                let result = match d.result {
                    Some(r) if !r.is_narrow() => r,
                    _ => continue,
                };
                let wides: Vec<&Value> = srcs.iter().filter(|v| !v.is_narrow()).collect();
                let has_narrow = srcs.iter().any(|v| v.is_narrow())
                    || d.uop.imm.map(|v| v.is_narrow()).unwrap_or(false);
                if wides.len() == 1 && has_narrow {
                    arith_total += 1;
                    if wides[0].upper_bits() == result.upper_bits() {
                        arith_free += 1;
                    }
                }
            }
            UopKind::Load(_) => {
                // Address operands: register sources (base [+ index]) plus the
                // immediate offset.
                if let Some(free) = address_carry_free(&d.source_values(), d.uop.imm) {
                    load_total += 1;
                    if free {
                        load_free += 1;
                    }
                }
            }
            _ => {}
        }
    }
    let f = |n: u64, t: u64| if t == 0 { 0.0 } else { n as f64 / t as f64 };
    CarryPropagationStats {
        arith_carry_free: f(arith_free, arith_total),
        arith_total,
        load_carry_free: f(load_free, load_total),
        load_total,
    }
}

/// Figure 13 metric: the average distance, in dynamic µops, between a producer
/// and each of its register consumers.
pub fn producer_consumer_distance(trace: &Trace) -> f64 {
    // Track the trace position of the last writer of each architectural register.
    let mut last_writer: [Option<usize>; NUM_ARCH_REGS] = [None; NUM_ARCH_REGS];
    let mut last_flags_writer: Option<usize> = None;
    let mut total_distance = 0u64;
    let mut consumers = 0u64;

    for (pos, d) in trace.iter().enumerate() {
        for src in d.uop.sources() {
            if let Some(w) = last_writer[src.index()] {
                total_distance += (pos - w) as u64;
                consumers += 1;
            }
        }
        if d.uop.reads_flags {
            if let Some(w) = last_flags_writer {
                total_distance += (pos - w) as u64;
                consumers += 1;
            }
        }
        if let Some(dst) = d.uop.dest {
            last_writer[dst.index()] = Some(pos);
        }
        if d.uop.writes_flags {
            last_flags_writer = Some(pos);
        }
    }
    if consumers == 0 {
        0.0
    } else {
        total_distance as f64 / consumers as f64
    }
}

/// Aggregate per-trace characterisation summary (handy for reports and tests).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Trace name.
    pub name: String,
    /// Dynamic µop count.
    pub uops: u64,
    /// Figure 1 metric.
    pub narrow_dependence: f64,
    /// §1 ALU width mix.
    pub alu_mix: AluWidthMix,
    /// Figure 11 statistics.
    pub carry: CarryPropagationStats,
    /// Figure 13 metric.
    pub producer_consumer_distance: f64,
    /// Fraction of conditional branches.
    pub cond_branch_fraction: f64,
    /// Fraction of loads.
    pub load_fraction: f64,
    /// Fraction of stores.
    pub store_fraction: f64,
}

/// Compute the full characterisation summary of a trace.
pub fn summarize(trace: &Trace) -> TraceSummary {
    let n = trace.len().max(1) as f64;
    TraceSummary {
        name: trace.name.clone(),
        uops: trace.len() as u64,
        narrow_dependence: narrow_dependence(trace),
        alu_mix: alu_width_mix(trace),
        carry: carry_propagation(trace),
        producer_consumer_distance: producer_consumer_distance(trace),
        cond_branch_fraction: trace.iter().filter(|d| d.uop.kind.is_cond_branch()).count() as f64
            / n,
        load_fraction: trace.iter().filter(|d| d.uop.kind.is_load()).count() as f64 / n,
        store_fraction: trace.iter().filter(|d| d.uop.kind.is_store()).count() as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::KernelKind;
    use crate::profile::WorkloadProfile;
    use crate::spec::SpecBenchmark;

    fn small_trace(kind: KernelKind) -> Trace {
        WorkloadProfile::new("t", vec![(kind, 1.0)])
            .with_trace_len(8_000)
            .generate()
    }

    #[test]
    fn narrow_dependence_is_a_fraction() {
        let t = small_trace(KernelKind::ByteHistogram);
        let f = narrow_dependence(&t);
        assert!((0.0..=1.0).contains(&f));
        assert!(
            f > 0.2,
            "byte kernels should show substantial narrow dependence"
        );
    }

    #[test]
    fn narrow_dependence_orders_benchmarks_sensibly() {
        let bzip2 = SpecBenchmark::Bzip2.trace(15_000);
        let mcf = SpecBenchmark::Mcf.trace(15_000);
        assert!(narrow_dependence(&bzip2) > narrow_dependence(&mcf));
    }

    #[test]
    fn alu_mix_fractions_are_bounded() {
        let t = small_trace(KernelKind::TokenScan);
        let m = alu_width_mix(&t);
        assert!(m.total_alu > 0);
        let sum = m.one_narrow_operand + m.two_narrow_wide_result + m.two_narrow_narrow_result;
        assert!(sum <= 1.0 + 1e-9);
    }

    #[test]
    fn carry_propagation_detects_base_plus_offset_loads() {
        let t = small_trace(KernelKind::ByteHistogram);
        let c = carry_propagation(&t);
        assert!(c.load_total > 0, "histogram kernel has base+index loads");
        assert!(
            c.load_carry_free > 0.3,
            "sequential small indices mostly stay within the low byte, got {}",
            c.load_carry_free
        );
    }

    #[test]
    fn producer_consumer_distance_is_small_for_tight_loops() {
        let t = small_trace(KernelKind::MemcpyBytes);
        let d = producer_consumer_distance(&t);
        assert!(d > 0.0);
        assert!(
            d < 10.0,
            "tight loops have short dependence distances, got {d}"
        );
    }

    #[test]
    fn summary_fields_are_consistent() {
        let t = small_trace(KernelKind::RleCompress);
        let s = summarize(&t);
        assert_eq!(s.uops, t.len() as u64);
        assert!(s.cond_branch_fraction > 0.0);
        assert!(s.load_fraction > 0.0);
        assert!((0.0..=1.0).contains(&s.narrow_dependence));
    }

    #[test]
    fn empty_trace_yields_zeroes() {
        let t = Trace::new("empty");
        assert_eq!(narrow_dependence(&t), 0.0);
        assert_eq!(producer_consumer_distance(&t), 0.0);
        let c = carry_propagation(&t);
        assert_eq!(c.arith_total, 0);
        assert_eq!(c.load_total, 0);
    }
}
