//! Dynamic µop traces.
//!
//! The paper's evaluation is trace driven: 100M-instruction traces for the 12
//! SPEC Int 2000 benchmarks and 10M-instruction traces for the 412-app final
//! study.  A [`Trace`] is simply a named sequence of [`DynUop`]s together with
//! a little provenance metadata.

use hc_isa::DynUop;
use serde::{Deserialize, Serialize};

/// A named dynamic µop trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// Human-readable trace name (benchmark or app identifier).
    pub name: String,
    /// The dynamic µops, in program order.
    pub uops: Vec<DynUop>,
    /// The workload category this trace belongs to, if any (Table 2).
    pub category: Option<String>,
}

impl Trace {
    /// Create an empty trace.
    pub fn new(name: impl Into<String>) -> Trace {
        Trace {
            name: name.into(),
            uops: Vec::new(),
            category: None,
        }
    }

    /// Create a trace from parts.
    pub fn from_uops(name: impl Into<String>, uops: Vec<DynUop>) -> Trace {
        Trace {
            name: name.into(),
            uops,
            category: None,
        }
    }

    /// Attach a workload category label.
    pub fn with_category(mut self, category: impl Into<String>) -> Trace {
        self.category = Some(category.into());
        self
    }

    /// Number of dynamic µops in the trace.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the trace contains no µops.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Append another trace's µops (used to build mixes of kernels).
    pub fn extend(&mut self, other: &Trace) {
        self.uops.extend(other.uops.iter().cloned());
    }

    /// Truncate the trace to at most `n` µops.
    pub fn truncate(&mut self, n: usize) {
        self.uops.truncate(n);
    }

    /// Iterate over the dynamic µops.
    pub fn iter(&self) -> std::slice::Iter<'_, DynUop> {
        self.uops.iter()
    }

    /// Take a slice of the trace starting at `skip` µops, of at most `len`
    /// µops.  This mirrors the paper's methodology of splitting each benchmark
    /// into 10 slices and starting from the fourth to skip initialisation.
    pub fn slice(&self, skip: usize, len: usize) -> Trace {
        let start = skip.min(self.uops.len());
        let end = (start + len).min(self.uops.len());
        Trace {
            name: format!("{}[{}..{}]", self.name, start, end),
            uops: self.uops[start..end].to_vec(),
            category: self.category.clone(),
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a DynUop;
    type IntoIter = std::slice::Iter<'a, DynUop>;
    fn into_iter(self) -> Self::IntoIter {
        self.uops.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_isa::uop::{AluOp, Uop, UopKind};

    fn dummy(pc: u64) -> DynUop {
        DynUop::from_uop(Uop::new(pc, UopKind::Alu(AluOp::Add)))
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("empty");
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn extend_and_truncate() {
        let mut a = Trace::from_uops("a", vec![dummy(0), dummy(1)]);
        let b = Trace::from_uops("b", vec![dummy(2)]);
        a.extend(&b);
        assert_eq!(a.len(), 3);
        a.truncate(2);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn slice_skips_initialisation() {
        let t = Trace::from_uops("t", (0..100).map(dummy).collect());
        let s = t.slice(30, 20);
        assert_eq!(s.len(), 20);
        assert_eq!(s.uops[0].uop.pc, 30);
    }

    #[test]
    fn slice_clamps_to_length() {
        let t = Trace::from_uops("t", (0..10).map(dummy).collect());
        let s = t.slice(8, 20);
        assert_eq!(s.len(), 2);
        let s = t.slice(50, 20);
        assert!(s.is_empty());
    }

    #[test]
    fn category_label() {
        let t = Trace::new("x").with_category("mm");
        assert_eq!(t.category.as_deref(), Some("mm"));
    }
}
