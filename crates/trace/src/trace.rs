//! Dynamic µop traces.
//!
//! The paper's evaluation is trace driven: 100M-instruction traces for the 12
//! SPEC Int 2000 benchmarks and 10M-instruction traces for the 412-app final
//! study.  A [`Trace`] is simply a named sequence of [`DynUop`]s together with
//! a little provenance metadata.

use hc_isa::DynUop;
use serde::{Deserialize, Serialize};

/// A named dynamic µop trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// Human-readable trace name (benchmark or app identifier).
    pub name: String,
    /// The dynamic µops, in program order.
    pub uops: Vec<DynUop>,
    /// The workload category this trace belongs to, if any (Table 2).
    pub category: Option<String>,
}

impl Trace {
    /// Create an empty trace.
    pub fn new(name: impl Into<String>) -> Trace {
        Trace {
            name: name.into(),
            uops: Vec::new(),
            category: None,
        }
    }

    /// Create a trace from parts.
    pub fn from_uops(name: impl Into<String>, uops: Vec<DynUop>) -> Trace {
        Trace {
            name: name.into(),
            uops,
            category: None,
        }
    }

    /// Attach a workload category label.
    pub fn with_category(mut self, category: impl Into<String>) -> Trace {
        self.category = Some(category.into());
        self
    }

    /// Number of dynamic µops in the trace.
    pub fn len(&self) -> usize {
        self.uops.len()
    }

    /// Whether the trace contains no µops.
    pub fn is_empty(&self) -> bool {
        self.uops.is_empty()
    }

    /// Append another trace's µops (used to build mixes of kernels).
    ///
    /// The category label accumulates: extending an `enc` trace with a `tab`
    /// trace yields `mix(enc+tab)`, not a silently kept `enc`.  Components
    /// are sorted and de-duplicated, so the label is order-independent and a
    /// same-category extension keeps the plain label.  See [`mix_category`].
    pub fn extend(&mut self, other: &Trace) {
        self.category = mix_category([self.category.as_deref(), other.category.as_deref()]);
        self.uops.extend(other.uops.iter().cloned());
    }

    /// Truncate the trace to at most `n` µops.
    pub fn truncate(&mut self, n: usize) {
        self.uops.truncate(n);
    }

    /// Iterate over the dynamic µops.
    pub fn iter(&self) -> std::slice::Iter<'_, DynUop> {
        self.uops.iter()
    }

    /// Take a slice of the trace starting at `skip` µops, of at most `len`
    /// µops.  This mirrors the paper's methodology of splitting each benchmark
    /// into 10 slices and starting from the fourth to skip initialisation.
    pub fn slice(&self, skip: usize, len: usize) -> Trace {
        let start = skip.min(self.uops.len());
        let end = (start + len).min(self.uops.len());
        Trace {
            name: format!("{}[{}..{}]", self.name, start, end),
            uops: self.uops[start..end].to_vec(),
            category: self.category.clone(),
        }
    }
}

/// Combine category labels into one: the single shared category, or a
/// `mix(a+b+…)` of the distinct components, sorted and de-duplicated.
///
/// A `mix(...)` input contributes its components rather than nesting, so
/// label composition is associative; `None` inputs contribute nothing.
pub fn mix_category<'a>(parts: impl IntoIterator<Item = Option<&'a str>>) -> Option<String> {
    let mut components: Vec<&str> = Vec::new();
    for part in parts.into_iter().flatten() {
        match part
            .strip_prefix("mix(")
            .and_then(|rest| rest.strip_suffix(')'))
        {
            Some(inner) => components.extend(inner.split('+')),
            None => components.push(part),
        }
    }
    components.sort_unstable();
    components.dedup();
    match components.as_slice() {
        [] => None,
        [single] => Some((*single).to_string()),
        many => Some(format!("mix({})", many.join("+"))),
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a DynUop;
    type IntoIter = std::slice::Iter<'a, DynUop>;
    fn into_iter(self) -> Self::IntoIter {
        self.uops.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_isa::uop::{AluOp, Uop, UopKind};

    fn dummy(pc: u64) -> DynUop {
        DynUop::from_uop(Uop::new(pc, UopKind::Alu(AluOp::Add)))
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("empty");
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn extend_and_truncate() {
        let mut a = Trace::from_uops("a", vec![dummy(0), dummy(1)]);
        let b = Trace::from_uops("b", vec![dummy(2)]);
        a.extend(&b);
        assert_eq!(a.len(), 3);
        a.truncate(2);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn extend_merges_category_labels() {
        let mut a = Trace::from_uops("a", vec![dummy(0)]).with_category("enc");
        a.extend(&Trace::from_uops("b", vec![dummy(1)]).with_category("tab"));
        assert_eq!(a.category.as_deref(), Some("mix(enc+tab)"));
        // Same category again: label stays a plain mix, no duplicates.
        a.extend(&Trace::from_uops("c", vec![dummy(2)]).with_category("enc"));
        assert_eq!(a.category.as_deref(), Some("mix(enc+tab)"));
        // Same-category extension of a plain label keeps the plain label.
        let mut d = Trace::from_uops("d", vec![dummy(0)]).with_category("mm");
        d.extend(&Trace::from_uops("e", vec![dummy(1)]).with_category("mm"));
        assert_eq!(d.category.as_deref(), Some("mm"));
        // An uncategorized accumulator adopts the first real category.
        let mut f = Trace::new("f");
        f.extend(&d);
        assert_eq!(f.category.as_deref(), Some("mm"));
    }

    #[test]
    fn mix_category_is_order_independent_and_flattening() {
        assert_eq!(mix_category([None, None]), None);
        assert_eq!(mix_category([Some("x"), None]).as_deref(), Some("x"));
        assert_eq!(
            mix_category([Some("b"), Some("a")]).as_deref(),
            Some("mix(a+b)")
        );
        assert_eq!(
            mix_category([Some("mix(a+c)"), Some("b"), Some("a")]).as_deref(),
            Some("mix(a+b+c)")
        );
    }

    #[test]
    fn slice_skips_initialisation() {
        let t = Trace::from_uops("t", (0..100).map(dummy).collect());
        let s = t.slice(30, 20);
        assert_eq!(s.len(), 20);
        assert_eq!(s.uops[0].uop.pc, 30);
    }

    #[test]
    fn slice_clamps_to_length() {
        let t = Trace::from_uops("t", (0..10).map(dummy).collect());
        let s = t.slice(8, 20);
        assert_eq!(s.len(), 2);
        let s = t.slice(50, 20);
        assert!(s.is_empty());
    }

    #[test]
    fn category_label() {
        let t = Trace::new("x").with_category("mm");
        assert_eq!(t.category.as_deref(), Some("mm"));
    }
}
