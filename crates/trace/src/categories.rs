//! The Table 2 workload categories and the 400+ application suite.
//!
//! §3.8 evaluates the best steering mechanism (IR) over a comprehensive suite
//! of traces: 62 encoder, 41 SpecFP, 52 kernel, 85 multimedia, 75 office,
//! 45 productivity and 49 workstation traces (409 traces in Table 2; the
//! abstract rounds the study to "412 apps").  Each category is modelled as a
//! family of workload profiles with per-application jitter in the kernel mix,
//! data sizes and narrow bias, so the suite spans a realistic spread of
//! behaviours rather than 400 copies of the same trace.

use crate::kernels::KernelKind;
use crate::profile::WorkloadProfile;
use serde::{Deserialize, Serialize};

/// The workload categories of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadCategory {
    /// Audio/video encode.
    Encoder,
    /// SPEC FP 2000.
    SpecFp,
    /// Small computational kernels (VectorAdd, FIRs).
    Kernels,
    /// Multimedia (WMedia, Photoshop-like).
    Multimedia,
    /// Office (Excel, Word, PowerPoint-like).
    Office,
    /// Productivity / internet content.
    Productivity,
    /// Workstation.
    Workstation,
}

impl WorkloadCategory {
    /// All categories in Table 2 order.
    pub const ALL: [WorkloadCategory; 7] = [
        WorkloadCategory::Encoder,
        WorkloadCategory::SpecFp,
        WorkloadCategory::Kernels,
        WorkloadCategory::Multimedia,
        WorkloadCategory::Office,
        WorkloadCategory::Productivity,
        WorkloadCategory::Workstation,
    ];

    /// Abbreviation used in the paper's Figure 14.
    pub fn abbrev(self) -> &'static str {
        match self {
            WorkloadCategory::Encoder => "enc",
            WorkloadCategory::SpecFp => "sfp",
            WorkloadCategory::Kernels => "kernels",
            WorkloadCategory::Multimedia => "mm",
            WorkloadCategory::Office => "office",
            WorkloadCategory::Productivity => "prod",
            WorkloadCategory::Workstation => "ws",
        }
    }

    /// Description from Table 2.
    pub fn description(self) -> &'static str {
        match self {
            WorkloadCategory::Encoder => "Audio/video encode",
            WorkloadCategory::SpecFp => "Spec FP's",
            WorkloadCategory::Kernels => "VectorAdd, FIRs",
            WorkloadCategory::Multimedia => "WMedia, photoshop",
            WorkloadCategory::Office => "Excel, word, ppt",
            WorkloadCategory::Productivity => "Internet content",
            WorkloadCategory::Workstation => "VectorAdd, FIRs",
        }
    }

    /// Number of traces in this category (Table 2).
    pub fn trace_count(self) -> usize {
        match self {
            WorkloadCategory::Encoder => 62,
            WorkloadCategory::SpecFp => 41,
            WorkloadCategory::Kernels => 52,
            WorkloadCategory::Multimedia => 85,
            WorkloadCategory::Office => 75,
            WorkloadCategory::Productivity => 45,
            WorkloadCategory::Workstation => 49,
        }
    }

    /// Base kernel mix and narrow bias for the category; per-app jitter is
    /// applied in [`WorkloadCategory::app_profile`].
    fn base_mix(self) -> (Vec<(KernelKind, f64)>, f64) {
        use KernelKind::*;
        match self {
            WorkloadCategory::Encoder => (
                vec![
                    (FirFilter, 2.5),
                    (VectorAddU8, 2.0),
                    (TableLookup, 1.5),
                    (RleCompress, 1.0),
                ],
                0.75,
            ),
            WorkloadCategory::SpecFp => (
                vec![
                    (FpStream, 3.5),
                    (WordSum, 2.0),
                    (FirFilter, 1.0),
                    (ByteHistogram, 0.5),
                ],
                0.45,
            ),
            WorkloadCategory::Kernels => (
                vec![
                    (VectorAddU8, 3.0),
                    (FirFilter, 2.5),
                    (WordSum, 1.5),
                    (MemcpyBytes, 1.0),
                ],
                0.8,
            ),
            WorkloadCategory::Multimedia => (
                vec![
                    (VectorAddU8, 3.0),
                    (ByteHistogram, 2.0),
                    (TableLookup, 1.5),
                    (FirFilter, 1.5),
                ],
                0.85,
            ),
            WorkloadCategory::Office => (
                vec![
                    (TokenScan, 2.5),
                    (StringMatch, 2.0),
                    (PointerChase, 1.5),
                    (TableLookup, 1.0),
                ],
                0.6,
            ),
            WorkloadCategory::Productivity => (
                vec![
                    (TokenScan, 2.0),
                    (PointerChase, 2.0),
                    (Checksum, 1.5),
                    (StringMatch, 1.0),
                ],
                0.55,
            ),
            WorkloadCategory::Workstation => (
                vec![
                    (WordSum, 2.0),
                    (FirFilter, 2.0),
                    (VectorAddU8, 1.5),
                    (Checksum, 1.0),
                ],
                0.65,
            ),
        }
    }

    /// Profile for application `index` (0-based) within the category.
    ///
    /// A deterministic per-app jitter perturbs the kernel weights, narrow bias
    /// and data size so the apps within a category form a spread around the
    /// category's behaviour (visible as the S-curve of Figure 14).
    pub fn app_profile(self, index: usize, trace_len: usize) -> WorkloadProfile {
        let (mut mix, base_bias) = self.base_mix();
        // Simple deterministic jitter derived from the app index.
        let h = (index as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self as u64 * 0x1234_5678);
        let jitter = |shift: u32| ((h >> shift) & 0xFF) as f64 / 255.0; // in [0,1]

        for (slot, (_, w)) in mix.iter_mut().enumerate() {
            // Scale each weight by 0.6..1.4 depending on the app.
            *w *= 0.6 + 0.8 * jitter(8 * (slot as u32 % 4));
        }
        let bias = (base_bias + (jitter(32) - 0.5) * 0.3).clamp(0.05, 0.95);
        let data_len = 256 + ((h >> 40) as usize % 768);

        WorkloadProfile::new(format!("{}_{:03}", self.abbrev(), index), mix)
            .with_category(self.abbrev())
            .with_narrow_bias(bias)
            .with_data_len(data_len)
            .with_trace_len(trace_len)
            .with_seed(h ^ 0xABCD_EF01)
    }

    /// All application profiles in this category.
    pub fn profiles(self, trace_len: usize) -> Vec<WorkloadProfile> {
        (0..self.trace_count())
            .map(|i| self.app_profile(i, trace_len))
            .collect()
    }
}

/// A lazy walk over the Table 2 suite: yields each category's application
/// profiles in `(category, app)` order **without materializing the whole
/// suite** — each profile (and, downstream, its trace) is built on demand,
/// which is what lets sharded campaigns stream the 409-application suite.
#[derive(Debug, Clone)]
pub struct SuiteProfiles {
    per_category: Option<usize>,
    trace_len: usize,
    category: usize,
    app: usize,
}

impl SuiteProfiles {
    /// Applications taken from one category.
    fn apps_in(&self, category: WorkloadCategory) -> usize {
        let n = category.trace_count();
        self.per_category.map_or(n, |cap| cap.min(n))
    }
}

impl Iterator for SuiteProfiles {
    type Item = WorkloadProfile;

    fn next(&mut self) -> Option<WorkloadProfile> {
        while let Some(&category) = WorkloadCategory::ALL.get(self.category) {
            if self.app < self.apps_in(category) {
                let profile = category.app_profile(self.app, self.trace_len);
                self.app += 1;
                return Some(profile);
            }
            self.category += 1;
            self.app = 0;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining: usize = WorkloadCategory::ALL
            .get(self.category..)
            .unwrap_or(&[])
            .iter()
            .map(|&c| self.apps_in(c))
            .sum::<usize>()
            .saturating_sub(self.app);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SuiteProfiles {}

/// Stream the Table 2 suite lazily: up to `per_category` applications from
/// each category (`None` = every application — the full 409-trace suite),
/// in `(category, app)` order.
pub fn suite_profiles(per_category: Option<usize>, trace_len: usize) -> SuiteProfiles {
    SuiteProfiles {
        per_category,
        trace_len,
        category: 0,
        app: 0,
    }
}

/// The complete Table 2 suite: every application profile of every category.
///
/// `trace_len` is the per-trace dynamic µop count (the paper used 10M
/// consecutive IA-32 instructions per trace for this study).  This
/// materializes all 409 profiles; prefer [`suite_profiles`] when streaming.
pub fn paper_suite(trace_len: usize) -> Vec<WorkloadProfile> {
    suite_profiles(None, trace_len).collect()
}

/// A smaller suite with `per_category` applications from each category, for
/// quick runs and CI-sized tests.
pub fn reduced_suite(per_category: usize, trace_len: usize) -> Vec<WorkloadProfile> {
    suite_profiles(Some(per_category), trace_len).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_counts_match_paper() {
        assert_eq!(WorkloadCategory::Encoder.trace_count(), 62);
        assert_eq!(WorkloadCategory::SpecFp.trace_count(), 41);
        assert_eq!(WorkloadCategory::Kernels.trace_count(), 52);
        assert_eq!(WorkloadCategory::Multimedia.trace_count(), 85);
        assert_eq!(WorkloadCategory::Office.trace_count(), 75);
        assert_eq!(WorkloadCategory::Productivity.trace_count(), 45);
        assert_eq!(WorkloadCategory::Workstation.trace_count(), 49);
        let total: usize = WorkloadCategory::ALL.iter().map(|c| c.trace_count()).sum();
        assert_eq!(total, 409, "Table 2 sums to 409 traces");
    }

    #[test]
    fn suite_has_one_profile_per_trace() {
        let suite = paper_suite(1_000);
        assert_eq!(suite.len(), 409);
        let names: std::collections::HashSet<_> = suite.iter().map(|p| p.name.clone()).collect();
        assert_eq!(names.len(), suite.len(), "profile names are unique");
    }

    #[test]
    fn apps_within_a_category_differ() {
        let a = WorkloadCategory::Multimedia.app_profile(0, 1_000);
        let b = WorkloadCategory::Multimedia.app_profile(1, 1_000);
        assert_ne!(a.seed, b.seed);
        assert!(
            (a.narrow_bias - b.narrow_bias).abs() > 1e-9
                || a.data_len != b.data_len
                || a.mix
                    .iter()
                    .zip(&b.mix)
                    .any(|(x, y)| (x.1 - y.1).abs() > 1e-9),
            "per-app jitter should differentiate apps"
        );
    }

    #[test]
    fn app_profiles_generate() {
        let p = WorkloadCategory::Kernels.app_profile(3, 2_000);
        let t = p.generate();
        assert_eq!(t.len(), 2_000);
        assert_eq!(t.category.as_deref(), Some("kernels"));
    }

    #[test]
    fn reduced_suite_respects_per_category_limit() {
        let s = reduced_suite(2, 500);
        assert_eq!(s.len(), 14);
    }

    #[test]
    fn suite_iterator_is_lazy_exact_and_matches_the_materialized_suites() {
        let mut iter = suite_profiles(None, 400);
        assert_eq!(iter.len(), 409, "full suite size is known up front");
        let first = iter.next().unwrap();
        assert_eq!(first.name, "enc_000");
        assert_eq!(iter.len(), 408, "ExactSizeIterator tracks consumption");
        // Lazy walk and eager collection agree element-for-element.
        let eager = paper_suite(400);
        let lazy: Vec<_> = suite_profiles(None, 400).collect();
        assert_eq!(lazy, eager);
        let capped: Vec<_> = suite_profiles(Some(3), 400).collect();
        assert_eq!(capped, reduced_suite(3, 400));
        assert_eq!(suite_profiles(Some(3), 400).len(), 21);
    }

    #[test]
    fn suite_iterator_caps_categories_independently() {
        // A cap above the smallest category (sfp, 41) but below the largest
        // (mm, 85) must clamp per category, not globally.
        let profiles: Vec<_> = suite_profiles(Some(50), 300).collect();
        let count = |cat: &str| {
            profiles
                .iter()
                .filter(|p| p.category.as_deref() == Some(cat))
                .count()
        };
        assert_eq!(count("sfp"), 41);
        assert_eq!(count("mm"), 50);
        assert_eq!(profiles.len(), suite_profiles(Some(50), 300).len());
    }

    #[test]
    fn category_metadata_is_stable() {
        for c in WorkloadCategory::ALL {
            assert!(!c.abbrev().is_empty());
            assert!(!c.description().is_empty());
        }
    }
}
