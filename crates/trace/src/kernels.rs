//! A library of small kernel programs that stand in for the paper's workloads.
//!
//! Each kernel is a realistic inner loop (byte histogram, run-length encoding,
//! pointer chasing, FIR filtering, …) expressed in the [`crate::program`] IR
//! together with an initial memory image and register presets.  Interpreting a
//! kernel yields a dynamic µop trace whose value widths, dependences, branch
//! behaviour and addressing patterns arise *naturally* from the computation —
//! which is what makes the synthetic workloads a faithful substitute for the
//! SPEC/proprietary traces the paper used (see DESIGN.md, substitutions).

use crate::interp::MemImage;
use crate::program::{Inst, Operand, Program};
use hc_isa::reg::ArchReg;
use hc_isa::uop::{AluOp, BranchCond, MemSize};
use hc_isa::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Base virtual address for kernel data segments.  High addresses keep base
/// registers wide, which is what makes the CR (carry-width) scheme matter.
pub const DATA_BASE: u32 = 0x4000_0000;

/// A ready-to-interpret kernel: program, initial memory and register presets.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// The kernel program.
    pub program: Program,
    /// Initial memory image.
    pub mem: MemImage,
    /// Initial register values (base pointers, sizes).
    pub presets: Vec<(ArchReg, Value)>,
}

/// The kinds of kernels available to workload profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    /// Byte histogram: load bytes, bump 32-bit counters (narrow data, wide addresses).
    ByteHistogram,
    /// Saturating 8-bit vector addition (multimedia-style pixel processing).
    VectorAddU8,
    /// Run-length encoding of a byte stream (compression-style, branch heavy).
    RleCompress,
    /// Byte-wise string/pattern match counting (parser/crafty-style control flow).
    StringMatch,
    /// Pointer chasing through a linked structure (mcf-style, wide values).
    PointerChase,
    /// 32-bit word summation over an array (wide ALU + loads).
    WordSum,
    /// FIR filter with 16-bit samples and multiply-accumulate (kernels/encoder-style).
    FirFilter,
    /// Table lookup translating bytes through a LUT (gap/vortex-style indexing).
    TableLookup,
    /// Rotating 32-bit checksum over words (wide, few branches).
    Checksum,
    /// Floating-point stream with integer index bookkeeping (SpecFP-style).
    FpStream,
    /// Byte memcpy loop (loads + stores of narrow data).
    MemcpyBytes,
    /// Token scanning with nested classification branches (gcc/perl-style).
    TokenScan,
}

impl KernelKind {
    /// Every kernel kind, for exhaustive tests and documentation.
    pub const ALL: [KernelKind; 12] = [
        KernelKind::ByteHistogram,
        KernelKind::VectorAddU8,
        KernelKind::RleCompress,
        KernelKind::StringMatch,
        KernelKind::PointerChase,
        KernelKind::WordSum,
        KernelKind::FirFilter,
        KernelKind::TableLookup,
        KernelKind::Checksum,
        KernelKind::FpStream,
        KernelKind::MemcpyBytes,
        KernelKind::TokenScan,
    ];

    /// A short identifier used in trace names.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::ByteHistogram => "byte_histogram",
            KernelKind::VectorAddU8 => "vector_add_u8",
            KernelKind::RleCompress => "rle_compress",
            KernelKind::StringMatch => "string_match",
            KernelKind::PointerChase => "pointer_chase",
            KernelKind::WordSum => "word_sum",
            KernelKind::FirFilter => "fir_filter",
            KernelKind::TableLookup => "table_lookup",
            KernelKind::Checksum => "checksum",
            KernelKind::FpStream => "fp_stream",
            KernelKind::MemcpyBytes => "memcpy_bytes",
            KernelKind::TokenScan => "token_scan",
        }
    }

    /// Build the kernel.  `data_len` controls the working-set size,
    /// `narrow_bias` in `[0,1]` biases generated data towards small byte
    /// values, `seed` makes generation deterministic.
    pub fn build(self, data_len: usize, narrow_bias: f64, seed: u64) -> Kernel {
        let params = KernelParams {
            data_len: data_len.clamp(16, 1 << 16),
            narrow_bias: narrow_bias.clamp(0.0, 1.0),
            seed,
        };
        match self {
            KernelKind::ByteHistogram => byte_histogram(&params),
            KernelKind::VectorAddU8 => vector_add_u8(&params),
            KernelKind::RleCompress => rle_compress(&params),
            KernelKind::StringMatch => string_match(&params),
            KernelKind::PointerChase => pointer_chase(&params),
            KernelKind::WordSum => word_sum(&params),
            KernelKind::FirFilter => fir_filter(&params),
            KernelKind::TableLookup => table_lookup(&params),
            KernelKind::Checksum => checksum(&params),
            KernelKind::FpStream => fp_stream(&params),
            KernelKind::MemcpyBytes => memcpy_bytes(&params),
            KernelKind::TokenScan => token_scan(&params),
        }
    }
}

/// Parameters shared by all kernel builders.
#[derive(Debug, Clone, Copy)]
struct KernelParams {
    data_len: usize,
    narrow_bias: f64,
    seed: u64,
}

impl KernelParams {
    fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    /// Generate `n` data bytes, biased towards small values.
    fn bytes(&self, n: usize) -> Vec<u8> {
        let mut rng = self.rng();
        (0..n)
            .map(|_| {
                if rng.gen_bool(self.narrow_bias) {
                    rng.gen_range(0..32u8)
                } else {
                    rng.gen::<u8>()
                }
            })
            .collect()
    }

    /// Generate `n` 32-bit words; biased towards narrow values according to
    /// `narrow_bias`.
    fn words(&self, n: usize) -> Vec<u32> {
        let mut rng = self.rng();
        (0..n)
            .map(|_| {
                if rng.gen_bool(self.narrow_bias) {
                    rng.gen_range(0..128u32)
                } else {
                    rng.gen_range(0x100..0x40_0000u32)
                }
            })
            .collect()
    }
}

// Register conventions used by the kernels:
//   ebx, esi, edi — base pointers (wide)
//   ecx           — loop counter (narrow for short loops)
//   eax, edx      — data values
//   ebp, esp      — extra accumulators / secondary pointers

fn counted_loop_header(p: &mut Program) -> crate::program::Label {
    // ecx = 0
    p.push(Inst::MovImm {
        dst: ArchReg::Ecx,
        val: 0,
    });
    p.next_label()
}

fn counted_loop_footer(p: &mut Program, body: crate::program::Label, len: usize) {
    // ecx += 1; cmp ecx, len; jl body
    p.push(Inst::Alu {
        op: AluOp::Add,
        dst: ArchReg::Ecx,
        a: ArchReg::Ecx,
        b: Operand::Imm(1),
    });
    p.push(Inst::CmpBranch {
        cond: BranchCond::Lt,
        a: ArchReg::Ecx,
        b: Operand::Imm(len as i32),
        target: body,
    });
    p.push(Inst::Halt);
}

fn byte_histogram(params: &KernelParams) -> Kernel {
    let n = params.data_len;
    let src = DATA_BASE;
    let hist = DATA_BASE + 0x10_0000;
    let mut mem = MemImage::new();
    mem.fill(src, &params.bytes(n));
    // Histogram counters start at zero (background pattern is fine).

    let mut p = Program::new("byte_histogram");
    let body = counted_loop_header(&mut p);
    // eax = src[ecx]  (byte load: wide base + narrow index)
    p.push(Inst::Load {
        dst: ArchReg::Eax,
        base: ArchReg::Ebx,
        offset: Operand::Reg(ArchReg::Ecx),
        size: MemSize::Byte,
    });
    // edx = eax * 4 (index scaling via shift)
    p.push(Inst::Alu {
        op: AluOp::Shl,
        dst: ArchReg::Edx,
        a: ArchReg::Eax,
        b: Operand::Imm(2),
    });
    // ebp = hist[edx]
    p.push(Inst::Load {
        dst: ArchReg::Ebp,
        base: ArchReg::Esi,
        offset: Operand::Reg(ArchReg::Edx),
        size: MemSize::DWord,
    });
    // ebp += 1
    p.push(Inst::Alu {
        op: AluOp::Add,
        dst: ArchReg::Ebp,
        a: ArchReg::Ebp,
        b: Operand::Imm(1),
    });
    // hist[edx] = ebp
    p.push(Inst::Store {
        src: ArchReg::Ebp,
        base: ArchReg::Esi,
        offset: Operand::Reg(ArchReg::Edx),
        size: MemSize::DWord,
    });
    counted_loop_footer(&mut p, body, n);

    Kernel {
        program: p,
        mem,
        presets: vec![
            (ArchReg::Ebx, Value::new(src)),
            (ArchReg::Esi, Value::new(hist)),
        ],
    }
}

fn vector_add_u8(params: &KernelParams) -> Kernel {
    let n = params.data_len;
    let a = DATA_BASE;
    let b = DATA_BASE + 0x10_0000;
    let c = DATA_BASE + 0x20_0000;
    let mut mem = MemImage::new();
    mem.fill(a, &params.bytes(n));
    let mut p2 = *params;
    p2.seed = params.seed.wrapping_add(1);
    mem.fill(b, &p2.bytes(n));

    let mut p = Program::new("vector_add_u8");
    let body = counted_loop_header(&mut p);
    p.push(Inst::Load {
        dst: ArchReg::Eax,
        base: ArchReg::Ebx,
        offset: Operand::Reg(ArchReg::Ecx),
        size: MemSize::Byte,
    });
    p.push(Inst::Load {
        dst: ArchReg::Edx,
        base: ArchReg::Esi,
        offset: Operand::Reg(ArchReg::Ecx),
        size: MemSize::Byte,
    });
    // eax = eax + edx (byte add; may exceed 255, emulating saturation check)
    p.push(Inst::Alu {
        op: AluOp::Add,
        dst: ArchReg::Eax,
        a: ArchReg::Eax,
        b: Operand::Reg(ArchReg::Edx),
    });
    // clamp: and with 0xFF (keeps result narrow like a saturating pixel op)
    p.push(Inst::Alu {
        op: AluOp::And,
        dst: ArchReg::Eax,
        a: ArchReg::Eax,
        b: Operand::Imm(0xFF),
    });
    p.push(Inst::Store {
        src: ArchReg::Eax,
        base: ArchReg::Edi,
        offset: Operand::Reg(ArchReg::Ecx),
        size: MemSize::Byte,
    });
    counted_loop_footer(&mut p, body, n);

    Kernel {
        program: p,
        mem,
        presets: vec![
            (ArchReg::Ebx, Value::new(a)),
            (ArchReg::Esi, Value::new(b)),
            (ArchReg::Edi, Value::new(c)),
        ],
    }
}

fn rle_compress(params: &KernelParams) -> Kernel {
    let n = params.data_len;
    let src = DATA_BASE;
    let dst = DATA_BASE + 0x10_0000;
    let mut mem = MemImage::new();
    // Runs of repeated bytes so the RLE branches are data dependent.
    let mut rng = params.rng();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let byte: u8 = if rng.gen_bool(params.narrow_bias) {
            rng.gen_range(0..16)
        } else {
            rng.gen()
        };
        let run = rng.gen_range(1..8usize);
        for _ in 0..run.min(n - data.len()) {
            data.push(byte);
        }
    }
    mem.fill(src, &data);

    // eax = current byte, edx = previous byte, ebp = run length, esp = out idx
    let mut p = Program::new("rle_compress");
    p.push(Inst::MovImm {
        dst: ArchReg::Edx,
        val: -1,
    });
    p.push(Inst::MovImm {
        dst: ArchReg::Ebp,
        val: 0,
    });
    p.push(Inst::MovImm {
        dst: ArchReg::Esp,
        val: 0,
    });
    let body = counted_loop_header(&mut p);
    p.push(Inst::Load {
        dst: ArchReg::Eax,
        base: ArchReg::Ebx,
        offset: Operand::Reg(ArchReg::Ecx),
        size: MemSize::Byte,
    });
    // if eax == edx { ebp += 1 } else { emit; edx = eax; ebp = 1 }
    let else_ph = p.push(Inst::CmpBranch {
        cond: BranchCond::Ne,
        a: ArchReg::Eax,
        b: Operand::Reg(ArchReg::Edx),
        target: crate::program::Label(0), // patched below
    });
    // same byte: extend run
    p.push(Inst::Alu {
        op: AluOp::Add,
        dst: ArchReg::Ebp,
        a: ArchReg::Ebp,
        b: Operand::Imm(1),
    });
    let skip_ph = p.push(Inst::Jump {
        target: crate::program::Label(0), // patched below
    });
    // different byte: store run length and byte, reset
    let else_target = p.next_label();
    p.push(Inst::Store {
        src: ArchReg::Ebp,
        base: ArchReg::Esi,
        offset: Operand::Reg(ArchReg::Esp),
        size: MemSize::Byte,
    });
    p.push(Inst::Store {
        src: ArchReg::Edx,
        base: ArchReg::Esi,
        offset: Operand::Reg(ArchReg::Esp),
        size: MemSize::Byte,
    });
    p.push(Inst::Alu {
        op: AluOp::Add,
        dst: ArchReg::Esp,
        a: ArchReg::Esp,
        b: Operand::Imm(2),
    });
    p.push(Inst::Mov {
        dst: ArchReg::Edx,
        src: ArchReg::Eax,
    });
    p.push(Inst::MovImm {
        dst: ArchReg::Ebp,
        val: 1,
    });
    let join = p.next_label();
    p.patch(
        else_ph,
        Inst::CmpBranch {
            cond: BranchCond::Ne,
            a: ArchReg::Eax,
            b: Operand::Reg(ArchReg::Edx),
            target: else_target,
        },
    );
    p.patch(skip_ph, Inst::Jump { target: join });
    counted_loop_footer(&mut p, body, n);

    Kernel {
        program: p,
        mem,
        presets: vec![
            (ArchReg::Ebx, Value::new(src)),
            (ArchReg::Esi, Value::new(dst)),
        ],
    }
}

fn string_match(params: &KernelParams) -> Kernel {
    let n = params.data_len;
    let hay = DATA_BASE;
    let mut mem = MemImage::new();
    // ASCII-ish text.
    let mut rng = params.rng();
    let text: Vec<u8> = (0..n)
        .map(|_| {
            if rng.gen_bool(0.15) {
                b' '
            } else {
                rng.gen_range(b'a'..=b'z')
            }
        })
        .collect();
    mem.fill(hay, &text);

    // Count occurrences of the byte 'e' followed by 'r'.
    let mut p = Program::new("string_match");
    p.push(Inst::MovImm {
        dst: ArchReg::Ebp,
        val: 0,
    });
    p.push(Inst::MovImm {
        dst: ArchReg::Edx,
        val: 0,
    });
    let body = counted_loop_header(&mut p);
    p.push(Inst::Load {
        dst: ArchReg::Eax,
        base: ArchReg::Ebx,
        offset: Operand::Reg(ArchReg::Ecx),
        size: MemSize::Byte,
    });
    // if eax != 'e' goto not_e
    let not_e_ph = p.push(Inst::CmpBranch {
        cond: BranchCond::Ne,
        a: ArchReg::Eax,
        b: Operand::Imm(b'e' as i32),
        target: crate::program::Label(0),
    });
    // if edx (previous) == 'r'... actually check next byte via a second load
    p.push(Inst::Load {
        dst: ArchReg::Edx,
        base: ArchReg::Ebx,
        offset: Operand::Reg(ArchReg::Ecx),
        size: MemSize::Byte,
    });
    let not_match_ph = p.push(Inst::CmpBranch {
        cond: BranchCond::Ne,
        a: ArchReg::Edx,
        b: Operand::Imm(b'e' as i32),
        target: crate::program::Label(0),
    });
    p.push(Inst::Alu {
        op: AluOp::Add,
        dst: ArchReg::Ebp,
        a: ArchReg::Ebp,
        b: Operand::Imm(1),
    });
    let join = p.next_label();
    p.patch(
        not_e_ph,
        Inst::CmpBranch {
            cond: BranchCond::Ne,
            a: ArchReg::Eax,
            b: Operand::Imm(b'e' as i32),
            target: join,
        },
    );
    p.patch(
        not_match_ph,
        Inst::CmpBranch {
            cond: BranchCond::Ne,
            a: ArchReg::Edx,
            b: Operand::Imm(b'e' as i32),
            target: join,
        },
    );
    counted_loop_footer(&mut p, body, n);

    Kernel {
        program: p,
        mem,
        presets: vec![(ArchReg::Ebx, Value::new(hay))],
    }
}

fn pointer_chase(params: &KernelParams) -> Kernel {
    let nodes = (params.data_len / 4).max(8);
    let base = DATA_BASE + 0x40_0000;
    let stride = 16u32;
    let mut mem = MemImage::new();
    // Build a shuffled singly linked list of `nodes` nodes; node i at
    // base + i*stride, first word is the address of the next node, second word
    // is a small payload.
    let mut rng = params.rng();
    let mut order: Vec<u32> = (1..nodes as u32).collect();
    // Fisher–Yates shuffle.
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut current = 0u32;
    for &next in &order {
        let addr = base + current * stride;
        mem.write_u32(addr, base + next * stride);
        mem.write_u32(addr + 4, rng.gen_range(0..64));
        current = next;
    }
    // Last node points back to the head so the walk can loop.
    mem.write_u32(base + current * stride, base);
    mem.write_u32(base + current * stride + 4, rng.gen_range(0..64));

    // ebx = current node pointer; eax = payload accumulator.
    let mut p = Program::new("pointer_chase");
    p.push(Inst::MovImm {
        dst: ArchReg::Eax,
        val: 0,
    });
    let body = counted_loop_header(&mut p);
    // edx = node->payload
    p.push(Inst::Load {
        dst: ArchReg::Edx,
        base: ArchReg::Ebx,
        offset: Operand::Imm(4),
        size: MemSize::DWord,
    });
    p.push(Inst::Alu {
        op: AluOp::Add,
        dst: ArchReg::Eax,
        a: ArchReg::Eax,
        b: Operand::Reg(ArchReg::Edx),
    });
    // ebx = node->next  (wide pointer load)
    p.push(Inst::Load {
        dst: ArchReg::Ebx,
        base: ArchReg::Ebx,
        offset: Operand::Imm(0),
        size: MemSize::DWord,
    });
    counted_loop_footer(&mut p, body, nodes * 2);

    Kernel {
        program: p,
        mem,
        presets: vec![(ArchReg::Ebx, Value::new(base))],
    }
}

fn word_sum(params: &KernelParams) -> Kernel {
    let n = params.data_len;
    let src = DATA_BASE + 0x60_0000;
    let mut mem = MemImage::new();
    for (i, w) in params.words(n).into_iter().enumerate() {
        mem.write_u32(src + (i as u32) * 4, w);
    }

    let mut p = Program::new("word_sum");
    p.push(Inst::MovImm {
        dst: ArchReg::Eax,
        val: 0,
    });
    p.push(Inst::MovImm {
        dst: ArchReg::Edx,
        val: 0,
    });
    let body = counted_loop_header(&mut p);
    p.push(Inst::Load {
        dst: ArchReg::Ebp,
        base: ArchReg::Ebx,
        offset: Operand::Reg(ArchReg::Edx),
        size: MemSize::DWord,
    });
    p.push(Inst::Alu {
        op: AluOp::Add,
        dst: ArchReg::Eax,
        a: ArchReg::Eax,
        b: Operand::Reg(ArchReg::Ebp),
    });
    // edx += 4 (word stride)
    p.push(Inst::Alu {
        op: AluOp::Add,
        dst: ArchReg::Edx,
        a: ArchReg::Edx,
        b: Operand::Imm(4),
    });
    counted_loop_footer(&mut p, body, n);

    Kernel {
        program: p,
        mem,
        presets: vec![(ArchReg::Ebx, Value::new(src))],
    }
}

fn fir_filter(params: &KernelParams) -> Kernel {
    let n = params.data_len;
    let taps = 8usize;
    let src = DATA_BASE + 0x70_0000;
    let coef = DATA_BASE + 0x71_0000;
    let dst = DATA_BASE + 0x72_0000;
    let mut mem = MemImage::new();
    let mut rng = params.rng();
    for i in 0..n {
        let sample: u32 = if rng.gen_bool(params.narrow_bias) {
            rng.gen_range(0..64)
        } else {
            rng.gen_range(0..1024)
        };
        mem.write(src + (i as u32) * 2, MemSize::Word, sample);
    }
    for t in 0..taps {
        mem.write(coef + (t as u32) * 2, MemSize::Word, rng.gen_range(1..16));
    }

    // Outer loop over samples; inner accumulation unrolled over `taps` taps.
    let mut p = Program::new("fir_filter");
    let body = counted_loop_header(&mut p);
    p.push(Inst::MovImm {
        dst: ArchReg::Eax,
        val: 0,
    });
    // edx = ecx * 2 (sample byte offset)
    p.push(Inst::Alu {
        op: AluOp::Shl,
        dst: ArchReg::Edx,
        a: ArchReg::Ecx,
        b: Operand::Imm(1),
    });
    for t in 0..taps {
        // ebp = src[edx + t*2]
        p.push(Inst::Alu {
            op: AluOp::Add,
            dst: ArchReg::Esp,
            a: ArchReg::Edx,
            b: Operand::Imm((t * 2) as i32),
        });
        p.push(Inst::Load {
            dst: ArchReg::Ebp,
            base: ArchReg::Ebx,
            offset: Operand::Reg(ArchReg::Esp),
            size: MemSize::Word,
        });
        // edi-temp = coef[t]
        p.push(Inst::Load {
            dst: ArchReg::Edi,
            base: ArchReg::Esi,
            offset: Operand::Imm((t * 2) as i32),
            size: MemSize::Word,
        });
        // ebp *= edi
        p.push(Inst::Mul {
            dst: ArchReg::Ebp,
            a: ArchReg::Ebp,
            b: Operand::Reg(ArchReg::Edi),
        });
        // eax += ebp
        p.push(Inst::Alu {
            op: AluOp::Add,
            dst: ArchReg::Eax,
            a: ArchReg::Eax,
            b: Operand::Reg(ArchReg::Ebp),
        });
    }
    // dst[edx] = eax
    p.push(Inst::Store {
        src: ArchReg::Eax,
        base: ArchReg::Ebx,
        offset: Operand::Reg(ArchReg::Edx),
        size: MemSize::Word,
    });
    counted_loop_footer(&mut p, body, n - taps);

    Kernel {
        program: p,
        mem,
        presets: vec![
            (ArchReg::Ebx, Value::new(src)),
            (ArchReg::Esi, Value::new(coef)),
            (ArchReg::Edi, Value::new(dst)),
        ],
    }
}

fn table_lookup(params: &KernelParams) -> Kernel {
    let n = params.data_len;
    let src = DATA_BASE + 0x80_0000;
    let lut = DATA_BASE + 0x81_0000;
    let dst = DATA_BASE + 0x82_0000;
    let mut mem = MemImage::new();
    mem.fill(src, &params.bytes(n));
    let mut rng = params.rng();
    let table: Vec<u8> = (0..256).map(|_| rng.gen_range(0..64u8)).collect();
    mem.fill(lut, &table);

    let mut p = Program::new("table_lookup");
    let body = counted_loop_header(&mut p);
    p.push(Inst::Load {
        dst: ArchReg::Eax,
        base: ArchReg::Ebx,
        offset: Operand::Reg(ArchReg::Ecx),
        size: MemSize::Byte,
    });
    p.push(Inst::Load {
        dst: ArchReg::Edx,
        base: ArchReg::Esi,
        offset: Operand::Reg(ArchReg::Eax),
        size: MemSize::Byte,
    });
    p.push(Inst::Store {
        src: ArchReg::Edx,
        base: ArchReg::Edi,
        offset: Operand::Reg(ArchReg::Ecx),
        size: MemSize::Byte,
    });
    counted_loop_footer(&mut p, body, n);

    Kernel {
        program: p,
        mem,
        presets: vec![
            (ArchReg::Ebx, Value::new(src)),
            (ArchReg::Esi, Value::new(lut)),
            (ArchReg::Edi, Value::new(dst)),
        ],
    }
}

fn checksum(params: &KernelParams) -> Kernel {
    let n = params.data_len;
    let src = DATA_BASE + 0x90_0000;
    let mut mem = MemImage::new();
    let mut p2 = *params;
    p2.narrow_bias = (params.narrow_bias * 0.5).min(1.0);
    for (i, w) in p2.words(n).into_iter().enumerate() {
        mem.write_u32(src + (i as u32) * 4, w);
    }

    let mut p = Program::new("checksum");
    p.push(Inst::MovImm {
        dst: ArchReg::Eax,
        val: 0x0101,
    });
    p.push(Inst::MovImm {
        dst: ArchReg::Edx,
        val: 0,
    });
    let body = counted_loop_header(&mut p);
    p.push(Inst::Load {
        dst: ArchReg::Ebp,
        base: ArchReg::Ebx,
        offset: Operand::Reg(ArchReg::Edx),
        size: MemSize::DWord,
    });
    p.push(Inst::Alu {
        op: AluOp::Xor,
        dst: ArchReg::Eax,
        a: ArchReg::Eax,
        b: Operand::Reg(ArchReg::Ebp),
    });
    p.push(Inst::Alu {
        op: AluOp::Shl,
        dst: ArchReg::Esp,
        a: ArchReg::Eax,
        b: Operand::Imm(3),
    });
    p.push(Inst::Alu {
        op: AluOp::Xor,
        dst: ArchReg::Eax,
        a: ArchReg::Eax,
        b: Operand::Reg(ArchReg::Esp),
    });
    p.push(Inst::Alu {
        op: AluOp::Add,
        dst: ArchReg::Edx,
        a: ArchReg::Edx,
        b: Operand::Imm(4),
    });
    counted_loop_footer(&mut p, body, n);

    Kernel {
        program: p,
        mem,
        presets: vec![(ArchReg::Ebx, Value::new(src))],
    }
}

fn fp_stream(params: &KernelParams) -> Kernel {
    let n = params.data_len;
    let src = DATA_BASE + 0xA0_0000;
    let dst = DATA_BASE + 0xA8_0000;
    let mut mem = MemImage::new();
    let mut rng = params.rng();
    for i in 0..n {
        mem.write_u32(src + (i as u32) * 4, rng.gen::<u32>() | 0x3F00_0000);
    }

    let mut p = Program::new("fp_stream");
    p.push(Inst::MovImm {
        dst: ArchReg::Edx,
        val: 0,
    });
    let body = counted_loop_header(&mut p);
    p.push(Inst::Load {
        dst: ArchReg::Eax,
        base: ArchReg::Ebx,
        offset: Operand::Reg(ArchReg::Edx),
        size: MemSize::DWord,
    });
    p.push(Inst::Fp {
        dst: ArchReg::Ebp,
        src: ArchReg::Eax,
    });
    p.push(Inst::Fp {
        dst: ArchReg::Ebp,
        src: ArchReg::Ebp,
    });
    p.push(Inst::Store {
        src: ArchReg::Ebp,
        base: ArchReg::Esi,
        offset: Operand::Reg(ArchReg::Edx),
        size: MemSize::DWord,
    });
    p.push(Inst::Alu {
        op: AluOp::Add,
        dst: ArchReg::Edx,
        a: ArchReg::Edx,
        b: Operand::Imm(4),
    });
    counted_loop_footer(&mut p, body, n);

    Kernel {
        program: p,
        mem,
        presets: vec![
            (ArchReg::Ebx, Value::new(src)),
            (ArchReg::Esi, Value::new(dst)),
        ],
    }
}

fn memcpy_bytes(params: &KernelParams) -> Kernel {
    let n = params.data_len;
    let src = DATA_BASE + 0xB0_0000;
    let dst = DATA_BASE + 0xB8_0000;
    let mut mem = MemImage::new();
    mem.fill(src, &params.bytes(n));

    let mut p = Program::new("memcpy_bytes");
    let body = counted_loop_header(&mut p);
    p.push(Inst::Load {
        dst: ArchReg::Eax,
        base: ArchReg::Ebx,
        offset: Operand::Reg(ArchReg::Ecx),
        size: MemSize::Byte,
    });
    p.push(Inst::Store {
        src: ArchReg::Eax,
        base: ArchReg::Esi,
        offset: Operand::Reg(ArchReg::Ecx),
        size: MemSize::Byte,
    });
    counted_loop_footer(&mut p, body, n);

    Kernel {
        program: p,
        mem,
        presets: vec![
            (ArchReg::Ebx, Value::new(src)),
            (ArchReg::Esi, Value::new(dst)),
        ],
    }
}

fn token_scan(params: &KernelParams) -> Kernel {
    let n = params.data_len;
    let src = DATA_BASE + 0xC0_0000;
    let mut mem = MemImage::new();
    let mut rng = params.rng();
    // Pseudo source text: identifiers, digits, punctuation.
    let text: Vec<u8> = (0..n)
        .map(|_| match rng.gen_range(0..10) {
            0..=4 => rng.gen_range(b'a'..=b'z'),
            5..=7 => rng.gen_range(b'0'..=b'9'),
            8 => b' ',
            _ => b'+',
        })
        .collect();
    mem.fill(src, &text);

    // Classify each byte: letters bump ebp, digits bump edx, others bump esp.
    let mut p = Program::new("token_scan");
    p.push(Inst::MovImm {
        dst: ArchReg::Ebp,
        val: 0,
    });
    p.push(Inst::MovImm {
        dst: ArchReg::Edx,
        val: 0,
    });
    p.push(Inst::MovImm {
        dst: ArchReg::Esp,
        val: 0,
    });
    let body = counted_loop_header(&mut p);
    p.push(Inst::Load {
        dst: ArchReg::Eax,
        base: ArchReg::Ebx,
        offset: Operand::Reg(ArchReg::Ecx),
        size: MemSize::Byte,
    });
    // if eax < 'a' goto not_letter
    let not_letter_ph = p.push(Inst::CmpBranch {
        cond: BranchCond::B,
        a: ArchReg::Eax,
        b: Operand::Imm(b'a' as i32),
        target: crate::program::Label(0),
    });
    p.push(Inst::Alu {
        op: AluOp::Add,
        dst: ArchReg::Ebp,
        a: ArchReg::Ebp,
        b: Operand::Imm(1),
    });
    let skip1_ph = p.push(Inst::Jump {
        target: crate::program::Label(0),
    });
    // not a letter: digit?
    let not_letter = p.next_label();
    let not_digit_ph = p.push(Inst::CmpBranch {
        cond: BranchCond::B,
        a: ArchReg::Eax,
        b: Operand::Imm(b'0' as i32),
        target: crate::program::Label(0),
    });
    p.push(Inst::Alu {
        op: AluOp::Add,
        dst: ArchReg::Edx,
        a: ArchReg::Edx,
        b: Operand::Imm(1),
    });
    let skip2_ph = p.push(Inst::Jump {
        target: crate::program::Label(0),
    });
    let not_digit = p.next_label();
    p.push(Inst::Alu {
        op: AluOp::Add,
        dst: ArchReg::Esp,
        a: ArchReg::Esp,
        b: Operand::Imm(1),
    });
    let join = p.next_label();
    p.patch(
        not_letter_ph,
        Inst::CmpBranch {
            cond: BranchCond::B,
            a: ArchReg::Eax,
            b: Operand::Imm(b'a' as i32),
            target: not_letter,
        },
    );
    p.patch(skip1_ph, Inst::Jump { target: join });
    p.patch(
        not_digit_ph,
        Inst::CmpBranch {
            cond: BranchCond::B,
            a: ArchReg::Eax,
            b: Operand::Imm(b'0' as i32),
            target: not_digit,
        },
    );
    p.patch(skip2_ph, Inst::Jump { target: join });
    counted_loop_footer(&mut p, body, n);

    Kernel {
        program: p,
        mem,
        presets: vec![(ArchReg::Ebx, Value::new(src))],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{InterpConfig, Interpreter};

    fn run_kernel(kind: KernelKind, max_uops: usize) -> crate::trace::Trace {
        let k = kind.build(256, 0.7, 42);
        let mut interp = Interpreter::new(
            k.mem,
            InterpConfig {
                max_uops,
                loop_program: true,
                pc_base: 0,
            },
        );
        for (r, v) in &k.presets {
            interp.set_reg(*r, *v);
        }
        interp.run(&k.program).expect("kernel must interpret")
    }

    #[test]
    fn every_kernel_builds_and_runs() {
        for kind in KernelKind::ALL {
            let t = run_kernel(kind, 2_000);
            assert_eq!(t.len(), 2_000, "kernel {} too short", kind.name());
        }
    }

    #[test]
    fn every_kernel_program_validates() {
        for kind in KernelKind::ALL {
            let k = kind.build(128, 0.5, 7);
            assert!(k.program.validate().is_ok(), "kernel {}", kind.name());
        }
    }

    #[test]
    fn kernels_are_deterministic_for_a_seed() {
        let a = run_kernel(KernelKind::RleCompress, 1_000);
        let b = run_kernel(KernelKind::RleCompress, 1_000);
        assert_eq!(a.uops.len(), b.uops.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.result, y.result);
            assert_eq!(x.mem, y.mem);
        }
    }

    #[test]
    fn byte_kernels_are_narrow_heavy_and_word_kernels_are_not() {
        let narrow_frac = |t: &crate::trace::Trace| {
            let vals: Vec<_> = t.iter().filter_map(|d| d.result).collect();
            vals.iter().filter(|v| v.is_narrow()).count() as f64 / vals.len().max(1) as f64
        };
        let hist = run_kernel(KernelKind::ByteHistogram, 4_000);
        let chase = run_kernel(KernelKind::PointerChase, 4_000);
        assert!(
            narrow_frac(&hist) > narrow_frac(&chase),
            "byte histogram should produce more narrow results than pointer chasing"
        );
    }

    #[test]
    fn pointer_chase_visits_wide_addresses() {
        let t = run_kernel(KernelKind::PointerChase, 2_000);
        let wide_loads = t
            .iter()
            .filter(|d| d.uop.kind.is_load())
            .filter(|d| !d.result.unwrap().is_narrow())
            .count();
        assert!(wide_loads > 100, "pointer loads should be wide values");
    }

    #[test]
    fn branch_kernels_contain_conditional_branches() {
        for kind in [
            KernelKind::RleCompress,
            KernelKind::TokenScan,
            KernelKind::StringMatch,
        ] {
            let t = run_kernel(kind, 2_000);
            let branches = t.iter().filter(|d| d.uop.kind.is_cond_branch()).count();
            assert!(
                branches > 100,
                "{} should be branch heavy, got {branches}",
                kind.name()
            );
        }
    }

    #[test]
    fn fp_stream_contains_fp_uops() {
        let t = run_kernel(KernelKind::FpStream, 2_000);
        assert!(t
            .iter()
            .any(|d| matches!(d.uop.kind, hc_isa::uop::UopKind::Fp)));
    }

    #[test]
    fn fir_contains_multiplies() {
        let t = run_kernel(KernelKind::FirFilter, 2_000);
        assert!(t
            .iter()
            .any(|d| matches!(d.uop.kind, hc_isa::uop::UopKind::Mul)));
    }

    #[test]
    fn loads_have_wide_base_and_narrow_index() {
        // The byte histogram loads src[ecx]: wide base, narrow-ish index —
        // exactly the CR-friendly addressing of Figure 10.
        let t = run_kernel(KernelKind::ByteHistogram, 4_000);
        let cr_like = t
            .iter()
            .filter(|d| d.uop.kind.is_load())
            .filter(|d| {
                let srcs = d.source_values();
                srcs.len() == 2 && !srcs[0].is_narrow() && srcs[1].is_narrow()
            })
            .count();
        assert!(cr_like > 200, "expected CR-friendly loads, got {cr_like}");
    }
}
