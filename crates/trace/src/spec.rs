//! SPEC Int 2000 workload profiles.
//!
//! The paper's detailed analysis (Figures 1, 5–13) uses 12 traces generated
//! from the SPEC Integer 2000 benchmarks.  We cannot redistribute SPEC, so
//! each benchmark is represented by a kernel mix chosen to echo its well-known
//! behaviour (bzip2/gzip are byte-stream compressors, mcf chases pointers,
//! gcc/perlbmk scan and classify tokens, eon has FP content, …) and a
//! narrow-value bias that lands the narrow-operand fraction in the
//! neighbourhood the paper's Figure 1 reports.

use crate::kernels::KernelKind;
use crate::profile::WorkloadProfile;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// The 12 SPEC Int 2000 benchmarks used by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SpecBenchmark {
    Bzip2,
    Crafty,
    Eon,
    Gap,
    Gcc,
    Gzip,
    Mcf,
    Parser,
    Perlbmk,
    Twolf,
    Vortex,
    Vpr,
}

impl SpecBenchmark {
    /// All benchmarks, in the order the paper's figures list them.
    pub const ALL: [SpecBenchmark; 12] = [
        SpecBenchmark::Bzip2,
        SpecBenchmark::Crafty,
        SpecBenchmark::Eon,
        SpecBenchmark::Gap,
        SpecBenchmark::Gcc,
        SpecBenchmark::Gzip,
        SpecBenchmark::Mcf,
        SpecBenchmark::Parser,
        SpecBenchmark::Perlbmk,
        SpecBenchmark::Twolf,
        SpecBenchmark::Vortex,
        SpecBenchmark::Vpr,
    ];

    /// Benchmark name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SpecBenchmark::Bzip2 => "bzip2",
            SpecBenchmark::Crafty => "crafty",
            SpecBenchmark::Eon => "eon",
            SpecBenchmark::Gap => "gap",
            SpecBenchmark::Gcc => "gcc",
            SpecBenchmark::Gzip => "gzip",
            SpecBenchmark::Mcf => "mcf",
            SpecBenchmark::Parser => "parser",
            SpecBenchmark::Perlbmk => "perlbmk",
            SpecBenchmark::Twolf => "twolf",
            SpecBenchmark::Vortex => "vortex",
            SpecBenchmark::Vpr => "vpr",
        }
    }

    /// The workload profile standing in for this benchmark.
    ///
    /// `trace_len` is the number of dynamic µops to generate (the paper used
    /// 100M-instruction traces; the default harness uses much shorter traces
    /// and relies on the workloads being loop-dominated, which they are).
    pub fn profile(self, trace_len: usize) -> WorkloadProfile {
        use KernelKind::*;
        let (mix, narrow_bias): (Vec<(KernelKind, f64)>, f64) = match self {
            // Byte-stream compressors: dominated by byte loads/stores, RLE-like
            // runs and histogram-style counting.
            SpecBenchmark::Bzip2 => (
                vec![
                    (RleCompress, 3.0),
                    (ByteHistogram, 2.0),
                    (MemcpyBytes, 1.0),
                    (WordSum, 1.0),
                ],
                0.85,
            ),
            SpecBenchmark::Gzip => (
                vec![
                    (RleCompress, 3.0),
                    (TableLookup, 2.0),
                    (MemcpyBytes, 1.5),
                    (Checksum, 1.0),
                ],
                0.8,
            ),
            // Chess: attack tables, bit twiddling, branchy evaluation.
            SpecBenchmark::Crafty => (
                vec![
                    (TableLookup, 2.0),
                    (Checksum, 2.0),
                    (StringMatch, 1.5),
                    (WordSum, 1.5),
                ],
                0.55,
            ),
            // Ray tracer (C++): FP heavy with integer bookkeeping.
            SpecBenchmark::Eon => (
                vec![
                    (FpStream, 3.0),
                    (WordSum, 1.5),
                    (ByteHistogram, 1.0),
                    (TokenScan, 0.5),
                ],
                0.5,
            ),
            // Group theory interpreter: table lookups and small-integer math.
            SpecBenchmark::Gap => (
                vec![
                    (TableLookup, 2.5),
                    (ByteHistogram, 1.5),
                    (TokenScan, 1.5),
                    (WordSum, 1.0),
                ],
                0.65,
            ),
            // Compiler: token scanning, branchy classification, pointer use.
            SpecBenchmark::Gcc => (
                vec![
                    (TokenScan, 3.0),
                    (StringMatch, 1.5),
                    (PointerChase, 1.0),
                    (ByteHistogram, 1.5),
                ],
                0.7,
            ),
            // Min-cost flow: pointer chasing over a large graph, wide values.
            SpecBenchmark::Mcf => (
                vec![(PointerChase, 3.5), (WordSum, 1.5), (ByteHistogram, 1.0)],
                0.5,
            ),
            // Natural-language parser: dictionary lookups and byte scanning.
            SpecBenchmark::Parser => (
                vec![
                    (StringMatch, 2.5),
                    (TokenScan, 2.0),
                    (TableLookup, 1.0),
                    (PointerChase, 0.8),
                ],
                0.7,
            ),
            // Perl interpreter: string processing and hashing.
            SpecBenchmark::Perlbmk => (
                vec![
                    (TokenScan, 2.5),
                    (Checksum, 1.5),
                    (StringMatch, 1.5),
                    (MemcpyBytes, 1.0),
                ],
                0.65,
            ),
            // Place & route: geometric/wide arithmetic with some byte data.
            SpecBenchmark::Twolf => (
                vec![
                    (WordSum, 2.0),
                    (Checksum, 1.5),
                    (ByteHistogram, 1.5),
                    (FirFilter, 1.0),
                ],
                0.5,
            ),
            // Object database: index structures, memcpy, tables.
            SpecBenchmark::Vortex => (
                vec![
                    (TableLookup, 2.0),
                    (MemcpyBytes, 2.0),
                    (PointerChase, 1.0),
                    (TokenScan, 1.0),
                ],
                0.65,
            ),
            // FPGA place & route: graph walking plus arithmetic.
            SpecBenchmark::Vpr => (
                vec![
                    (WordSum, 2.0),
                    (PointerChase, 1.5),
                    (ByteHistogram, 1.5),
                    (FirFilter, 1.0),
                ],
                0.55,
            ),
        };
        WorkloadProfile::new(self.name(), mix)
            .with_narrow_bias(narrow_bias)
            .with_trace_len(trace_len)
            .with_seed(0x5EC0_0000 + self as u64)
    }

    /// Generate the benchmark trace at the given length.
    pub fn trace(self, trace_len: usize) -> Trace {
        self.profile(trace_len).generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_benchmarks_with_unique_names() {
        let names: std::collections::HashSet<_> =
            SpecBenchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn profiles_generate_traces_of_requested_length() {
        for b in [SpecBenchmark::Gcc, SpecBenchmark::Mcf] {
            let t = b.trace(5_000);
            assert_eq!(t.len(), 5_000);
            assert_eq!(t.name, b.name());
        }
    }

    #[test]
    fn compressors_are_more_narrow_than_pointer_chasers() {
        let narrow_frac = |t: &Trace| {
            let vals: Vec<_> = t.iter().filter_map(|d| d.result).collect();
            vals.iter().filter(|v| v.is_narrow()).count() as f64 / vals.len().max(1) as f64
        };
        let bzip2 = SpecBenchmark::Bzip2.trace(20_000);
        let mcf = SpecBenchmark::Mcf.trace(20_000);
        assert!(
            narrow_frac(&bzip2) > narrow_frac(&mcf),
            "bzip2 {:.2} should be more narrow than mcf {:.2}",
            narrow_frac(&bzip2),
            narrow_frac(&mcf)
        );
    }

    #[test]
    fn eon_contains_fp_work() {
        let t = SpecBenchmark::Eon.trace(20_000);
        let fp = t
            .iter()
            .filter(|d| matches!(d.uop.kind, hc_isa::uop::UopKind::Fp))
            .count();
        assert!(fp > 0, "eon should include FP µops");
    }

    #[test]
    fn profiles_are_deterministic() {
        let a = SpecBenchmark::Vpr.trace(3_000);
        let b = SpecBenchmark::Vpr.trace(3_000);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x.result == y.result));
    }
}
