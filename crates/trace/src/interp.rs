//! Interpreter that executes a kernel [`Program`] and records the resulting
//! dynamic µop trace.
//!
//! The interpreter is *functional*, not timed: it computes real values,
//! addresses, flags and branch outcomes and records one [`DynUop`] per lowered
//! µop.  Timing is the job of the `hc-sim` cycle simulator, which replays the
//! trace.

use crate::program::{Inst, Operand, Program};
use crate::trace::Trace;
use hc_isa::flags::Flags;
use hc_isa::mem::MemAccess;
use hc_isa::reg::{ArchReg, NUM_ARCH_REGS};
use hc_isa::uop::{AluOp, MemSize, Uop, UopKind};
use hc_isa::value::Value;
use hc_isa::DynUop;
use std::collections::HashMap;

/// A sparse byte-addressable memory image.
///
/// Kernels initialise their working set through [`MemImage::fill`] /
/// [`MemImage::write_u32`]; untouched locations read as a deterministic
/// address-derived pattern so loads never return "surprising" wide garbage.
#[derive(Debug, Clone, Default)]
pub struct MemImage {
    bytes: HashMap<u32, u8>,
}

impl MemImage {
    /// Create an empty image.
    pub fn new() -> MemImage {
        MemImage::default()
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.bytes.get(&addr) {
            Some(b) => *b,
            // Deterministic background pattern: small values, so uninitialised
            // reads behave like zero-ish heap memory rather than noise.
            None => (addr & 0x3) as u8,
        }
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u32, val: u8) {
        self.bytes.insert(addr, val);
    }

    /// Read `size` bytes little-endian.
    pub fn read(&self, addr: u32, size: MemSize) -> u32 {
        let mut v = 0u32;
        for i in 0..size.bytes() {
            v |= (self.read_u8(addr.wrapping_add(i)) as u32) << (8 * i);
        }
        v
    }

    /// Write `size` bytes little-endian.
    pub fn write(&mut self, addr: u32, size: MemSize, val: u32) {
        for i in 0..size.bytes() {
            self.write_u8(addr.wrapping_add(i), ((val >> (8 * i)) & 0xFF) as u8);
        }
    }

    /// Read a 32-bit little-endian word.
    pub fn read_u32(&self, addr: u32) -> u32 {
        self.read(addr, MemSize::DWord)
    }

    /// Write a 32-bit little-endian word.
    pub fn write_u32(&mut self, addr: u32, val: u32) {
        self.write(addr, MemSize::DWord, val);
    }

    /// Fill `[addr, addr+data.len())` with the given bytes.
    pub fn fill(&mut self, addr: u32, data: &[u8]) {
        for (i, b) in data.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b);
        }
    }

    /// Number of explicitly written bytes.
    pub fn touched(&self) -> usize {
        self.bytes.len()
    }
}

/// Interpreter configuration.
#[derive(Debug, Clone)]
pub struct InterpConfig {
    /// Stop after emitting this many dynamic µops.
    pub max_uops: usize,
    /// When the program halts before `max_uops` µops have been emitted,
    /// restart it from instruction 0 (registers and memory are preserved so
    /// later iterations see warmed-up state).
    pub loop_program: bool,
    /// Base added to every static µop PC, so different kernels occupy
    /// different predictor-index regions like separate functions would.
    pub pc_base: u64,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            max_uops: 100_000,
            loop_program: true,
            pc_base: 0,
        }
    }
}

/// Error produced when interpretation cannot proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The program failed validation.
    InvalidProgram(String),
    /// The program has no instructions.
    EmptyProgram,
}

impl std::fmt::Display for InterpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpError::InvalidProgram(m) => write!(f, "invalid program: {m}"),
            InterpError::EmptyProgram => write!(f, "empty program"),
        }
    }
}

impl std::error::Error for InterpError {}

/// The interpreter itself.  Construct one per kernel execution.
#[derive(Debug, Clone)]
pub struct Interpreter {
    regs: [Value; NUM_ARCH_REGS],
    flags: Flags,
    mem: MemImage,
    config: InterpConfig,
}

impl Interpreter {
    /// Create an interpreter over the given initial memory image.
    pub fn new(mem: MemImage, config: InterpConfig) -> Interpreter {
        Interpreter {
            regs: [Value::ZERO; NUM_ARCH_REGS],
            flags: Flags::default(),
            mem,
            config,
        }
    }

    /// Pre-set a register before running (kernel builders use this to pass
    /// base addresses and sizes).
    pub fn set_reg(&mut self, reg: ArchReg, val: Value) {
        self.regs[reg.index()] = val;
    }

    /// Read a register (after running, for tests).
    pub fn reg(&self, reg: ArchReg) -> Value {
        self.regs[reg.index()]
    }

    /// Access the memory image (after running, for tests).
    pub fn mem(&self) -> &MemImage {
        &self.mem
    }

    fn operand_value(&self, op: Operand) -> (Value, Option<Value>, Option<ArchReg>) {
        // Returns (value, immediate-if-any, register-if-any).
        match op {
            Operand::Reg(r) => (self.regs[r.index()], None, Some(r)),
            Operand::Imm(i) => (Value::from_i32(i), Some(Value::from_i32(i)), None),
        }
    }

    fn alu_compute(&self, op: AluOp, a: Value, b: Value) -> (Value, Flags) {
        match op {
            AluOp::Add | AluOp::Inc => {
                let r = a + b;
                (r, Flags::from_add(a, b, r))
            }
            AluOp::Sub | AluOp::Dec | AluOp::Cmp | AluOp::Neg => {
                let r = a - b;
                (r, Flags::from_sub(a, b, r))
            }
            AluOp::And | AluOp::Test => {
                let r = Value::new(a.bits() & b.bits());
                (r, Flags::from_logic(r))
            }
            AluOp::Or => {
                let r = Value::new(a.bits() | b.bits());
                (r, Flags::from_logic(r))
            }
            AluOp::Xor => {
                let r = Value::new(a.bits() ^ b.bits());
                (r, Flags::from_logic(r))
            }
            AluOp::Shl => {
                let r = Value::new(a.bits().wrapping_shl(b.bits() & 31));
                (r, Flags::from_logic(r))
            }
            AluOp::Shr => {
                let r = Value::new(a.bits().wrapping_shr(b.bits() & 31));
                (r, Flags::from_logic(r))
            }
            AluOp::Sar => {
                let r = Value::new(((a.bits() as i32).wrapping_shr(b.bits() & 31)) as u32);
                (r, Flags::from_logic(r))
            }
            AluOp::Mov => (b, Flags::from_logic(b)),
            AluOp::Not => {
                let r = Value::new(!a.bits());
                (r, Flags::from_logic(r))
            }
        }
    }

    /// Run `program` and return the recorded trace.
    pub fn run(&mut self, program: &Program) -> Result<Trace, InterpError> {
        if program.is_empty() {
            return Err(InterpError::EmptyProgram);
        }
        program.validate().map_err(InterpError::InvalidProgram)?;

        let mut uops: Vec<DynUop> = Vec::with_capacity(self.config.max_uops.min(1 << 20));
        let mut ip = 0usize;

        while uops.len() < self.config.max_uops {
            if ip >= program.len() {
                if self.config.loop_program {
                    ip = 0;
                    continue;
                }
                break;
            }
            let inst = program.insts[ip];
            // Two static µop PC slots per IR instruction: slot 0 for the main
            // µop, slot 1 for the branch half of CmpBranch.
            let pc = self.config.pc_base + (ip as u64) * 2;
            let mut next_ip = ip + 1;

            match inst {
                Inst::Halt => {
                    if self.config.loop_program {
                        ip = 0;
                        continue;
                    }
                    break;
                }
                Inst::MovImm { dst, val } => {
                    let imm = Value::from_i32(val);
                    let u = Uop::new(pc, UopKind::Alu(AluOp::Mov))
                        .with_dest(dst)
                        .with_imm(imm);
                    let mut d = DynUop::from_uop(u);
                    d.result = Some(imm);
                    self.regs[dst.index()] = imm;
                    uops.push(d);
                }
                Inst::Mov { dst, src } => {
                    let v = self.regs[src.index()];
                    let u = Uop::new(pc, UopKind::Alu(AluOp::Mov))
                        .with_src(src)
                        .with_dest(dst);
                    let mut d = DynUop::from_uop(u);
                    d.src_vals[0] = Some(v);
                    d.result = Some(v);
                    self.regs[dst.index()] = v;
                    uops.push(d);
                }
                Inst::Alu { op, dst, a, b } => {
                    let av = self.regs[a.index()];
                    let (bv, imm, breg) = self.operand_value(b);
                    let (result, flags) = self.alu_compute(op, av, bv);
                    let mut u = Uop::new(pc, UopKind::Alu(op)).with_src(a).with_dest(dst);
                    if let Some(imm) = imm {
                        u = u.with_imm(imm);
                    }
                    if let Some(r) = breg {
                        u = u.with_src(r);
                    }
                    u = u.writing_flags();
                    let mut d = DynUop::from_uop(u);
                    d.src_vals[0] = Some(av);
                    if breg.is_some() {
                        d.src_vals[1] = Some(bv);
                    }
                    d.result = Some(result);
                    d.flags_out = Some(flags);
                    self.regs[dst.index()] = result;
                    self.flags = flags;
                    uops.push(d);
                }
                Inst::Mul { dst, a, b } => {
                    let av = self.regs[a.index()];
                    let (bv, imm, breg) = self.operand_value(b);
                    let result = Value::new(av.bits().wrapping_mul(bv.bits()));
                    let flags = Flags::from_logic(result);
                    let mut u = Uop::new(pc, UopKind::Mul).with_src(a).with_dest(dst);
                    if let Some(imm) = imm {
                        u = u.with_imm(imm);
                    }
                    if let Some(r) = breg {
                        u = u.with_src(r);
                    }
                    u = u.writing_flags();
                    let mut d = DynUop::from_uop(u);
                    d.src_vals[0] = Some(av);
                    if breg.is_some() {
                        d.src_vals[1] = Some(bv);
                    }
                    d.result = Some(result);
                    d.flags_out = Some(flags);
                    self.regs[dst.index()] = result;
                    self.flags = flags;
                    uops.push(d);
                }
                Inst::Load {
                    dst,
                    base,
                    offset,
                    size,
                } => {
                    let basev = self.regs[base.index()];
                    let (offv, imm, offreg) = self.operand_value(offset);
                    let addr = basev.bits().wrapping_add(offv.bits());
                    let loaded = Value::new(self.mem.read(addr, size));
                    let mut u = Uop::new(pc, UopKind::Load(size))
                        .with_src(base)
                        .with_dest(dst);
                    if let Some(imm) = imm {
                        u = u.with_imm(imm);
                    }
                    if let Some(r) = offreg {
                        u = u.with_src(r);
                    }
                    let mut d = DynUop::from_uop(u);
                    d.src_vals[0] = Some(basev);
                    if offreg.is_some() {
                        d.src_vals[1] = Some(offv);
                    }
                    d.result = Some(loaded);
                    d.mem = Some(MemAccess::load(addr, size));
                    self.regs[dst.index()] = loaded;
                    uops.push(d);
                }
                Inst::Store {
                    src,
                    base,
                    offset,
                    size,
                } => {
                    let datav = self.regs[src.index()];
                    let basev = self.regs[base.index()];
                    let (offv, imm, offreg) = self.operand_value(offset);
                    let addr = basev.bits().wrapping_add(offv.bits());
                    self.mem.write(addr, size, datav.bits());
                    let mut u = Uop::new(pc, UopKind::Store(size))
                        .with_src(src)
                        .with_src(base);
                    if let Some(imm) = imm {
                        u = u.with_imm(imm);
                    }
                    if let Some(r) = offreg {
                        u = u.with_src(r);
                    }
                    let mut d = DynUop::from_uop(u);
                    d.src_vals[0] = Some(datav);
                    d.src_vals[1] = Some(basev);
                    if offreg.is_some() {
                        d.src_vals[2] = Some(offv);
                    }
                    d.mem = Some(MemAccess::store(addr, size));
                    uops.push(d);
                }
                Inst::CmpBranch { cond, a, b, target } => {
                    // cmp µop.
                    let av = self.regs[a.index()];
                    let (bv, imm, breg) = self.operand_value(b);
                    let (result, flags) = self.alu_compute(AluOp::Cmp, av, bv);
                    let mut u = Uop::new(pc, UopKind::Alu(AluOp::Cmp)).with_src(a);
                    if let Some(imm) = imm {
                        u = u.with_imm(imm);
                    }
                    if let Some(r) = breg {
                        u = u.with_src(r);
                    }
                    u = u.writing_flags();
                    let mut d = DynUop::from_uop(u);
                    d.src_vals[0] = Some(av);
                    if breg.is_some() {
                        d.src_vals[1] = Some(bv);
                    }
                    // cmp does not write a register but the comparison result
                    // width is what the flag semantically reflects.
                    d.result = Some(result);
                    d.flags_out = Some(flags);
                    self.flags = flags;
                    uops.push(d);

                    if uops.len() >= self.config.max_uops {
                        break;
                    }

                    // conditional branch µop.
                    let taken = cond.eval(flags);
                    let target_pc = self.config.pc_base + (target.0 as u64) * 2;
                    let bu = Uop::new(pc + 1, UopKind::CondBranch(cond)).reading_flags();
                    let mut bd = DynUop::from_uop(bu);
                    bd.flags_in = Some(flags);
                    bd.taken = Some(taken);
                    bd.target = Some(target_pc);
                    uops.push(bd);
                    if taken {
                        next_ip = target.0;
                    }
                }
                Inst::BranchFlags { cond, target } => {
                    let taken = cond.eval(self.flags);
                    let target_pc = self.config.pc_base + (target.0 as u64) * 2;
                    let bu = Uop::new(pc, UopKind::CondBranch(cond)).reading_flags();
                    let mut bd = DynUop::from_uop(bu);
                    bd.flags_in = Some(self.flags);
                    bd.taken = Some(taken);
                    bd.target = Some(target_pc);
                    uops.push(bd);
                    if taken {
                        next_ip = target.0;
                    }
                }
                Inst::Jump { target } => {
                    let target_pc = self.config.pc_base + (target.0 as u64) * 2;
                    let mut bd = DynUop::from_uop(Uop::new(pc, UopKind::Jump));
                    bd.taken = Some(true);
                    bd.target = Some(target_pc);
                    uops.push(bd);
                    next_ip = target.0;
                }
                Inst::Fp { dst, src } => {
                    let v = self.regs[src.index()];
                    // A stand-in FP transform; the exact value is irrelevant
                    // (FP µops always execute in the wide backend), but keep it
                    // wide-looking so width predictors see realistic behaviour.
                    let result = Value::new(v.bits().rotate_left(13) ^ 0x3F80_0000);
                    let u = Uop::new(pc, UopKind::Fp).with_src(src).with_dest(dst);
                    let mut d = DynUop::from_uop(u);
                    d.src_vals[0] = Some(v);
                    d.result = Some(result);
                    self.regs[dst.index()] = result;
                    uops.push(d);
                }
            }

            ip = next_ip;
        }

        Ok(Trace::from_uops(program.name.clone(), uops))
    }
}

/// Convenience: run a program on an initial memory image with default-length
/// output and a register preset map.
pub fn run_program(
    program: &Program,
    mem: MemImage,
    presets: &[(ArchReg, Value)],
    config: InterpConfig,
) -> Result<Trace, InterpError> {
    let mut interp = Interpreter::new(mem, config);
    for (r, v) in presets {
        interp.set_reg(*r, *v);
    }
    interp.run(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Label;
    use hc_isa::uop::BranchCond;

    fn counting_loop(n: i32) -> Program {
        // ecx = 0; loop: ecx += 1; cmp ecx, n; jl loop; halt
        let mut p = Program::new("count");
        p.push(Inst::MovImm {
            dst: ArchReg::Ecx,
            val: 0,
        });
        let body = p.next_label();
        p.push(Inst::Alu {
            op: AluOp::Add,
            dst: ArchReg::Ecx,
            a: ArchReg::Ecx,
            b: Operand::Imm(1),
        });
        p.push(Inst::CmpBranch {
            cond: BranchCond::Lt,
            a: ArchReg::Ecx,
            b: Operand::Imm(n),
            target: body,
        });
        p.push(Inst::Halt);
        p
    }

    #[test]
    fn counting_loop_terminates_with_expected_value() {
        let p = counting_loop(10);
        let mut i = Interpreter::new(
            MemImage::new(),
            InterpConfig {
                max_uops: 10_000,
                loop_program: false,
                pc_base: 0,
            },
        );
        let trace = i.run(&p).unwrap();
        assert_eq!(i.reg(ArchReg::Ecx).bits(), 10);
        // 1 movimm + 10 * (add + cmp + branch) = 31 µops.
        assert_eq!(trace.len(), 31);
    }

    #[test]
    fn branch_outcomes_recorded() {
        let p = counting_loop(3);
        let mut i = Interpreter::new(
            MemImage::new(),
            InterpConfig {
                max_uops: 10_000,
                loop_program: false,
                pc_base: 0,
            },
        );
        let trace = i.run(&p).unwrap();
        let branches: Vec<_> = trace
            .iter()
            .filter(|d| d.uop.kind.is_cond_branch())
            .collect();
        assert_eq!(branches.len(), 3);
        assert_eq!(branches[0].taken, Some(true));
        assert_eq!(branches[1].taken, Some(true));
        assert_eq!(branches[2].taken, Some(false));
    }

    #[test]
    fn loop_counter_values_are_narrow() {
        let p = counting_loop(50);
        let mut i = Interpreter::new(
            MemImage::new(),
            InterpConfig {
                max_uops: 10_000,
                loop_program: false,
                pc_base: 0,
            },
        );
        let trace = i.run(&p).unwrap();
        let adds: Vec<_> = trace
            .iter()
            .filter(|d| matches!(d.uop.kind, UopKind::Alu(AluOp::Add)))
            .collect();
        assert!(adds.iter().all(|d| d.is_all_narrow()));
    }

    #[test]
    fn memory_roundtrip_through_loads_and_stores() {
        let mut p = Program::new("memtest");
        p.push(Inst::MovImm {
            dst: ArchReg::Eax,
            val: 0x42,
        });
        p.push(Inst::Store {
            src: ArchReg::Eax,
            base: ArchReg::Ebx,
            offset: Operand::Imm(4),
            size: MemSize::DWord,
        });
        p.push(Inst::Load {
            dst: ArchReg::Ecx,
            base: ArchReg::Ebx,
            offset: Operand::Imm(4),
            size: MemSize::DWord,
        });
        p.push(Inst::Halt);
        let mut i = Interpreter::new(
            MemImage::new(),
            InterpConfig {
                max_uops: 100,
                loop_program: false,
                pc_base: 0,
            },
        );
        i.set_reg(ArchReg::Ebx, Value::new(0x1000_0000));
        let trace = i.run(&p).unwrap();
        assert_eq!(i.reg(ArchReg::Ecx).bits(), 0x42);
        let load = trace.iter().find(|d| d.uop.kind.is_load()).unwrap();
        assert_eq!(load.mem.unwrap().addr, 0x1000_0004);
        assert_eq!(load.result.unwrap().bits(), 0x42);
    }

    #[test]
    fn byte_loads_zero_extend() {
        let mut mem = MemImage::new();
        mem.fill(0x2000, &[0xAB]);
        let mut p = Program::new("byteload");
        p.push(Inst::Load {
            dst: ArchReg::Eax,
            base: ArchReg::Ebx,
            offset: Operand::Imm(0),
            size: MemSize::Byte,
        });
        p.push(Inst::Halt);
        let mut i = Interpreter::new(
            MemImage::new(),
            InterpConfig {
                max_uops: 10,
                loop_program: false,
                pc_base: 0,
            },
        );
        i.mem = mem;
        i.set_reg(ArchReg::Ebx, Value::new(0x2000));
        i.run(&p).unwrap();
        assert_eq!(i.reg(ArchReg::Eax).bits(), 0xAB);
        assert!(i.reg(ArchReg::Eax).is_narrow());
    }

    #[test]
    fn max_uops_bounds_looping_programs() {
        let p = counting_loop(1_000_000);
        let mut i = Interpreter::new(
            MemImage::new(),
            InterpConfig {
                max_uops: 500,
                loop_program: true,
                pc_base: 0,
            },
        );
        let trace = i.run(&p).unwrap();
        assert_eq!(trace.len(), 500);
    }

    #[test]
    fn program_restart_when_looping() {
        let p = counting_loop(2);
        let mut i = Interpreter::new(
            MemImage::new(),
            InterpConfig {
                max_uops: 100,
                loop_program: true,
                pc_base: 0,
            },
        );
        let trace = i.run(&p).unwrap();
        assert_eq!(trace.len(), 100);
        // The MovImm at pc 0 appears more than once because the program wraps.
        let mov_count = trace.iter().filter(|d| d.uop.pc == 0).count();
        assert!(mov_count > 1);
    }

    #[test]
    fn empty_program_is_an_error() {
        let p = Program::new("empty");
        let mut i = Interpreter::new(MemImage::new(), InterpConfig::default());
        assert!(matches!(i.run(&p), Err(InterpError::EmptyProgram)));
    }

    #[test]
    fn invalid_branch_target_is_an_error() {
        let mut p = Program::new("bad");
        p.push(Inst::Jump { target: Label(17) });
        let mut i = Interpreter::new(MemImage::new(), InterpConfig::default());
        assert!(matches!(i.run(&p), Err(InterpError::InvalidProgram(_))));
    }

    #[test]
    fn pc_base_offsets_all_pcs() {
        let p = counting_loop(1);
        let mut i = Interpreter::new(
            MemImage::new(),
            InterpConfig {
                max_uops: 100,
                loop_program: false,
                pc_base: 0x1000,
            },
        );
        let trace = i.run(&p).unwrap();
        assert!(trace.iter().all(|d| d.uop.pc >= 0x1000));
    }

    #[test]
    fn mem_image_background_pattern_is_deterministic_and_narrow() {
        let m = MemImage::new();
        assert_eq!(m.read_u8(0x123), m.read_u8(0x123));
        assert!(Value::new(m.read(0x5555, MemSize::DWord)).bits() < 0x0404_0404);
    }
}
