//! A tiny register-machine program IR used to *generate* realistic µop traces.
//!
//! We cannot ship SPEC Int 2000 binaries or Intel's internal application
//! traces, so workloads are synthesised: small kernel programs are written in
//! this IR and then *interpreted* ([`crate::interp`]) to produce dynamic µop
//! traces that carry real computed values.  Because the values are real, the
//! narrow-width, carry-propagation and flag-dependence structure that the
//! steering policies key on is exact rather than statistically faked.

use hc_isa::reg::ArchReg;
use hc_isa::uop::{AluOp, BranchCond, MemSize};
use serde::{Deserialize, Serialize};

/// A label identifying an instruction index inside a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Label(pub usize);

/// The second operand of ALU / compare instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operand {
    /// A register operand.
    Reg(ArchReg),
    /// An immediate operand.
    Imm(i32),
}

/// One IR instruction.  Each IR instruction lowers to one or two µops (compare
/// and branch are separate µops, like in the IA-32 µop machine).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// `dst <- imm`.
    MovImm {
        /// Destination register.
        dst: ArchReg,
        /// Immediate value.
        val: i32,
    },
    /// `dst <- src`.
    Mov {
        /// Destination register.
        dst: ArchReg,
        /// Source register.
        src: ArchReg,
    },
    /// `dst <- a <op> b`, writing flags.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: ArchReg,
        /// First (register) operand.
        a: ArchReg,
        /// Second operand.
        b: Operand,
    },
    /// `dst <- a * b` (long-latency, wide-only).
    Mul {
        /// Destination register.
        dst: ArchReg,
        /// First operand.
        a: ArchReg,
        /// Second operand.
        b: Operand,
    },
    /// `dst <- mem[base + offset]`.
    Load {
        /// Destination register.
        dst: ArchReg,
        /// Base address register.
        base: ArchReg,
        /// Offset (register or immediate).
        offset: Operand,
        /// Access size; byte loads zero-extend.
        size: MemSize,
    },
    /// `mem[base + offset] <- src`.
    Store {
        /// Data register.
        src: ArchReg,
        /// Base address register.
        base: ArchReg,
        /// Offset (register or immediate).
        offset: Operand,
        /// Access size.
        size: MemSize,
    },
    /// Compare `a` against `b` (writes flags) and branch to `target` if the
    /// condition holds.  Lowers to a `cmp` µop plus a conditional-branch µop —
    /// exactly the flag producer/consumer pair the BR policy (§3.3) exploits.
    CmpBranch {
        /// Branch condition evaluated on the comparison flags.
        cond: BranchCond,
        /// First compare operand.
        a: ArchReg,
        /// Second compare operand.
        b: Operand,
        /// Branch target.
        target: Label,
    },
    /// Branch to `target` if the condition holds on the *current* flags
    /// (produced by the most recent flag-writing instruction).
    BranchFlags {
        /// Branch condition.
        cond: BranchCond,
        /// Branch target.
        target: Label,
    },
    /// Unconditional jump.
    Jump {
        /// Jump target.
        target: Label,
    },
    /// A floating-point operation consuming and producing FP state; modelled
    /// as a wide-only µop with a register destination.
    Fp {
        /// Destination register (stands in for an FP register).
        dst: ArchReg,
        /// Source register.
        src: ArchReg,
    },
    /// Program end marker; the interpreter stops (or restarts, when asked to
    /// loop the program) when it reaches it.
    Halt,
}

/// A kernel program: a straight vector of IR instructions addressed by labels.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Program {
    /// Program name (used in trace provenance).
    pub name: String,
    /// The instructions.
    pub insts: Vec<Inst>,
}

impl Program {
    /// Create an empty program.
    pub fn new(name: impl Into<String>) -> Program {
        Program {
            name: name.into(),
            insts: Vec::new(),
        }
    }

    /// Append an instruction, returning its label.
    pub fn push(&mut self, inst: Inst) -> Label {
        self.insts.push(inst);
        Label(self.insts.len() - 1)
    }

    /// Reserve a label to be patched later (emits a placeholder `Halt`).
    pub fn placeholder(&mut self) -> Label {
        self.push(Inst::Halt)
    }

    /// Replace the instruction at `label` (used to patch forward branches).
    pub fn patch(&mut self, label: Label, inst: Inst) {
        self.insts[label.0] = inst;
    }

    /// Label of the *next* instruction to be pushed.
    pub fn next_label(&self) -> Label {
        Label(self.insts.len())
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Basic well-formedness check: all branch targets are in range.
    pub fn validate(&self) -> Result<(), String> {
        for (i, inst) in self.insts.iter().enumerate() {
            let target = match inst {
                Inst::CmpBranch { target, .. }
                | Inst::BranchFlags { target, .. }
                | Inst::Jump { target } => Some(*target),
                _ => None,
            };
            if let Some(Label(t)) = target {
                if t >= self.insts.len() {
                    return Err(format!(
                        "instruction {i} branches to out-of-range label {t} (len {})",
                        self.insts.len()
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_returns_sequential_labels() {
        let mut p = Program::new("t");
        let l0 = p.push(Inst::MovImm {
            dst: ArchReg::Eax,
            val: 0,
        });
        let l1 = p.push(Inst::Halt);
        assert_eq!(l0, Label(0));
        assert_eq!(l1, Label(1));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn placeholder_and_patch() {
        let mut p = Program::new("t");
        let ph = p.placeholder();
        let end = p.push(Inst::Halt);
        p.patch(ph, Inst::Jump { target: end });
        assert!(matches!(p.insts[ph.0], Inst::Jump { .. }));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range_targets() {
        let mut p = Program::new("t");
        p.push(Inst::Jump { target: Label(99) });
        assert!(p.validate().is_err());
    }

    #[test]
    fn next_label_points_past_end() {
        let mut p = Program::new("t");
        assert_eq!(p.next_label(), Label(0));
        p.push(Inst::Halt);
        assert_eq!(p.next_label(), Label(1));
    }
}
