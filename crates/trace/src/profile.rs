//! Workload profiles: recipes that mix kernels into benchmark-like traces.
//!
//! A [`WorkloadProfile`] names a workload, lists the kernels it is made of
//! (with weights), and sets the data-size / narrow-bias / length parameters.
//! Generating the profile interprets each kernel and interleaves the resulting
//! µop segments in phases, which mimics how real applications alternate
//! between different inner loops.

use crate::interp::{InterpConfig, Interpreter};
use crate::kernels::KernelKind;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// Number of alternating phases used when interleaving kernel segments.
const PHASES: usize = 4;

/// A recipe for generating one workload trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Workload name (e.g. `gcc`, `enc_03`).
    pub name: String,
    /// Workload category label (Table 2), if any.
    pub category: Option<String>,
    /// Kernel mix: `(kernel, weight)`; weights need not sum to 1.
    pub mix: Vec<(KernelKind, f64)>,
    /// Working-set elements per kernel instance.
    pub data_len: usize,
    /// Bias of generated data towards narrow byte values, in `[0, 1]`.
    pub narrow_bias: f64,
    /// Total dynamic µops to generate.
    pub trace_len: usize,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl WorkloadProfile {
    /// Create a profile with sensible defaults (overridable via the builder
    /// methods).
    pub fn new(name: impl Into<String>, mix: Vec<(KernelKind, f64)>) -> WorkloadProfile {
        WorkloadProfile {
            name: name.into(),
            category: None,
            mix,
            data_len: 512,
            narrow_bias: 0.7,
            trace_len: 50_000,
            seed: 0xC0FFEE,
        }
    }

    /// Set the workload category label.
    pub fn with_category(mut self, category: impl Into<String>) -> Self {
        self.category = Some(category.into());
        self
    }

    /// Set the total trace length in µops.
    pub fn with_trace_len(mut self, len: usize) -> Self {
        self.trace_len = len;
        self
    }

    /// Set the narrow-value bias of the generated data.
    pub fn with_narrow_bias(mut self, bias: f64) -> Self {
        self.narrow_bias = bias.clamp(0.0, 1.0);
        self
    }

    /// Set the per-kernel working-set size.
    pub fn with_data_len(mut self, len: usize) -> Self {
        self.data_len = len;
        self
    }

    /// Set the generation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generate the trace described by this profile.
    ///
    /// Each kernel in the mix is interpreted long enough to supply its share
    /// of the requested µop count; the per-kernel segments are then
    /// interleaved over a fixed number of rounds so the trace alternates between
    /// "phases" like a real program.
    pub fn generate(&self) -> Trace {
        assert!(
            !self.mix.is_empty(),
            "profile must contain at least one kernel"
        );
        let total_weight: f64 = self.mix.iter().map(|(_, w)| w.max(0.0)).sum();
        assert!(total_weight > 0.0, "profile weights must be positive");

        // Compute integer shares that sum exactly to the requested length:
        // floor each share and hand the rounding remainder to the heaviest kernel.
        let mut shares: Vec<usize> = self
            .mix
            .iter()
            .map(|(_, w)| ((w.max(0.0) / total_weight) * self.trace_len as f64).floor() as usize)
            .collect();
        let assigned: usize = shares.iter().sum();
        if let Some(max_idx) = self
            .mix
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1 .1
                    .partial_cmp(&b.1 .1)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
        {
            shares[max_idx] += self.trace_len.saturating_sub(assigned);
        }

        // Generate each kernel's full contribution once.
        let mut segments: Vec<(Vec<hc_isa::DynUop>, usize)> = Vec::with_capacity(self.mix.len());
        for (idx, (kind, _weight)) in self.mix.iter().enumerate() {
            let share = shares[idx];
            if share == 0 {
                continue;
            }
            let kernel = kind.build(
                self.data_len,
                self.narrow_bias,
                self.seed.wrapping_add(idx as u64 * 0x9E37_79B9),
            );
            let mut interp = Interpreter::new(
                kernel.mem,
                InterpConfig {
                    max_uops: share,
                    loop_program: true,
                    // Separate PC regions per kernel, as if they were separate
                    // functions of one program.
                    pc_base: (idx as u64 + 1) * 0x4000,
                },
            );
            for (r, v) in &kernel.presets {
                interp.set_reg(*r, *v);
            }
            let t = interp
                .run(&kernel.program)
                .expect("kernel programs are validated by construction");
            segments.push((t.uops, share));
        }

        // Interleave the segments phase by phase.
        let mut uops = Vec::with_capacity(self.trace_len);
        for phase in 0..PHASES {
            for (seg, share) in &segments {
                let chunk = share / PHASES;
                let start = phase * chunk;
                let end = if phase == PHASES - 1 {
                    seg.len()
                } else {
                    (start + chunk).min(seg.len())
                };
                if start < seg.len() {
                    uops.extend_from_slice(&seg[start..end]);
                }
            }
        }
        uops.truncate(self.trace_len);

        let mut trace = Trace::from_uops(self.name.clone(), uops);
        trace.category = self.category.clone();
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_length() {
        let p = WorkloadProfile::new(
            "test",
            vec![(KernelKind::ByteHistogram, 1.0), (KernelKind::WordSum, 1.0)],
        )
        .with_trace_len(10_000);
        let t = p.generate();
        assert_eq!(t.len(), 10_000);
        assert_eq!(t.name, "test");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let p = WorkloadProfile::new("d", vec![(KernelKind::RleCompress, 1.0)])
            .with_trace_len(5_000)
            .with_seed(99);
        let a = p.generate();
        let b = p.generate();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.uop.pc, y.uop.pc);
            assert_eq!(x.result, y.result);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let base =
            WorkloadProfile::new("d", vec![(KernelKind::RleCompress, 1.0)]).with_trace_len(5_000);
        let a = base.clone().with_seed(1).generate();
        let b = base.with_seed(2).generate();
        let same = a
            .iter()
            .zip(b.iter())
            .filter(|(x, y)| x.result == y.result)
            .count();
        assert!(same < a.len(), "different seeds should give different data");
    }

    #[test]
    fn narrow_bias_moves_narrow_fraction() {
        let narrow_frac = |t: &Trace| {
            let vals: Vec<_> = t.iter().filter_map(|d| d.result).collect();
            vals.iter().filter(|v| v.is_narrow()).count() as f64 / vals.len().max(1) as f64
        };
        let lo = WorkloadProfile::new("lo", vec![(KernelKind::WordSum, 1.0)])
            .with_trace_len(8_000)
            .with_narrow_bias(0.05)
            .generate();
        let hi = WorkloadProfile::new("hi", vec![(KernelKind::WordSum, 1.0)])
            .with_trace_len(8_000)
            .with_narrow_bias(0.95)
            .generate();
        assert!(narrow_frac(&hi) > narrow_frac(&lo));
    }

    #[test]
    fn mix_includes_all_kernels_pc_regions() {
        let p = WorkloadProfile::new(
            "mix",
            vec![
                (KernelKind::ByteHistogram, 1.0),
                (KernelKind::PointerChase, 1.0),
                (KernelKind::TokenScan, 1.0),
            ],
        )
        .with_trace_len(9_000);
        let t = p.generate();
        let regions: std::collections::HashSet<u64> = t.iter().map(|d| d.uop.pc / 0x4000).collect();
        assert!(regions.len() >= 3, "each kernel occupies its own PC region");
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn empty_mix_panics() {
        let _ = WorkloadProfile::new("bad", vec![]).generate();
    }

    #[test]
    fn zero_weight_kernels_are_skipped() {
        let p = WorkloadProfile::new(
            "zw",
            vec![
                (KernelKind::ByteHistogram, 1.0),
                (KernelKind::FpStream, 0.0),
            ],
        )
        .with_trace_len(4_000);
        let t = p.generate();
        assert!(!t
            .iter()
            .any(|d| matches!(d.uop.kind, hc_isa::uop::UopKind::Fp)));
    }
}
