//! The rename-table width field.
//!
//! §3.2: "width information is stored inside a field in the rename table
//! called width table (which is 1-bit wide) and is updated with the correct
//! outcome later […].  For the source operand width, the actual width is read
//! if the producer instruction has already written back the result; if not,
//! the prediction is read."
//!
//! The table tracks, per architectural register, whether the current
//! (speculative) producer's value is narrow, and whether that information is
//! a prediction or the actual written-back width.

use hc_isa::reg::{ArchReg, NUM_ARCH_REGS};
use serde::{Deserialize, Serialize};

/// Source of a width entry: a prediction made at rename, or the actual width
/// observed at writeback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WidthSource {
    /// The producer has not written back yet; the bit is the predictor's guess.
    Predicted,
    /// The producer wrote back; the bit is ground truth.
    Actual,
}

/// One width-table entry.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Entry {
    narrow: bool,
    source: WidthSource,
}

impl Default for Entry {
    fn default() -> Self {
        // Architectural registers start wide and "actual": before any producer
        // is in flight the committed value's width is known.
        Entry {
            narrow: false,
            source: WidthSource::Actual,
        }
    }
}

/// Per-architectural-register width bits living alongside the rename table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WidthTable {
    entries: [Entry; NUM_ARCH_REGS],
}

impl Default for WidthTable {
    fn default() -> Self {
        WidthTable {
            entries: [Entry::default(); NUM_ARCH_REGS],
        }
    }
}

impl WidthTable {
    /// Create a table with all registers marked wide/actual.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up the width bit for a source register together with its provenance.
    pub fn lookup(&self, reg: ArchReg) -> (bool, WidthSource) {
        let e = self.entries[reg.index()];
        (e.narrow, e.source)
    }

    /// Whether the register currently holds (or is predicted to hold) a narrow value.
    pub fn is_narrow(&self, reg: ArchReg) -> bool {
        self.entries[reg.index()].narrow
    }

    /// Record a rename-time *prediction* for the register's new producer.
    pub fn set_predicted(&mut self, reg: ArchReg, narrow: bool) {
        self.entries[reg.index()] = Entry {
            narrow,
            source: WidthSource::Predicted,
        };
    }

    /// Record the *actual* width at writeback (only if the register still maps
    /// to this producer — the caller is responsible for that check; a stale
    /// update is harmless because the next rename overwrites it).
    pub fn set_actual(&mut self, reg: ArchReg, narrow: bool) {
        self.entries[reg.index()] = Entry {
            narrow,
            source: WidthSource::Actual,
        };
    }

    /// Reset every entry to wide/actual (used on pipeline flushes, where the
    /// committed architectural state widths are re-derived lazily).
    pub fn reset(&mut self) {
        self.entries = [Entry::default(); NUM_ARCH_REGS];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_wide_and_actual() {
        let t = WidthTable::new();
        let (narrow, src) = t.lookup(ArchReg::Eax);
        assert!(!narrow);
        assert_eq!(src, WidthSource::Actual);
    }

    #[test]
    fn prediction_then_writeback() {
        let mut t = WidthTable::new();
        t.set_predicted(ArchReg::Ecx, true);
        assert_eq!(t.lookup(ArchReg::Ecx), (true, WidthSource::Predicted));
        t.set_actual(ArchReg::Ecx, false);
        assert_eq!(t.lookup(ArchReg::Ecx), (false, WidthSource::Actual));
    }

    #[test]
    fn registers_are_independent() {
        let mut t = WidthTable::new();
        t.set_predicted(ArchReg::Eax, true);
        assert!(t.is_narrow(ArchReg::Eax));
        assert!(!t.is_narrow(ArchReg::Ebx));
    }

    #[test]
    fn reset_restores_default() {
        let mut t = WidthTable::new();
        t.set_predicted(ArchReg::Eax, true);
        t.reset();
        assert_eq!(t.lookup(ArchReg::Eax), (false, WidthSource::Actual));
    }

    #[test]
    fn temporaries_and_flags_have_entries() {
        let mut t = WidthTable::new();
        t.set_actual(ArchReg::Eflags, true);
        t.set_actual(ArchReg::Temp(5), true);
        assert!(t.is_narrow(ArchReg::Eflags));
        assert!(t.is_narrow(ArchReg::Temp(5)));
    }
}
