//! Branch direction prediction (gshare) and a branch target buffer.
//!
//! The paper's baseline is a Pentium-4-like out-of-order core; branch
//! misprediction recovery competes with width-misprediction recovery for the
//! flush machinery, so the cycle simulator needs a realistic direction
//! predictor.  A classic gshare predictor with a small BTB is sufficient.

use serde::{Deserialize, Serialize};

/// 2-bit saturating direction counter states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(clippy::enum_variant_names)] // the canonical 2-bit counter state names
enum Dir {
    StrongNotTaken,
    WeakNotTaken,
    WeakTaken,
    StrongTaken,
}

impl Dir {
    fn taken(self) -> bool {
        matches!(self, Dir::WeakTaken | Dir::StrongTaken)
    }

    fn update(self, taken: bool) -> Dir {
        match (self, taken) {
            (Dir::StrongNotTaken, false) => Dir::StrongNotTaken,
            (Dir::StrongNotTaken, true) => Dir::WeakNotTaken,
            (Dir::WeakNotTaken, false) => Dir::StrongNotTaken,
            (Dir::WeakNotTaken, true) => Dir::WeakTaken,
            (Dir::WeakTaken, false) => Dir::WeakNotTaken,
            (Dir::WeakTaken, true) => Dir::StrongTaken,
            (Dir::StrongTaken, false) => Dir::WeakTaken,
            (Dir::StrongTaken, true) => Dir::StrongTaken,
        }
    }
}

/// Statistics for the branch predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchPredictorStats {
    /// Conditional-branch direction predictions made.
    pub predictions: u64,
    /// Correct direction predictions.
    pub correct: u64,
    /// Incorrect direction predictions.
    pub mispredictions: u64,
}

impl BranchPredictorStats {
    /// Direction prediction accuracy in [0, 1].
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }
}

/// gshare direction predictor with a global history register and a direct
/// mapped BTB for targets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BranchPredictor {
    table: Vec<Dir>,
    history: u64,
    history_bits: u32,
    btb: Vec<Option<u64>>,
    stats: BranchPredictorStats,
}

impl Default for BranchPredictor {
    fn default() -> Self {
        BranchPredictor::new(4096, 12)
    }
}

impl BranchPredictor {
    /// Create a predictor with `entries` pattern-history-table entries and
    /// `history_bits` bits of global history.
    pub fn new(entries: usize, history_bits: u32) -> Self {
        let entries = entries.max(2).next_power_of_two();
        BranchPredictor {
            table: vec![Dir::WeakNotTaken; entries],
            history: 0,
            history_bits: history_bits.min(24),
            btb: vec![None; entries],
            stats: BranchPredictorStats::default(),
        }
    }

    fn index(&self, pc: u64) -> usize {
        let mask = self.table.len() as u64 - 1;
        ((pc ^ (self.history & ((1 << self.history_bits) - 1))) & mask) as usize
    }

    /// Predict the direction of the conditional branch at `pc`.
    pub fn predict(&mut self, pc: u64) -> bool {
        self.stats.predictions += 1;
        self.table[self.index(pc)].taken()
    }

    /// Predicted target for a taken branch at `pc`, if the BTB knows it.
    pub fn predict_target(&self, pc: u64) -> Option<u64> {
        let mask = self.btb.len() as u64 - 1;
        self.btb[(pc & mask) as usize]
    }

    /// Update the predictor with the resolved outcome.  Returns whether the
    /// prediction made at the same index would have been correct.
    pub fn update(&mut self, pc: u64, taken: bool, target: Option<u64>) -> bool {
        let idx = self.index(pc);
        let predicted = self.table[idx].taken();
        let correct = predicted == taken;
        if correct {
            self.stats.correct += 1;
        } else {
            self.stats.mispredictions += 1;
        }
        self.table[idx] = self.table[idx].update(taken);
        self.history = (self.history << 1) | taken as u64;
        if let (true, Some(t)) = (taken, target) {
            let mask = self.btb.len() as u64 - 1;
            self.btb[(pc & mask) as usize] = Some(t);
        }
        correct
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BranchPredictorStats {
        self.stats
    }

    /// Return the predictor to its untrained post-construction state without
    /// reallocating the pattern-history table or the BTB, so a reused
    /// execution context starts every run untrained.
    pub fn reset(&mut self) {
        self.table.fill(Dir::WeakNotTaken);
        self.btb.fill(None);
        self.history = 0;
        self.stats = BranchPredictorStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken_branches() {
        let mut p = BranchPredictor::new(1024, 8);
        let pc = 0x400;
        // After `history_bits` all-taken outcomes the global history register
        // saturates at all-ones, so later lookups hit a trained entry.
        for _ in 0..16 {
            let _ = p.predict(pc);
            p.update(pc, true, Some(0x100));
        }
        assert!(p.predict(pc));
        assert_eq!(p.predict_target(pc), Some(0x100));
    }

    #[test]
    fn loop_branch_pattern_reaches_high_accuracy() {
        // Branch taken 9 times then not taken once, repeated: a gshare with
        // enough history should do far better than 50%.
        let mut p = BranchPredictor::new(4096, 12);
        let pc = 0x80;
        let mut correct = 0;
        let total = 2000;
        for i in 0..total {
            let taken = i % 10 != 9;
            let pred = p.predict(pc);
            if pred == taken {
                correct += 1;
            }
            p.update(pc, taken, Some(0x40));
        }
        assert!(
            correct as f64 / total as f64 > 0.8,
            "gshare should capture the loop pattern, got {correct}/{total}"
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut p = BranchPredictor::default();
        let _ = p.predict(1);
        p.update(1, true, None);
        let s = p.stats();
        assert_eq!(s.predictions, 1);
        assert_eq!(s.correct + s.mispredictions, 1);
    }

    #[test]
    fn untrained_btb_returns_none() {
        let p = BranchPredictor::default();
        assert_eq!(p.predict_target(0x123), None);
    }
}
