//! Carry-width prediction (the CR scheme, §3.5).
//!
//! An instruction with one narrow and one wide source producing a wide result
//! is eligible for the helper cluster if the operation does not propagate a
//! carry beyond the low 8 bits (e.g. base + small-offset address generation,
//! Figure 10).  The predictor adds one bit per width-predictor entry that is
//! set at writeback when the last occurrence of the instruction operated on
//! the low 8 bits only; a 2-bit confidence estimator keeps the fatal
//! misprediction rate low.  Multiplies and divides are not eligible because
//! the carry signal cannot be used to catch their mispredictions.

use crate::confidence::ConfidenceCounter;
use serde::{Deserialize, Serialize};

/// Per-entry carry predictor state.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Entry {
    /// Whether the last occurrence did *not* propagate a carry beyond bit 8.
    last_carry_free: bool,
    confidence: ConfidenceCounter,
}

/// Statistics accumulated by the carry predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CarryPredictorStats {
    /// Number of predictions issued.
    pub lookups: u64,
    /// Updates that confirmed the stored bit.
    pub correct: u64,
    /// Updates that contradicted the stored bit.
    pub incorrect: u64,
}

impl CarryPredictorStats {
    /// Prediction accuracy in [0, 1].
    pub fn accuracy(&self) -> f64 {
        let t = self.correct + self.incorrect;
        if t == 0 {
            0.0
        } else {
            self.correct as f64 / t as f64
        }
    }
}

/// PC-indexed carry-not-propagated predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CarryPredictor {
    entries: Vec<Entry>,
    stats: CarryPredictorStats,
}

impl Default for CarryPredictor {
    fn default() -> Self {
        CarryPredictor::new(crate::width::PAPER_TABLE_ENTRIES)
    }
}

impl CarryPredictor {
    /// Create a predictor with `entries` entries (rounded up to a power of two).
    pub fn new(entries: usize) -> Self {
        CarryPredictor {
            entries: vec![Entry::default(); entries.max(1).next_power_of_two()],
            stats: CarryPredictorStats::default(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn index(&self, pc: u64) -> usize {
        let folded = pc ^ (pc >> 8) ^ (pc >> 16);
        (folded as usize) & (self.entries.len() - 1)
    }

    /// Predict whether the µop at `pc` will be carry-free (only meaningful for
    /// CR-eligible µops; the caller checks eligibility).  Returns
    /// `(carry_free, confident)`.
    pub fn predict(&mut self, pc: u64) -> (bool, bool) {
        self.stats.lookups += 1;
        let e = self.entries[self.index(pc)];
        (e.last_carry_free, e.confidence.is_confident())
    }

    /// Update at writeback with whether the instance actually stayed within
    /// the low 8 bits.  Returns whether the stored bit was correct.
    pub fn update(&mut self, pc: u64, actual_carry_free: bool) -> bool {
        let idx = self.index(pc);
        let e = &mut self.entries[idx];
        let was_correct = e.last_carry_free == actual_carry_free;
        if was_correct {
            e.confidence.correct();
            self.stats.correct += 1;
        } else {
            e.confidence.incorrect();
            self.stats.incorrect += 1;
        }
        e.last_carry_free = actual_carry_free;
        was_correct
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CarryPredictorStats {
        self.stats
    }

    /// Return the predictor to its untrained post-construction state without
    /// reallocating the table, so a reused policy starts every run untrained.
    pub fn reset(&mut self) {
        self.entries.fill(Entry::default());
        self.stats = CarryPredictorStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initially_predicts_carry() {
        let mut p = CarryPredictor::new(256);
        let (carry_free, confident) = p.predict(0x20);
        assert!(!carry_free);
        assert!(!confident);
    }

    #[test]
    fn learns_carry_free_behaviour_with_confidence() {
        let mut p = CarryPredictor::new(256);
        p.update(0x20, true);
        p.update(0x20, true);
        p.update(0x20, true);
        let (carry_free, confident) = p.predict(0x20);
        assert!(carry_free);
        assert!(confident);
    }

    #[test]
    fn misprediction_resets_confidence() {
        let mut p = CarryPredictor::new(256);
        for _ in 0..4 {
            p.update(0x20, true);
        }
        p.update(0x20, false);
        let (_, confident) = p.predict(0x20);
        assert!(!confident);
    }

    #[test]
    fn accuracy_tracks_behaviour() {
        let mut p = CarryPredictor::new(64);
        for i in 0..100u64 {
            // Alternating behaviour is the worst case: accuracy ~0.
            p.update(7, i % 2 == 0);
        }
        assert!(p.stats().accuracy() < 0.1);

        let mut p = CarryPredictor::new(64);
        for _ in 0..100 {
            p.update(7, true);
        }
        assert!(p.stats().accuracy() > 0.95);
    }
}
