//! # hc-predictors
//!
//! The prediction structures the paper's steering policies rely on:
//!
//! * [`confidence::ConfidenceCounter`] — the 2-bit confidence interval
//!   estimator used to keep fatal width mispredictions low (§3.2 reduces them
//!   from 2.11% to 0.83%).
//! * [`width::WidthPredictor`] — the 256-entry tagless, PC-indexed, last-width
//!   predictor (1 bit per entry) of Figure 4, with optional confidence.
//! * [`carry::CarryPredictor`] — the CR extension (§3.5): one extra bit per
//!   width-predictor entry remembering whether the last occurrence of an
//!   8/32→32 instruction propagated a carry beyond bit 8.
//! * [`copy_prefetch::CopyPredictor`] — the CP predictor (§3.6): one bit per
//!   entry remembering whether the last occurrence of a producer incurred an
//!   inter-cluster copy, used to prefetch the copy at the producer.
//! * [`branch::BranchPredictor`] — a gshare direction predictor + BTB, needed
//!   by the cycle simulator so branch recovery effects are modelled (the paper
//!   simulates a Pentium-4-like frontend).
//! * [`width_table::WidthTable`] — the 1-bit-per-register width field stored in
//!   the rename table, updated with actual outcomes at writeback.
//! * [`config::PredictorConfig`] — every table-sizing knob in one
//!   serializable, validated value, so campaign scenarios can sweep predictor
//!   geometry declaratively.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod carry;
pub mod confidence;
pub mod config;
pub mod copy_prefetch;
pub mod width;
pub mod width_table;

pub use branch::BranchPredictor;
pub use carry::CarryPredictor;
pub use confidence::ConfidenceCounter;
pub use config::{PredictorConfig, PredictorConfigError, TableKind, MAX_TABLE_ENTRIES};
pub use copy_prefetch::CopyPredictor;
pub use width::{WidthPrediction, WidthPredictor};
pub use width_table::WidthTable;
