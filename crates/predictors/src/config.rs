//! One serializable bundle for every predictor sizing knob.
//!
//! The predictor tables used to be sized through scattered constructor
//! arguments (`WidthPredictor::new(entries, use_confidence)`,
//! `CarryPredictor::new(entries)`, `CopyPredictor::new(entries)`); a
//! [`PredictorConfig`] names them all in one serde-round-trippable value so
//! campaign scenarios can sweep them declaratively (the paper's §3.2 table
//! size study: 256 entries was chosen as the complexity/accuracy compromise).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Largest table size a scenario may ask for.  The tables round up to a
/// power of two, so anything beyond this would silently allocate megabytes
/// of counter state per policy instance.
pub const MAX_TABLE_ENTRIES: usize = 1 << 20;

/// Why a [`PredictorConfig`] was rejected by [`PredictorConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictorConfigError {
    /// A predictor table was configured with zero entries.
    ZeroTableEntries {
        /// Which table (`"width"`, `"carry"` or `"copy"`).
        table: TableKind,
    },
    /// A predictor table exceeds [`MAX_TABLE_ENTRIES`].
    TableTooLarge {
        /// Which table.
        table: TableKind,
        /// Requested entry count.
        entries: usize,
        /// Largest supported entry count.
        max: usize,
    },
}

/// Names the predictor table an error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TableKind {
    /// The last-width predictor of Figure 4.
    Width,
    /// The CR carry predictor (§3.5).
    Carry,
    /// The CP copy predictor (§3.6).
    Copy,
}

impl TableKind {
    /// Lower-case table name for messages.
    pub fn name(self) -> &'static str {
        match self {
            TableKind::Width => "width",
            TableKind::Carry => "carry",
            TableKind::Copy => "copy",
        }
    }
}

impl fmt::Display for PredictorConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictorConfigError::ZeroTableEntries { table } => {
                write!(
                    f,
                    "{} predictor table must have at least 1 entry",
                    table.name()
                )
            }
            PredictorConfigError::TableTooLarge {
                table,
                entries,
                max,
            } => write!(
                f,
                "{} predictor table of {entries} entries exceeds the supported maximum {max}",
                table.name()
            ),
        }
    }
}

impl std::error::Error for PredictorConfigError {}

/// Sizing configuration of the steering stack's prediction structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// Width-predictor table entries (256 in the paper; rounded up to a
    /// power of two at construction).
    pub width_entries: usize,
    /// Whether the width predictor carries the 2-bit confidence estimator of
    /// §3.2 (on in the paper's final design).
    pub use_confidence: bool,
    /// Carry-predictor table entries (the paper shares the width table's
    /// size).
    pub carry_entries: usize,
    /// Copy-predictor table entries (likewise 256 in the paper).
    pub copy_entries: usize,
}

impl PredictorConfig {
    /// The paper's final design point: 256-entry tables everywhere, with the
    /// confidence estimator enabled.
    pub fn paper_default() -> PredictorConfig {
        PredictorConfig {
            width_entries: crate::width::PAPER_TABLE_ENTRIES,
            use_confidence: true,
            carry_entries: crate::width::PAPER_TABLE_ENTRIES,
            copy_entries: crate::width::PAPER_TABLE_ENTRIES,
        }
    }

    /// A configuration sizing every table to `entries` (the common sweep
    /// shape: the paper's table-size study scales all three together).
    pub fn with_all_entries(entries: usize) -> PredictorConfig {
        PredictorConfig {
            width_entries: entries,
            carry_entries: entries,
            copy_entries: entries,
            ..PredictorConfig::paper_default()
        }
    }

    /// Total storage budget in bits (1 width bit + 2 confidence bits per
    /// width entry when confidence is on, plus 3 bits per carry entry and 3
    /// per copy entry) — the hardware-complexity side of the sweep.
    pub fn storage_bits(&self) -> usize {
        let width_per_entry = if self.use_confidence { 3 } else { 1 };
        self.width_entries * width_per_entry + self.carry_entries * 3 + self.copy_entries * 3
    }

    /// Validate the configuration, returning the first problem found.
    pub fn validate(&self) -> Result<(), PredictorConfigError> {
        for (table, entries) in [
            (TableKind::Width, self.width_entries),
            (TableKind::Carry, self.carry_entries),
            (TableKind::Copy, self.copy_entries),
        ] {
            if entries == 0 {
                return Err(PredictorConfigError::ZeroTableEntries { table });
            }
            if entries > MAX_TABLE_ENTRIES {
                return Err(PredictorConfigError::TableTooLarge {
                    table,
                    entries,
                    max: MAX_TABLE_ENTRIES,
                });
            }
        }
        Ok(())
    }
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_design_point() {
        let c = PredictorConfig::paper_default();
        assert_eq!(c.width_entries, 256);
        assert_eq!(c.carry_entries, 256);
        assert_eq!(c.copy_entries, 256);
        assert!(c.use_confidence);
        assert!(c.validate().is_ok());
        assert_eq!(c.storage_bits(), 256 * 3 + 256 * 3 + 256 * 3);
    }

    #[test]
    fn zero_and_oversized_tables_are_typed_errors() {
        let mut c = PredictorConfig::paper_default();
        c.carry_entries = 0;
        assert_eq!(
            c.validate(),
            Err(PredictorConfigError::ZeroTableEntries {
                table: TableKind::Carry
            })
        );
        let mut c = PredictorConfig::paper_default();
        c.width_entries = MAX_TABLE_ENTRIES + 1;
        assert_eq!(
            c.validate(),
            Err(PredictorConfigError::TableTooLarge {
                table: TableKind::Width,
                entries: MAX_TABLE_ENTRIES + 1,
                max: MAX_TABLE_ENTRIES,
            })
        );
        let e: Box<dyn std::error::Error> = Box::new(c.validate().unwrap_err());
        assert!(e.to_string().contains("width predictor table"));
    }

    #[test]
    fn with_all_entries_scales_every_table() {
        let c = PredictorConfig::with_all_entries(1024);
        assert_eq!(c.width_entries, 1024);
        assert_eq!(c.carry_entries, 1024);
        assert_eq!(c.copy_entries, 1024);
        assert!(c.use_confidence, "confidence stays at the paper default");
    }

    #[test]
    fn json_round_trip_is_exact() {
        let c = PredictorConfig::with_all_entries(512);
        let json = serde::json::to_string(&c);
        let back: PredictorConfig = serde::json::from_str(&json).expect("decodes");
        assert_eq!(back, c);
    }
}
