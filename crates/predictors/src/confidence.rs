//! 2-bit saturating confidence counters.
//!
//! §3.2: "we augment the predictor with a 2-bit per-entry confidence interval
//! estimator.  We only take the decision to steer the predicted narrow
//! instruction to the helper cluster if the prediction is with high
//! confidence."

use serde::{Deserialize, Serialize};

/// A 2-bit saturating counter used as a confidence estimator.
///
/// The counter increments on a correct prediction and resets on an incorrect
/// one (reset-on-miss gives a faster reaction to phase changes than decrement,
/// which is what keeps the fatal-misprediction rate below 1%).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfidenceCounter {
    value: u8,
}

impl ConfidenceCounter {
    /// Maximum (saturated) counter value.
    pub const MAX: u8 = 3;
    /// Threshold at or above which the prediction is considered high-confidence.
    pub const HIGH_CONFIDENCE: u8 = 2;

    /// Create a counter starting at zero confidence.
    pub fn new() -> Self {
        ConfidenceCounter { value: 0 }
    }

    /// Create a counter at an arbitrary (clamped) level — mainly for tests.
    pub fn at(value: u8) -> Self {
        ConfidenceCounter {
            value: value.min(Self::MAX),
        }
    }

    /// Current counter value.
    pub fn value(self) -> u8 {
        self.value
    }

    /// Whether the associated prediction should be trusted.
    pub fn is_confident(self) -> bool {
        self.value >= Self::HIGH_CONFIDENCE
    }

    /// Record a correct prediction (saturating increment).
    pub fn correct(&mut self) {
        self.value = (self.value + 1).min(Self::MAX);
    }

    /// Record an incorrect prediction (reset).
    pub fn incorrect(&mut self) {
        self.value = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_unconfident() {
        assert!(!ConfidenceCounter::new().is_confident());
    }

    #[test]
    fn two_correct_predictions_build_confidence() {
        let mut c = ConfidenceCounter::new();
        c.correct();
        assert!(!c.is_confident());
        c.correct();
        assert!(c.is_confident());
    }

    #[test]
    fn saturates_at_max() {
        let mut c = ConfidenceCounter::new();
        for _ in 0..10 {
            c.correct();
        }
        assert_eq!(c.value(), ConfidenceCounter::MAX);
    }

    #[test]
    fn misprediction_resets() {
        let mut c = ConfidenceCounter::at(3);
        c.incorrect();
        assert_eq!(c.value(), 0);
        assert!(!c.is_confident());
    }

    #[test]
    fn at_clamps() {
        assert_eq!(ConfidenceCounter::at(200).value(), ConfidenceCounter::MAX);
    }
}
