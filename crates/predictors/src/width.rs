//! The data-width predictor of Figure 4.
//!
//! A simple table-based tagless scheme: the table is indexed by the µop PC and
//! each entry stores a single bit remembering the width (narrow / wide) of the
//! last result the instruction generated, plus a 2-bit confidence counter.
//! The paper found a 256-entry table to be a good complexity/performance
//! compromise and reports ≈93.5% prediction accuracy on SPEC Int 2000.

use crate::confidence::ConfidenceCounter;
use serde::{Deserialize, Serialize};

/// Outcome of a width-predictor lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WidthPrediction {
    /// Predicted result width: `true` means narrow (≤ 8 bits).
    pub narrow: bool,
    /// Whether the prediction carries high confidence.
    pub confident: bool,
}

impl WidthPrediction {
    /// A prediction that can actually trigger steering to the helper cluster.
    pub fn confidently_narrow(self) -> bool {
        self.narrow && self.confident
    }
}

/// One predictor entry: last observed width + confidence.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Entry {
    last_narrow: bool,
    confidence: ConfidenceCounter,
}

/// Statistics accumulated by the predictor, used for Figure 5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WidthPredictorStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Updates where the prediction matched the actual width.
    pub correct: u64,
    /// Updates where the prediction was wrong.
    pub incorrect: u64,
}

impl WidthPredictorStats {
    /// Prediction accuracy in [0, 1].
    pub fn accuracy(&self) -> f64 {
        let total = self.correct + self.incorrect;
        if total == 0 {
            0.0
        } else {
            self.correct as f64 / total as f64
        }
    }
}

/// PC-indexed tagless last-width predictor with per-entry confidence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WidthPredictor {
    entries: Vec<Entry>,
    use_confidence: bool,
    stats: WidthPredictorStats,
}

/// Table size used in the paper's final design.
pub const PAPER_TABLE_ENTRIES: usize = 256;

impl Default for WidthPredictor {
    fn default() -> Self {
        WidthPredictor::new(PAPER_TABLE_ENTRIES, true)
    }
}

impl WidthPredictor {
    /// Create a predictor with `entries` table entries (rounded up to a power
    /// of two) and confidence estimation enabled or not.
    pub fn new(entries: usize, use_confidence: bool) -> Self {
        let entries = entries.max(1).next_power_of_two();
        WidthPredictor {
            entries: vec![Entry::default(); entries],
            use_confidence,
            stats: WidthPredictorStats::default(),
        }
    }

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has zero entries (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hardware budget of the table in bits (1 width bit + 2 confidence bits
    /// per entry when confidence is enabled) — used for the complexity
    /// discussion in DESIGN.md ablations.
    pub fn storage_bits(&self) -> usize {
        let per_entry = if self.use_confidence { 3 } else { 1 };
        self.entries.len() * per_entry
    }

    fn index(&self, pc: u64) -> usize {
        // µop PCs step by one in our traces; fold higher bits in so different
        // code regions do not trivially alias.
        let folded = pc ^ (pc >> 8) ^ (pc >> 16);
        (folded as usize) & (self.entries.len() - 1)
    }

    /// Predict the result width of the µop at `pc`.
    pub fn predict(&mut self, pc: u64) -> WidthPrediction {
        self.stats.lookups += 1;
        let e = self.entries[self.index(pc)];
        WidthPrediction {
            narrow: e.last_narrow,
            confident: !self.use_confidence || e.confidence.is_confident(),
        }
    }

    /// Peek at the prediction without recording a lookup (used by the rename
    /// width table to fill in source widths).
    pub fn peek(&self, pc: u64) -> WidthPrediction {
        let e = self.entries[self.index(pc)];
        WidthPrediction {
            narrow: e.last_narrow,
            confident: !self.use_confidence || e.confidence.is_confident(),
        }
    }

    /// Update the predictor at writeback with the actual result width.
    ///
    /// Returns `true` if the previously stored prediction agreed with the
    /// actual outcome (i.e. the prediction made for this dynamic instance was
    /// correct).
    pub fn update(&mut self, pc: u64, actual_narrow: bool) -> bool {
        let idx = self.index(pc);
        let e = &mut self.entries[idx];
        let was_correct = e.last_narrow == actual_narrow;
        if was_correct {
            e.confidence.correct();
            self.stats.correct += 1;
        } else {
            e.confidence.incorrect();
            self.stats.incorrect += 1;
        }
        e.last_narrow = actual_narrow;
        was_correct
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> WidthPredictorStats {
        self.stats
    }

    /// Reset the prediction state (table contents) but keep configuration.
    pub fn reset(&mut self) {
        for e in &mut self.entries {
            *e = Entry::default();
        }
        self.stats = WidthPredictorStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_size_rounds_to_power_of_two() {
        assert_eq!(WidthPredictor::new(200, true).len(), 256);
        assert_eq!(WidthPredictor::new(256, true).len(), 256);
        assert_eq!(WidthPredictor::new(1, true).len(), 1);
    }

    #[test]
    fn default_matches_paper_design_point() {
        let p = WidthPredictor::default();
        assert_eq!(p.len(), PAPER_TABLE_ENTRIES);
        assert_eq!(p.storage_bits(), PAPER_TABLE_ENTRIES * 3);
    }

    #[test]
    fn learns_last_width() {
        let mut p = WidthPredictor::new(256, false);
        assert!(!p.predict(0x40).narrow, "initial entries predict wide");
        p.update(0x40, true);
        assert!(p.predict(0x40).narrow);
        p.update(0x40, false);
        assert!(!p.predict(0x40).narrow);
    }

    #[test]
    fn confidence_gates_steering() {
        let mut p = WidthPredictor::new(256, true);
        p.update(0x10, true); // mispredict (entry said wide) -> confidence reset
        assert!(p.predict(0x10).narrow);
        assert!(
            !p.predict(0x10).confidently_narrow(),
            "one observation is not enough to be confident"
        );
        p.update(0x10, true);
        p.update(0x10, true);
        assert!(p.predict(0x10).confidently_narrow());
    }

    #[test]
    fn without_confidence_everything_is_confident() {
        let mut p = WidthPredictor::new(256, false);
        p.update(0x10, true);
        assert!(p.predict(0x10).confidently_narrow());
    }

    #[test]
    fn stats_track_accuracy() {
        let mut p = WidthPredictor::new(64, true);
        // Stable narrow instruction at pc 5: first update is a "miss" (table
        // initialised to wide), the rest hit.
        for _ in 0..10 {
            p.update(5, true);
        }
        let s = p.stats();
        assert_eq!(s.correct + s.incorrect, 10);
        assert_eq!(s.incorrect, 1);
        assert!(s.accuracy() > 0.85);
    }

    #[test]
    fn aliasing_entries_share_state() {
        let mut p = WidthPredictor::new(1, false);
        p.update(0, true);
        assert!(
            p.predict(12345).narrow,
            "single-entry table aliases all PCs"
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut p = WidthPredictor::new(64, true);
        p.update(3, true);
        p.reset();
        assert!(!p.peek(3).narrow);
        assert_eq!(p.stats().lookups, 0);
    }

    #[test]
    fn peek_does_not_count_lookup() {
        let mut p = WidthPredictor::new(64, true);
        let _ = p.peek(9);
        assert_eq!(p.stats().lookups, 0);
        let _ = p.predict(9);
        assert_eq!(p.stats().lookups, 1);
    }
}
