//! Copy-prefetch prediction (the CP scheme, §3.6).
//!
//! An inter-cluster copy normally executes at the *consumer*: when a consumer
//! in cluster A needs a value produced in cluster B, a copy µop is generated
//! and steered to B to fetch the value.  The consumer then stalls for the copy
//! latency.  CP instead predicts — at the *producer* — that a copy will be
//! needed later, and issues the copy right after the producer writes back, so
//! the value is already in the consumer's register file when the consumer
//! issues.  The predictor is last-value based: one bit per entry, set at
//! writeback if the producer instance incurred a copy.
//!
//! The paper reports ≈90% accuracy for this predictor and uses it only for
//! narrow-to-wide copies; wide-to-narrow prefetches reuse the result-width
//! predictor (a narrow result produced in the wide backend is prefetched to
//! the helper backend).

use serde::{Deserialize, Serialize};

/// Per-entry CP predictor state: did the last occurrence of this producer
/// generate an inter-cluster copy?
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Entry {
    last_incurred_copy: bool,
}

/// Statistics accumulated by the CP predictor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CopyPredictorStats {
    /// Number of predictions issued.
    pub lookups: u64,
    /// Updates that confirmed the stored bit.
    pub correct: u64,
    /// Updates that contradicted the stored bit.
    pub incorrect: u64,
    /// Prefetches that turned out useful (consumer really was in the other cluster).
    pub useful_prefetches: u64,
    /// Prefetches that were never consumed (wasted backend resources).
    pub wasted_prefetches: u64,
}

impl CopyPredictorStats {
    /// Prediction accuracy in [0, 1].
    pub fn accuracy(&self) -> f64 {
        let t = self.correct + self.incorrect;
        if t == 0 {
            0.0
        } else {
            self.correct as f64 / t as f64
        }
    }
}

/// PC-indexed last-value copy predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CopyPredictor {
    entries: Vec<Entry>,
    stats: CopyPredictorStats,
}

impl Default for CopyPredictor {
    fn default() -> Self {
        CopyPredictor::new(crate::width::PAPER_TABLE_ENTRIES)
    }
}

impl CopyPredictor {
    /// Create a predictor with `entries` entries (rounded up to a power of two).
    pub fn new(entries: usize) -> Self {
        CopyPredictor {
            entries: vec![Entry::default(); entries.max(1).next_power_of_two()],
            stats: CopyPredictorStats::default(),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn index(&self, pc: u64) -> usize {
        let folded = pc ^ (pc >> 8) ^ (pc >> 16);
        (folded as usize) & (self.entries.len() - 1)
    }

    /// Predict whether the producer at `pc` will incur an inter-cluster copy.
    pub fn predict(&mut self, pc: u64) -> bool {
        self.stats.lookups += 1;
        self.entries[self.index(pc)].last_incurred_copy
    }

    /// Update at the point the producer's copy behaviour is known (its value
    /// was or was not copied across clusters).  Returns whether the stored bit
    /// was correct.
    pub fn update(&mut self, pc: u64, incurred_copy: bool) -> bool {
        let idx = self.index(pc);
        let e = &mut self.entries[idx];
        let was_correct = e.last_incurred_copy == incurred_copy;
        if was_correct {
            self.stats.correct += 1;
        } else {
            self.stats.incorrect += 1;
        }
        e.last_incurred_copy = incurred_copy;
        was_correct
    }

    /// Record whether a prefetch issued from this predictor was consumed.
    pub fn record_prefetch_outcome(&mut self, useful: bool) {
        if useful {
            self.stats.useful_prefetches += 1;
        } else {
            self.stats.wasted_prefetches += 1;
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CopyPredictorStats {
        self.stats
    }

    /// Return the predictor to its untrained post-construction state without
    /// reallocating the table, so a reused policy starts every run untrained.
    pub fn reset(&mut self) {
        self.entries.fill(Entry::default());
        self.stats = CopyPredictorStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initially_predicts_no_copy() {
        let mut p = CopyPredictor::new(256);
        assert!(!p.predict(0x44));
    }

    #[test]
    fn learns_copy_behaviour() {
        let mut p = CopyPredictor::new(256);
        p.update(0x44, true);
        assert!(p.predict(0x44));
        p.update(0x44, false);
        assert!(!p.predict(0x44));
    }

    #[test]
    fn stable_behaviour_gives_high_accuracy() {
        let mut p = CopyPredictor::new(256);
        for _ in 0..50 {
            p.update(0x44, true);
        }
        assert!(p.stats().accuracy() > 0.9);
    }

    #[test]
    fn prefetch_outcomes_tracked() {
        let mut p = CopyPredictor::new(16);
        p.record_prefetch_outcome(true);
        p.record_prefetch_outcome(true);
        p.record_prefetch_outcome(false);
        let s = p.stats();
        assert_eq!(s.useful_prefetches, 2);
        assert_eq!(s.wasted_prefetches, 1);
    }
}
