//! Direct unit tests for the prediction structures — previously these
//! behaviours were only covered indirectly through the cycle simulator.
//!
//! Covers the width-table indexing/aliasing of Figure 4, the 2-bit
//! confidence hysteresis of §3.2, the carry-width predictor of §3.5 and the
//! [`PredictorConfig`]-driven construction the scenario axes rely on.

use hc_predictors::{
    CarryPredictor, ConfidenceCounter, PredictorConfig, WidthPredictor, WidthTable,
};

// ----------------------------------------------------------------- indexing

/// Two PCs whose folded index collides in a small table must share an entry;
/// growing the table must separate them.  The index fold is
/// `pc ^ (pc >> 8) ^ (pc >> 16)` masked to the table size.
#[test]
fn width_table_aliasing_depends_on_table_size() {
    // In a 16-entry table, pc=3 and pc=19 fold to the same slot (19 = 3 + 16).
    let mut small = WidthPredictor::new(16, false);
    small.update(3, true);
    assert!(
        small.predict(19).narrow,
        "16-entry table: 3 and 19 alias to one entry"
    );

    // A 256-entry table keeps them apart.
    let mut big = WidthPredictor::new(256, false);
    big.update(3, true);
    assert!(
        !big.predict(19).narrow,
        "256-entry table separates 3 and 19"
    );
}

/// The fold mixes high PC bits in, so two PCs 256 apart do *not* trivially
/// alias in a 256-entry table.
#[test]
fn width_table_index_folds_high_bits() {
    let mut p = WidthPredictor::new(256, false);
    p.update(0x40, true);
    assert!(
        !p.predict(0x140).narrow,
        "0x40 and 0x140 must not alias: the fold xors bit 8 back in"
    );
    // Same entry updated at a different aliasing PC class: 0x40 ^ (0x40>>8)
    // == 0x40; a PC that folds to 0x40 with high bits set shares the entry.
    // 0x4000 folds to 0x4000 ^ 0x40 = 0x4040 -> masked 0x40.
    p.update(0x4000, false);
    assert!(
        !p.predict(0x40).narrow,
        "a folded-alias update overwrites the shared entry"
    );
}

/// Aliased PCs also share confidence state — the cost the paper's 256-entry
/// compromise accepts.
#[test]
fn aliasing_pcs_fight_over_confidence() {
    let mut p = WidthPredictor::new(1, true);
    // PC 10 keeps being narrow, PC 11 keeps being wide; in a 1-entry table
    // they destroy each other's confidence.
    for _ in 0..8 {
        p.update(10, true);
        p.update(11, false);
    }
    assert!(
        !p.predict(10).confidently_narrow(),
        "alternating aliased outcomes must never reach high confidence"
    );
    let s = p.stats();
    assert!(s.accuracy() < 0.1, "aliased accuracy collapses: {s:?}");
}

// -------------------------------------------------------------- confidence

/// The 2-bit counter's hysteresis: two corrects to trust, one miss to reset.
#[test]
fn confidence_hysteresis_is_two_up_reset_down() {
    let mut c = ConfidenceCounter::new();
    assert!(!c.is_confident());
    c.correct();
    assert!(!c.is_confident(), "one correct is not enough");
    c.correct();
    assert!(c.is_confident(), "two corrects reach the threshold");
    c.correct();
    assert_eq!(c.value(), ConfidenceCounter::MAX, "saturates at 3");
    c.incorrect();
    assert_eq!(c.value(), 0, "reset-on-miss, not decrement");
    assert!(!c.is_confident());
    // Recovery needs two fresh corrects again.
    c.correct();
    assert!(!c.is_confident());
    c.correct();
    assert!(c.is_confident());
}

/// The predictor-level consequence of reset-on-miss: after a phase change,
/// steering resumes only after HIGH_CONFIDENCE consecutive correct outcomes.
#[test]
fn width_predictor_confidence_gates_resteering_after_phase_change() {
    let mut p = WidthPredictor::new(64, true);
    for _ in 0..4 {
        p.update(7, true);
    }
    assert!(p.predict(7).confidently_narrow());
    // Phase change: the instruction goes wide once.
    p.update(7, false);
    assert!(!p.predict(7).narrow || !p.predict(7).confident);
    // Back to narrow: the first update (itself a miss against the stored
    // wide bit) fixes the bit but not the confidence; the counter then needs
    // HIGH_CONFIDENCE consecutive correct outcomes to re-arm steering.
    p.update(7, true);
    let pred = p.predict(7);
    assert!(pred.narrow && !pred.confident);
    p.update(7, true);
    assert!(!p.predict(7).confident, "one correct outcome is not enough");
    p.update(7, true);
    assert!(p.predict(7).confidently_narrow());
}

// ------------------------------------------------------- rename width table

/// The rename-table width field of §3.2: predictions are provisional,
/// writeback makes them actual, flushes reset to wide/actual.
#[test]
fn rename_width_table_tracks_provenance() {
    use hc_isa::reg::ArchReg;
    use hc_predictors::width_table::WidthSource;

    let mut t = WidthTable::new();
    assert_eq!(t.lookup(ArchReg::Esi), (false, WidthSource::Actual));

    t.set_predicted(ArchReg::Esi, true);
    assert_eq!(t.lookup(ArchReg::Esi), (true, WidthSource::Predicted));

    // Writeback of the actual (wide) outcome overrides the prediction.
    t.set_actual(ArchReg::Esi, false);
    assert_eq!(t.lookup(ArchReg::Esi), (false, WidthSource::Actual));

    // Other registers are untouched throughout.
    assert_eq!(t.lookup(ArchReg::Edi), (false, WidthSource::Actual));

    t.set_predicted(ArchReg::Edi, true);
    t.reset();
    assert_eq!(t.lookup(ArchReg::Edi), (false, WidthSource::Actual));
}

// ---------------------------------------------------------- carry predictor

/// The CR predictor learns per-PC carry behaviour with the same 2-bit
/// hysteresis, and a single carry event revokes trust.
#[test]
fn carry_predictor_learns_and_revokes() {
    let mut p = CarryPredictor::new(256);
    let (free, confident) = p.predict(0x33);
    assert!(!free && !confident, "cold entries predict carry, untrusted");

    for _ in 0..3 {
        p.update(0x33, true);
    }
    let (free, confident) = p.predict(0x33);
    assert!(free && confident, "trained carry-free with confidence");

    p.update(0x33, false);
    let (free, confident) = p.predict(0x33);
    assert!(!free, "last-value: the carry event flips the bit");
    assert!(!confident, "and resets confidence");
}

/// Carry entries alias exactly like width entries (same fold, own table).
#[test]
fn carry_predictor_aliases_in_small_tables() {
    let mut p = CarryPredictor::new(1);
    for _ in 0..3 {
        p.update(100, true);
    }
    let (free, confident) = p.predict(20_000);
    assert!(
        free && confident,
        "1-entry table: every PC shares the trained entry"
    );
}

// ----------------------------------------------------------------- sizing

/// PredictorConfig-driven construction: entries round up to powers of two
/// independently per table, and the storage accounting follows.
#[test]
fn predictor_config_sizes_each_table_independently() {
    let cfg = PredictorConfig {
        width_entries: 200,
        use_confidence: true,
        carry_entries: 100,
        copy_entries: 33,
    };
    assert!(cfg.validate().is_ok());
    let width = WidthPredictor::new(cfg.width_entries, cfg.use_confidence);
    let carry = CarryPredictor::new(cfg.carry_entries);
    assert_eq!(width.len(), 256);
    assert_eq!(carry.len(), 128);
    // Storage accounting uses the requested (pre-rounding) entries — it
    // budgets what the scenario asked for.
    assert_eq!(cfg.storage_bits(), 200 * 3 + 100 * 3 + 33 * 3);
}

/// Disabling confidence makes every prediction trusted immediately — the
/// ablation the paper uses to justify the 2-bit estimator.
#[test]
fn confidence_toggle_changes_steering_eligibility() {
    let mut gated = WidthPredictor::new(64, true);
    let mut open = WidthPredictor::new(64, false);
    gated.update(5, true);
    open.update(5, true);
    assert!(!gated.predict(5).confidently_narrow());
    assert!(open.predict(5).confidently_narrow());
}
