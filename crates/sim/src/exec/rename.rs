//! Rename/dispatch: window allocation, dependence tracking, inter-cluster
//! value routing and the two dispatch shapes (normal and IR split).
//!
//! Dependences are recorded in the context's link arena (`dep_head` /
//! `dep_pool`) instead of per-entry `Vec`s, and the copy map is a pair of
//! epoch-guarded slots on each producer entry instead of a
//! `HashMap<(Seq, Cluster), Seq>` — both lookups and inserts are plain
//! indexed stores, and a flush invalidates every copy mapping by bumping the
//! machine's epoch.

use super::context::NO_LINK;
use super::{Machine, RenameEntry};
use crate::rob::{Inflight, Role, Seq, UopCtl, UopState};
use crate::steer::{Cluster, HelperMode, SteerDecision};
use hc_isa::reg::ArchReg;
use hc_isa::uop::{Uop, UopKind};
use hc_isa::DynUop;

impl Machine<'_> {
    pub(crate) fn alloc_entry(&mut self, mut e: Inflight, cluster: Cluster) -> Seq {
        let seq = self.ctx.entries.len() as Seq;
        e.seq = seq;
        let is_fp = matches!(e.uop.uop.kind, UopKind::Fp);
        self.ctx.entries.push(e);
        self.ctx.ctl.push(UopCtl::new(cluster, is_fp));
        self.ctx.dep_head.push(NO_LINK);
        seq
    }

    /// Record that `consumer` must wait for `producer` to complete.
    pub(crate) fn add_dep(&mut self, consumer: Seq, producer: Seq) {
        let pidx = producer as usize;
        let p = self.ctx.ctl[pidx];
        if p.state == UopState::Completed || !p.alive() {
            return;
        }
        self.ctx.ctl[consumer as usize].add_pending_dep();
        let link = self.ctx.dep_pool.len();
        self.ctx.dep_pool.push((consumer, self.ctx.dep_head[pidx]));
        self.ctx.dep_head[pidx] = link;
    }

    fn charge_iq(&mut self, cluster: Cluster, is_fp: bool) {
        match (cluster, is_fp) {
            (Cluster::Wide, false) => {
                self.ctx.wide_int_iq += 1;
                self.ctx.stats.energy.wide_iq_ops += 1;
            }
            (Cluster::Wide, true) => {
                self.ctx.wide_fp_iq += 1;
                self.ctx.stats.energy.wide_iq_ops += 1;
            }
            (Cluster::Helper, _) => {
                self.ctx.helper_iq += 1;
                self.ctx.stats.energy.helper_iq_ops += 1;
            }
        }
    }

    pub(crate) fn finish_dispatch(&mut self, seq: Seq) {
        let idx = seq as usize;
        let c = &mut self.ctx.ctl[idx];
        let (cluster, is_fp) = (c.cluster, c.is_fp);
        let ready_now = c.pending_deps == 0;
        if ready_now {
            c.state = UopState::Ready;
        }
        if ready_now {
            self.ctx.ready.insert(cluster, is_fp, seq);
        }
        self.ctx.rob.push_back(seq);
        if self.ctx.entries[idx].is_store {
            self.ctx.stores.push_back(seq);
        }
        self.charge_iq(cluster, is_fp);
    }

    /// Cached copy of `producer`'s value in `cluster`, if one is still valid
    /// for the current epoch.
    fn cached_copy(&self, producer: Seq, cluster: Cluster) -> Option<Seq> {
        let p = &self.ctx.entries[producer as usize];
        if p.copy_epoch != self.ctx.copy_epoch {
            return None;
        }
        let seq = p.copy_to[cluster.index()];
        (seq != Seq::MAX).then_some(seq)
    }

    fn record_copy(&mut self, producer: Seq, cluster: Cluster, copy: Seq) {
        let epoch = self.ctx.copy_epoch;
        let p = &mut self.ctx.entries[producer as usize];
        if p.copy_epoch != epoch {
            p.copy_to = [Seq::MAX; 2];
            p.copy_epoch = epoch;
        }
        p.copy_to[cluster.index()] = copy;
    }

    /// Ensure the value produced by `producer_seq` (or architectural register
    /// `src` if no in-flight producer) is available in `cluster`, generating a
    /// copy µop if necessary.  Returns the seq the consumer must wait for, if
    /// any.
    pub(crate) fn route_source(&mut self, src: ArchReg, cluster: Cluster) -> Option<Seq> {
        match self.ctx.rename_map[src.index()] {
            Some(e) => {
                let pseq = e.seq;
                let pidx = pseq as usize;
                let p = self.ctx.ctl[pidx];
                if p.cluster == cluster || p.replicated {
                    if p.state == UopState::Completed {
                        None
                    } else {
                        Some(pseq)
                    }
                } else {
                    // Need the value in the other cluster: reuse or create a copy.
                    if let Some(cseq) = self.cached_copy(pseq, cluster) {
                        let c = self.ctx.ctl[cseq as usize];
                        if c.alive() {
                            return if c.state == UopState::Completed {
                                None
                            } else {
                                Some(cseq)
                            };
                        }
                    }
                    let cseq = self.make_copy(pseq, cluster, false);
                    Some(cseq)
                }
            }
            None => {
                // Architectural value.
                if self.ctx.arch_loc[src.index()] == cluster
                    || self.ctx.arch_replicated[src.index()]
                {
                    None
                } else {
                    let cseq = self.make_arch_copy(src, cluster);
                    Some(cseq)
                }
            }
        }
    }

    pub(crate) fn route_flags(&mut self, cluster: Cluster) -> Option<Seq> {
        match self.ctx.flags_map {
            Some(e) => {
                let pseq = e.seq;
                let p = self.ctx.ctl[pseq as usize];
                if p.cluster == cluster || p.replicated {
                    if p.state == UopState::Completed {
                        None
                    } else {
                        Some(pseq)
                    }
                } else {
                    if let Some(cseq) = self.cached_copy(pseq, cluster) {
                        let c = self.ctx.ctl[cseq as usize];
                        if c.alive() {
                            return if c.state == UopState::Completed {
                                None
                            } else {
                                Some(cseq)
                            };
                        }
                    }
                    let cseq = self.make_copy(pseq, cluster, false);
                    Some(cseq)
                }
            }
            None => {
                if self.ctx.flags_loc == cluster {
                    None
                } else {
                    // The flags value lives in the other cluster's committed
                    // state; a copy is still required.
                    let cseq = self.make_flags_copy(cluster);
                    Some(cseq)
                }
            }
        }
    }

    /// Create a copy µop for in-flight producer `producer` targeting `target`.
    pub(crate) fn make_copy(&mut self, producer: Seq, target: Cluster, prefetched: bool) -> Seq {
        let pidx = producer as usize;
        let pcluster = self.ctx.ctl[pidx].cluster;
        let uop = DynUop::from_uop(Uop::new(self.ctx.entries[pidx].uop.uop.pc, UopKind::Copy));
        let e = Inflight::new(
            0,
            Role::Copy {
                producer,
                target,
                prefetched,
            },
            uop,
        );
        // Copies execute in the producer's backend.
        let seq = self.alloc_entry(e, pcluster);
        self.add_dep(seq, producer);
        self.finish_dispatch(seq);
        self.record_copy(producer, target, seq);
        self.ctx.entries[pidx].incurred_copy = true;
        self.ctx.stats.copy_uops += 1;
        seq
    }

    /// Copy of an already-committed architectural value.
    fn make_arch_copy(&mut self, src: ArchReg, target: Cluster) -> Seq {
        let source_cluster = self.ctx.arch_loc[src.index()];
        let uop = DynUop::from_uop(Uop::new(0, UopKind::Copy).with_src(src));
        let e = Inflight::new(
            0,
            Role::Copy {
                producer: Seq::MAX,
                target,
                prefetched: false,
            },
            uop,
        );
        let seq = self.alloc_entry(e, source_cluster);
        self.finish_dispatch(seq);
        // Mark the architectural value as now replicated so we do not generate
        // the same copy again next cycle.
        self.ctx.arch_replicated[src.index()] = true;
        self.ctx.stats.copy_uops += 1;
        seq
    }

    fn make_flags_copy(&mut self, target: Cluster) -> Seq {
        let source_cluster = self.ctx.flags_loc;
        let uop = DynUop::from_uop(Uop::new(0, UopKind::Copy).with_src(ArchReg::Eflags));
        let e = Inflight::new(
            0,
            Role::Copy {
                producer: Seq::MAX,
                target,
                prefetched: false,
            },
            uop,
        );
        let seq = self.alloc_entry(e, source_cluster);
        self.finish_dispatch(seq);
        self.ctx.flags_loc = target; // value now present in both; track target
        self.ctx.stats.copy_uops += 1;
        seq
    }

    pub(crate) fn dispatch_normal(&mut self, pos: usize, duop: &DynUop, decision: &SteerDecision) {
        let cluster = decision.cluster;
        let mut e = Inflight::new(0, Role::Trace { pos }, *duop);
        e.helper_mode = decision.helper_mode;
        e.predicted_narrow = decision.predicted_dest_narrow;
        let replicate = decision.replicate_load && duop.uop.kind.is_load();
        let seq = self.alloc_entry(e, cluster);
        if replicate {
            self.ctx.ctl[seq as usize].replicated = true;
            self.ctx.stats.replicated_loads += 1;
        }

        // Source routing.
        for src in duop.uop.sources() {
            if let Some(dep) = self.route_source(src, cluster) {
                self.add_dep(seq, dep);
            }
        }
        if duop.uop.reads_flags {
            if let Some(dep) = self.route_flags(cluster) {
                self.add_dep(seq, dep);
            }
        }

        // Rename the destination / flags.
        if let Some(dst) = duop.uop.dest {
            self.ctx.rename_map[dst.index()] = Some(RenameEntry { seq });
        }
        if duop.uop.writes_flags {
            self.ctx.flags_map = Some(RenameEntry { seq });
        }

        self.finish_dispatch(seq);

        // Copy prefetching (CP): eagerly push the result to the other cluster.
        if decision.prefetch_copy && duop.uop.has_dest() && self.cfg.helper_enabled {
            let target = cluster.other();
            if self.cached_copy(seq, target).is_none() {
                self.make_copy(seq, target, true);
            }
        }

        // Branch prediction and frontend redirect stalls.
        if duop.uop.kind.is_cond_branch() {
            self.ctx.stats.branches += 1;
            let predicted = self.ctx.branch_pred.predict(duop.uop.pc);
            let actual = duop.taken.unwrap_or(false);
            self.ctx
                .branch_pred
                .update(duop.uop.pc, actual, duop.target);
            if predicted != actual {
                self.ctx.stats.branch_mispredicts += 1;
                self.ctx.branch_stall = Some(seq);
            }
        }
    }

    pub(crate) fn dispatch_split(&mut self, pos: usize, duop: &DynUop, decision: &SteerDecision) {
        // Split a wide ALU µop into helper-width chunks (4 at the paper's
        // 8-bit design point) executed in the helper cluster (§3.7).  Chunk 0
        // handles the least significant slice; each chunk depends on the
        // previous one (carry chain).
        let chunks = self.split_chunks();
        let mut prev: Option<Seq> = None;
        let mut last_chunk: Seq = 0;
        for i in 0..chunks {
            let mut chunk_uop = *duop;
            chunk_uop.uop.pc = duop.uop.pc;
            let mut e = Inflight::new(
                0,
                Role::SplitChunk {
                    parent_pos: pos,
                    index: i as u8,
                },
                chunk_uop,
            );
            e.helper_mode = Some(HelperMode::SplitChunk);
            let seq = self.alloc_entry(e, Cluster::Helper);
            if i == 0 {
                for src in duop.uop.sources() {
                    if let Some(dep) = self.route_source(src, Cluster::Helper) {
                        self.add_dep(seq, dep);
                    }
                }
                if duop.uop.reads_flags {
                    if let Some(dep) = self.route_flags(Cluster::Helper) {
                        self.add_dep(seq, dep);
                    }
                }
            } else if let Some(p) = prev {
                self.add_dep(seq, p);
            }
            self.finish_dispatch(seq);
            prev = Some(seq);
            last_chunk = seq;
        }

        // The architectural destination maps to the chain's last chunk.  The
        // full 32-bit value is prefetched to the wide cluster with copy µops.
        if let Some(dst) = duop.uop.dest {
            self.ctx.rename_map[dst.index()] = Some(RenameEntry { seq: last_chunk });
            for _ in 0..chunks {
                // One helper-width copy µop per chunk reconstructs the value
                // in the wide RF; only the most recent copy slot is depended
                // upon by later wide consumers (they all complete together).
                self.make_copy(last_chunk, Cluster::Wide, true);
            }
        }
        if duop.uop.writes_flags {
            self.ctx.flags_map = Some(RenameEntry { seq: last_chunk });
        }

        // The original wide µop itself is accounted as a helper-steered trace
        // µop: the last chunk carries the Trace role bookkeeping is handled at
        // retire of split chunks; we additionally retire the logical trace µop
        // by tagging the last chunk.
        let idx = last_chunk as usize;
        self.ctx.entries[idx].role = Role::Trace { pos };
        self.ctx.entries[idx].helper_mode = Some(HelperMode::SplitChunk);
        self.ctx.entries[idx].predicted_narrow = decision.predicted_dest_narrow;
    }
}
