//! Commit: in-order retirement, rename-table release, width-prediction
//! outcome accounting (Figure 5 semantics) and policy writeback training.

use super::{Machine, RenameEntry};
use crate::rob::{Role, Seq, UopState};
use crate::steer::{Cluster, WritebackInfo};
use hc_isa::DynUop;

impl Machine<'_> {
    pub(crate) fn commit(&mut self) {
        let mut committed = 0usize;
        while let Some(&seq) = self.ctx.rob.front() {
            let idx = seq as usize;
            if !self.ctx.ctl[idx].alive() {
                self.ctx.rob.pop_front();
                continue;
            }
            if self.ctx.ctl[idx].state != UopState::Completed {
                break;
            }
            if committed >= self.cfg.commit_width {
                break;
            }
            self.ctx.rob.pop_front();
            committed += 1;
            self.retire(seq);
        }
    }

    fn retire(&mut self, seq: Seq) {
        let idx = seq as usize;
        if self.ctx.entries[idx].is_store {
            // Drop this store from the MOB index; any entries in front of it
            // are older squashed stores whose retirement never came.
            while let Some(s) = self.ctx.stores.pop_front() {
                if s == seq {
                    break;
                }
                debug_assert!(!self.ctx.ctl[s as usize].alive());
            }
        }
        let cluster = self.ctx.ctl[idx].cluster;
        let replicated = self.ctx.ctl[idx].replicated;
        let incurred_copy = self.ctx.entries[idx].incurred_copy;
        let fatal = self.ctx.entries[idx].fatal_mispredict;
        let uop = self.ctx.entries[idx].uop;
        let role = self.ctx.entries[idx].role;

        // Free the rename mapping if this entry is still the current producer.
        if let Some(dst) = uop.uop.dest {
            if self.ctx.rename_map[dst.index()]
                .map(|e: RenameEntry| e.seq == seq)
                .unwrap_or(false)
            {
                self.ctx.rename_map[dst.index()] = None;
            }
            self.ctx.arch_loc[dst.index()] = cluster;
            self.ctx.arch_replicated[dst.index()] = replicated;
            self.ctx.arch_narrow[dst.index()] =
                uop.result.map(|v| v.fits_in(self.nbits())).unwrap_or(false);
        }
        if uop.uop.writes_flags {
            if self.ctx.flags_map.map(|e| e.seq == seq).unwrap_or(false) {
                self.ctx.flags_map = None;
            }
            self.ctx.flags_loc = cluster;
        }

        match role {
            Role::Trace { .. } => {
                self.ctx.committed_trace_uops += 1;
                self.ctx.stats.committed_uops += 1;
                match cluster {
                    Cluster::Wide => self.ctx.stats.wide_uops += 1,
                    Cluster::Helper => self.ctx.stats.helper_uops += 1,
                }
                // Width-prediction outcome accounting (Figure 5 semantics):
                // helper-steered µops that survived are correct; wide-steered
                // µops that could have gone narrow are missed opportunities.
                if self.eligible_for_width_accounting(&uop) {
                    if cluster == Cluster::Helper {
                        self.ctx.stats.correct_width_predictions += 1;
                    } else if uop.is_all_narrow_within(self.nbits()) && self.cfg.helper_enabled {
                        self.ctx.stats.nonfatal_width_mispredicts += 1;
                    } else {
                        self.ctx.stats.correct_width_predictions += 1;
                    }
                }
                let info = WritebackInfo {
                    executed_in: cluster,
                    result_narrow: uop.result.map(|v| v.fits_in(self.nbits())).unwrap_or(true),
                    carry_free: uop.is_carry_free_within(self.nbits())
                        || Self::address_carry_free(&uop, self.nbits()),
                    fatal_mispredict: fatal,
                    incurred_copy,
                };
                self.policy.on_writeback(&uop, info);
            }
            Role::SplitChunk { .. } => {
                self.ctx.stats.split_uops += 1;
            }
            Role::Copy { .. } => {}
        }
    }

    fn eligible_for_width_accounting(&self, uop: &DynUop) -> bool {
        !uop.uop.kind.wide_only() && !uop.uop.kind.is_branch()
    }
}
