//! Batched lockstep execution: B independent cells stepped wide cycle by
//! wide cycle through B lanes of SoA simulator state.
//!
//! # Layout and lifecycle
//!
//! A [`BatchContext`] owns `B` [`ExecContext`] lanes — each lane is one
//! column of structure-of-arrays per-cell state (window slab, dep-link
//! arena, event wheel, ready queues, occupancy counters, clocks, stats).
//! [`BatchContext::run_batch`] takes a queue of [`BatchJob`]s (simulator +
//! trace + policy + run count), fills every lane with a job, and then loops
//! rounds: each round gives every active lane a block of `TURN_CYCLES`
//! wide cycles, so the stage code (complete → issue →
//! commit → rename) runs repeatedly over one lane's hot window and
//! predictor state before rotating, amortizing dispatch costs while keeping
//! each lane's working set resident in the closest cache levels.
//!
//! Retirement is **per lane**: cells of different trace lengths drain
//! independently, and a drained lane immediately refills from the pending
//! queue — there is no end-of-batch barrier, so a batch of one long and many
//! short cells keeps all lanes busy.  A job with `runs > 1` (predictor
//! warmup) restarts in place on the same lane.
//!
//! # Determinism
//!
//! Lanes never interact: a lane's wide cycle reads and writes only that
//! lane's `ExecContext` and its job's policy.  The interleaving order
//! therefore cannot influence per-lane results, and every cell's statistics
//! are **byte-identical to a scalar [`Simulator::run_with`] run at every
//! batch size** — pinned by `reused_context_is_bit_identical_to_fresh_contexts`-style
//! tests in this module and the golden campaign snapshots upstream.
//!
//! [`Simulator::run_with`]: crate::exec::Simulator::run_with

use super::{ExecContext, Machine, Simulator};
use crate::stats::SimStats;
use crate::steer::SteeringPolicy;
use hc_trace::Trace;

/// One pending cell for a batch: which simulator/trace to run under which
/// policy, and how many times (warmup passes + 1 measured pass; only the
/// last pass's statistics are returned, matching the scalar warmed-run
/// shape where warmup passes train the policy and are discarded).
pub struct BatchJob<'a> {
    /// The validated simulator (configuration) this cell runs under.
    pub sim: &'a Simulator,
    /// The trace to replay.
    pub trace: &'a Trace,
    /// The steering policy — trained across all `runs` passes.
    pub policy: &'a mut dyn SteeringPolicy,
    /// Total passes (warmup runs + 1).  Must be at least 1.
    pub runs: usize,
}

/// Wide cycles a lane executes per lockstep turn before the scheduler
/// rotates to the next lane.  Larger blocks keep one lane's window slab and
/// event wheel hot in L1/L2 for the whole turn; the value is invisible in
/// the results (lanes are independent) and only shapes cache behaviour.
const TURN_CYCLES: usize = 64;

/// Per-lane bookkeeping: which job occupies the lane and how many of its
/// passes have finished.
#[derive(Clone, Copy)]
struct LaneState {
    job: usize,
    passes_done: usize,
}

/// B lanes of SoA simulator state plus the lockstep scheduler.  Create one
/// per worker thread and reuse it across batches: lanes keep their arena
/// allocations, so steady-state batch refills allocate nothing.
pub struct BatchContext {
    lanes: Vec<ExecContext>,
}

impl BatchContext {
    /// Create a batch context with `lanes` lanes (clamped to at least 1).
    pub fn new(lanes: usize) -> BatchContext {
        BatchContext {
            lanes: (0..lanes.max(1)).map(|_| ExecContext::new()).collect(),
        }
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Run every job to completion, lockstep across lanes, and return each
    /// job's final-pass statistics **in job order**.
    ///
    /// Jobs beyond the lane count wait in the pending queue and are taken in
    /// order as lanes drain.  With one lane this degenerates to sequential
    /// scalar execution; results are identical at every lane count.
    pub fn run_batch(&mut self, mut jobs: Vec<BatchJob<'_>>) -> Vec<SimStats> {
        let mut results: Vec<Option<SimStats>> = Vec::with_capacity(jobs.len());
        results.resize_with(jobs.len(), || None);
        let mut active: Vec<Option<LaneState>> = vec![None; self.lanes.len()];
        let mut next_job = 0usize;
        let mut running = 0usize;

        // Fill every lane from the head of the queue.
        for (lane, slot) in active.iter_mut().enumerate() {
            if next_job >= jobs.len() {
                break;
            }
            let job = &jobs[next_job];
            debug_assert!(job.runs >= 1, "a batch job needs at least one pass");
            self.lanes[lane].begin_run(job.sim.config(), job.trace, job.policy.name());
            *slot = Some(LaneState {
                job: next_job,
                passes_done: 0,
            });
            next_job += 1;
            running += 1;
        }

        // Lockstep rounds: one block of `TURN_CYCLES` wide cycles per active
        // lane per round.  Lanes are independent, so this schedule is
        // invisible in the results; it exists purely to keep the stage code
        // and each lane's tables hot while draining B cells concurrently.
        while running > 0 {
            for (slot, ctx) in active.iter_mut().zip(self.lanes.iter_mut()) {
                let Some(state) = *slot else { continue };
                let job = &mut jobs[state.job];
                if !ctx.run_done() {
                    let mut machine = Machine::attach(job.sim.config(), job.trace, job.policy, ctx);
                    for _ in 0..TURN_CYCLES {
                        machine.step_wide_cycle();
                        if machine.ctx.run_done() {
                            break;
                        }
                    }
                    if !ctx.run_done() {
                        continue;
                    }
                }
                // Lane drained: finish the pass, then restart (warmup) or
                // retire the job and refill from the pending queue.
                let passes_done = state.passes_done + 1;
                if passes_done < job.runs {
                    ctx.begin_run(job.sim.config(), job.trace, job.policy.name());
                    *slot = Some(LaneState {
                        job: state.job,
                        passes_done,
                    });
                } else {
                    results[state.job] = Some(ctx.take_stats());
                    if next_job < jobs.len() {
                        let next = &mut jobs[next_job];
                        debug_assert!(next.runs >= 1, "a batch job needs at least one pass");
                        ctx.begin_run(next.sim.config(), next.trace, next.policy.name());
                        *slot = Some(LaneState {
                            job: next_job,
                            passes_done: 0,
                        });
                        next_job += 1;
                    } else {
                        *slot = None;
                        running -= 1;
                    }
                }
            }
        }

        results
            .into_iter()
            .map(|r| r.expect("every job ran to completion"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::steer::{
        AlwaysWide, HelperMode, SteerContext, SteerDecision, SteeringPolicy, WritebackInfo,
    };
    use hc_isa::DynUop;
    use hc_trace::{KernelKind, SpecBenchmark, WorkloadProfile};
    use std::collections::HashMap;

    /// A stateful test policy: steers a µop narrow iff its last committed
    /// result fit — it trains across passes, so warmup runs genuinely change
    /// the measured pass and the batched warmup order is exercised.
    #[derive(Default)]
    struct LastOutcome {
        last_narrow: HashMap<u64, bool>,
    }

    impl SteeringPolicy for LastOutcome {
        fn name(&self) -> &str {
            "last-outcome"
        }
        fn steer(&mut self, uop: &DynUop, ctx: &SteerContext) -> SteerDecision {
            let narrow = *self.last_narrow.get(&uop.uop.pc).unwrap_or(&false);
            if ctx.helper_available && !ctx.forced_wide && narrow && !uop.uop.kind.wide_only() {
                SteerDecision::helper(HelperMode::AllNarrow).with_dest_prediction(true)
            } else {
                SteerDecision::wide()
            }
        }
        fn on_writeback(&mut self, uop: &DynUop, info: WritebackInfo) {
            self.last_narrow.insert(uop.uop.pc, info.result_narrow);
        }
    }

    fn traces() -> Vec<Trace> {
        vec![
            WorkloadProfile::new("batch-a", vec![(KernelKind::ByteHistogram, 1.0)])
                .with_trace_len(900)
                .generate(),
            SpecBenchmark::Gzip.trace(1_400),
            WorkloadProfile::new("batch-b", vec![(KernelKind::TokenScan, 1.0)])
                .with_trace_len(300)
                .generate(),
            SpecBenchmark::Mcf.trace(1_100),
            WorkloadProfile::new("batch-c", vec![(KernelKind::WordSum, 1.0)])
                .with_trace_len(700)
                .generate(),
        ]
    }

    fn scalar_reference(traces: &[Trace], runs: usize) -> Vec<SimStats> {
        let sim = Simulator::new(SimConfig::paper_baseline()).unwrap();
        let mut ctx = ExecContext::new();
        traces
            .iter()
            .map(|t| {
                let mut policy = LastOutcome::default();
                let mut last = None;
                for _ in 0..runs {
                    last = Some(sim.run_with(&mut ctx, t, &mut policy));
                }
                last.unwrap()
            })
            .collect()
    }

    fn batched(traces: &[Trace], runs: usize, lanes: usize) -> Vec<SimStats> {
        let sim = Simulator::new(SimConfig::paper_baseline()).unwrap();
        let mut policies: Vec<LastOutcome> =
            traces.iter().map(|_| LastOutcome::default()).collect();
        let jobs: Vec<BatchJob> = traces
            .iter()
            .zip(policies.iter_mut())
            .map(|(trace, policy)| BatchJob {
                sim: &sim,
                trace,
                policy,
                runs,
            })
            .collect();
        BatchContext::new(lanes).run_batch(jobs)
    }

    #[test]
    fn every_lane_count_matches_scalar_execution() {
        let traces = traces();
        let reference = scalar_reference(&traces, 1);
        for lanes in [1, 2, 3, 8] {
            assert_eq!(
                batched(&traces, 1, lanes),
                reference,
                "lane count {lanes} must be bit-identical to scalar runs"
            );
        }
    }

    #[test]
    fn warmup_passes_match_scalar_warmed_runs() {
        let traces = traces();
        let reference = scalar_reference(&traces, 3);
        for lanes in [1, 2, 4] {
            assert_eq!(
                batched(&traces, 3, lanes),
                reference,
                "warmed batch at {lanes} lanes must match scalar warmed runs"
            );
        }
    }

    #[test]
    fn lanes_refill_from_the_pending_queue() {
        let traces = traces();
        // 2 lanes, 5 jobs: refill must happen and order must be preserved.
        let out = batched(&traces, 1, 2);
        assert_eq!(out.len(), traces.len());
        for (stats, trace) in out.iter().zip(&traces) {
            assert_eq!(stats.trace, trace.name);
            assert_eq!(stats.committed_uops as usize, trace.len());
        }
    }

    #[test]
    fn mixed_configs_share_a_batch() {
        // Different machines (different clock ratios and helper presence) in
        // one batch: lanes must not bleed configuration into each other.
        let trace = SpecBenchmark::Gzip.trace(1_000);
        let helper = Simulator::new(SimConfig::paper_baseline()).unwrap();
        let mono = Simulator::new(SimConfig::monolithic_baseline()).unwrap();
        let scalar: Vec<SimStats> = {
            let mut ctx = ExecContext::new();
            let mut a = LastOutcome::default();
            let mut b = AlwaysWide;
            vec![
                helper.run_with(&mut ctx, &trace, &mut a),
                mono.run_with(&mut ctx, &trace, &mut b),
            ]
        };
        let mut a = LastOutcome::default();
        let mut b = AlwaysWide;
        let jobs = vec![
            BatchJob {
                sim: &helper,
                trace: &trace,
                policy: &mut a,
                runs: 1,
            },
            BatchJob {
                sim: &mono,
                trace: &trace,
                policy: &mut b,
                runs: 1,
            },
        ];
        assert_eq!(BatchContext::new(2).run_batch(jobs), scalar);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        assert!(BatchContext::new(4).run_batch(Vec::new()).is_empty());
    }
}
