//! Memory ordering: the single MOB's load/store disambiguation check with
//! store-to-load forwarding.

use super::Machine;
use crate::rob::{Seq, UopState};

/// Result of the memory-order check for a load.
pub(crate) enum MemOrder {
    /// No conflicting older store: access the cache.
    Clear,
    /// An older overlapping store has completed: forward its data.
    Forwarded,
    /// An older overlapping store is still pending: the load must wait.
    Blocked,
}

impl Machine<'_> {
    pub(crate) fn memory_order_check(&self, load_seq: Seq) -> MemOrder {
        let load_idx = load_seq as usize;
        let load_mem = match self.ctx.entries[load_idx].uop.mem {
            Some(m) => m,
            None => return MemOrder::Clear,
        };
        // The store index holds exactly the in-flight stores in age order, so
        // this walks the same stores the full ROB scan used to, in the same
        // order — squashed leftovers are skipped like the ROB scan skipped
        // dead entries.
        for &seq in self.ctx.stores.iter() {
            if seq >= load_seq {
                break;
            }
            let idx = seq as usize;
            let c = self.ctx.ctl[idx];
            if !c.alive() {
                continue;
            }
            if let Some(smem) = self.ctx.entries[idx].uop.mem {
                if smem.overlaps(&load_mem) {
                    return if c.state == UopState::Completed {
                        MemOrder::Forwarded
                    } else {
                        MemOrder::Blocked
                    };
                }
            }
        }
        MemOrder::Clear
    }
}
