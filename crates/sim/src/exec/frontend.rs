//! Frontend: fetch/rename pacing and the per-µop steering decision.
//!
//! Once per wide cycle the frontend renames up to `rename_width` trace µops:
//! it fills a [`SteerContext`] from the rename tables (reusing the context's
//! source-info buffer, so this stage never allocates per µop), asks the
//! policy for a [`SteerDecision`], sanitizes it against structural limits,
//! and hands the µop to [`rename`](super::rename) for dispatch.

use super::Machine;
use crate::rob::UopState;
use crate::steer::{Cluster, SourceWidthInfo, SteerContext, SteerDecision};
use hc_isa::reg::ArchReg;
use hc_isa::uop::UopKind;
use hc_isa::DynUop;

impl Machine<'_> {
    pub(crate) fn rename_and_dispatch(&mut self) {
        if self.ctx.tick < self.ctx.frontend_stall_until || self.ctx.branch_stall.is_some() {
            return;
        }
        let mut renamed = 0usize;
        while renamed < self.cfg.rename_width && self.ctx.next_pos < self.feed.len() {
            // Window space: worst case a split needs chunks + copies entries.
            if self.ctx.rob.len() + self.split_chunks() * 2 + 2 > self.cfg.rob_entries {
                break;
            }
            let pos = self.ctx.next_pos;
            // A streaming feed returns None on failure; stop fetching and let
            // the run loop surface the latched error.
            let Some(duop) = self.feed.get(pos) else {
                break;
            };
            let sctx = self.build_context(&duop, pos);
            self.ctx.stats.energy.predictor_accesses += 1;
            let mut decision = self.policy.steer(&duop, &sctx);
            // Reclaim the source-info buffer so the next µop fills it in place.
            self.ctx.steer_sources = sctx.sources;
            self.sanitize_decision(&duop, &mut decision);

            // Issue-queue admission check.
            if !self.iq_has_room(&duop, &decision) {
                break;
            }

            if decision.split && duop.uop.kind.is_simple_alu() {
                self.dispatch_split(pos, &duop, &decision);
            } else {
                self.dispatch_normal(pos, &duop, &decision);
            }
            self.ctx.next_pos += 1;
            renamed += 1;

            if self.ctx.branch_stall.is_some() {
                break; // mispredicted branch: stop fetching younger work
            }
        }
    }

    /// Whether this µop's steering is forced wide by the decision context
    /// (helper missing, wide-only kind, or a post-flush resteer).
    fn forced_wide(&self, duop: &DynUop, pos: usize) -> bool {
        let helper_ok = self.cfg.helper_enabled && self.policy.uses_helper();
        !helper_ok || duop.uop.kind.wide_only() || self.ctx.forced_wide.contains(pos)
    }

    fn sanitize_decision(&self, duop: &DynUop, d: &mut SteerDecision) {
        if self.forced_wide(duop, self.ctx.next_pos) {
            d.cluster = Cluster::Wide;
            d.helper_mode = None;
            d.split = false;
        }
        if d.cluster == Cluster::Wide {
            d.helper_mode = None;
            if !duop.uop.kind.is_simple_alu() {
                d.split = false;
            }
        }
        if d.split && !duop.uop.kind.is_simple_alu() {
            d.split = false;
        }
    }

    fn iq_has_room(&self, duop: &DynUop, d: &SteerDecision) -> bool {
        let needed_helper;
        let mut needed_wide_int = 0usize;
        let mut needed_wide_fp = 0usize;
        if matches!(duop.uop.kind, UopKind::Fp) {
            needed_wide_fp += 1;
            needed_helper = 0;
        } else if d.split {
            // chunks in the helper IQ + copies (also helper IQ, they execute at
            // the producer side).
            needed_helper = self.split_chunks() * 2;
        } else {
            match d.cluster {
                Cluster::Wide => {
                    needed_wide_int += 1;
                    needed_helper = 0;
                }
                Cluster::Helper => needed_helper = 1,
            }
        }
        // Conservative slack of 2 for source copies that dispatch may create.
        self.ctx.wide_int_iq + needed_wide_int + 2 <= self.cfg.int_iq_entries
            && self.ctx.wide_fp_iq + needed_wide_fp <= self.cfg.fp_iq_entries
            && (!self.cfg.helper_enabled
                || self.ctx.helper_iq + needed_helper + 2 <= self.cfg.helper_iq_entries)
    }

    /// Fill a [`SteerContext`] for `duop`, reusing the context's source-info
    /// buffer (the caller hands `sources` back after the policy call).
    fn build_context(&mut self, duop: &DynUop, pos: usize) -> SteerContext {
        let mut sources = std::mem::take(&mut self.ctx.steer_sources);
        sources.clear();
        for src in duop.uop.sources() {
            sources.push(self.source_info(src));
        }
        let flags_producer = if duop.uop.reads_flags {
            match self.ctx.flags_map {
                Some(e) => Some(self.ctx.ctl[e.seq as usize].cluster),
                None => Some(self.ctx.flags_loc),
            }
        } else {
            None
        };
        SteerContext {
            sources,
            imm_narrow: duop.uop.imm.map(|v| v.fits_in(self.nbits())),
            flags_producer,
            wide_iq_occupancy: self.ctx.wide_int_iq,
            helper_iq_occupancy: self.ctx.helper_iq,
            wide_iq_capacity: self.cfg.int_iq_entries,
            helper_iq_capacity: self.cfg.helper_iq_entries,
            wide_to_narrow_imbalance: self.ctx.nready.recent_wide_to_narrow(),
            narrow_to_wide_imbalance: self.ctx.nready.recent_narrow_to_wide(),
            helper_available: self.cfg.helper_enabled && self.policy.uses_helper(),
            forced_wide: self.ctx.forced_wide.contains(pos),
        }
    }

    fn source_info(&self, src: ArchReg) -> SourceWidthInfo {
        match self.ctx.rename_map[src.index()] {
            Some(e) => {
                let c = self.ctx.ctl[e.seq as usize];
                let p = &self.ctx.entries[e.seq as usize];
                if c.state == UopState::Completed {
                    SourceWidthInfo {
                        narrow: p
                            .uop
                            .result
                            .map(|v| v.fits_in(self.nbits()))
                            .unwrap_or(false),
                        actual: true,
                        producer_cluster: Some(c.cluster),
                    }
                } else {
                    SourceWidthInfo {
                        narrow: p.predicted_narrow.unwrap_or(false),
                        actual: false,
                        producer_cluster: Some(c.cluster),
                    }
                }
            }
            None => SourceWidthInfo {
                narrow: self.ctx.arch_narrow[src.index()],
                actual: true,
                producer_cluster: Some(self.ctx.arch_loc[src.index()]),
            },
        }
    }
}
