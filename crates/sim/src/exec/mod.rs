//! The staged cycle-level clustered out-of-order pipeline.
//!
//! The simulator is trace driven: it replays a [`Trace`] through a model of a
//! Pentium-4-like core (Table 1) extended with the 8-bit helper backend of §2,
//! honouring the steering decisions of a [`SteeringPolicy`].
//!
//! # Stages
//!
//! The engine is split into one module per pipeline concern:
//!
//! * [`frontend`] — fetch/rename pacing, the steer-context fill and the
//!   policy call;
//! * [`rename`] — window allocation, dependence tracking, inter-cluster
//!   value routing (copy µops) and dispatch;
//! * [`issue`] — per-cluster wakeup/select, latencies and completion;
//! * [`memory`] — the load/store ordering check (MOB);
//! * [`commit`] — in-order retirement and width-outcome accounting;
//! * [`recovery`] — the fatal-width-misprediction flush;
//! * [`context`] — the reusable [`ExecContext`] arena all of them run in.
//!
//! # Clocking
//!
//! Time advances in *ticks* — helper-cluster cycles.  A wide-cluster cycle is
//! `helper_clock_ratio` ticks (2 in the paper).  Frontend, commit, and the
//! wide backend operate once per wide cycle; the helper backend issues every
//! tick, which is exactly the "2× faster narrow backend with synchronised
//! clocks" design of §2.2.
//!
//! # What is modelled
//!
//! * per-cluster issue queues with limited entries and issue width,
//! * register dependences through a rename map, including the flags register,
//! * inter-cluster communication through copy µops steered to the producer's
//!   backend (Canal/Parcerisa/González scheme), plus copy prefetching,
//! * load replication (LR) and wide-instruction splitting (IR),
//! * a shared memory hierarchy (DL0/UL1/main memory) and a single MOB with
//!   store-to-load forwarding,
//! * branch direction prediction with frontend redirect stalls,
//! * fatal width-misprediction detection with a flush-and-resteer recovery,
//! * the NREADY imbalance metric and energy event counting.
//!
//! # The no-allocation-per-tick invariant
//!
//! Every structure the per-tick loop touches lives in the reusable
//! [`ExecContext`] arena: the window slab, the dependence-link arena, the
//! event wheel, the `forced_wide` bitset and all scratch buffers.  After the
//! first run warms a context, steady-state simulation performs no heap
//! allocation per tick or per µop — only rare cold-path events (window
//! growth beyond any previous run, an event-wheel bucket outgrowing its
//! capacity) can allocate.  Keep it that way: new per-µop state belongs in
//! the slab or an arena, not in per-entry `Vec`s, and per-tick scratch
//! belongs in [`ExecContext`].

pub mod batch;
pub mod commit;
pub mod context;
pub mod frontend;
pub mod issue;
pub mod memory;
pub mod recovery;
pub mod rename;

pub use batch::{BatchContext, BatchJob};
pub use context::ExecContext;

use crate::config::{ConfigError, SimConfig};
use crate::rob::Seq;
use crate::stats::SimStats;
use crate::steer::{Cluster, SteeringPolicy};
use hc_isa::DynUop;
use hc_trace::{Trace, TraceError, TraceSource, TRACE_SOURCE_CHUNK};

/// The simulator: construct once per configuration, then run as many traces /
/// policies as needed — with [`Simulator::run_with`] and a reused
/// [`ExecContext`] for allocation-free steady state, or [`Simulator::run`]
/// for one-off convenience.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Create a simulator after validating the configuration.
    pub fn new(config: SimConfig) -> Result<Simulator, ConfigError> {
        config.validate()?;
        Ok(Simulator { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Run `trace` under `policy` and return the measured statistics.
    ///
    /// Convenience wrapper over [`Simulator::run_with`] that allocates a
    /// fresh [`ExecContext`] per call; batch callers should create one
    /// context per worker thread and reuse it.
    pub fn run(&self, trace: &Trace, policy: &mut dyn SteeringPolicy) -> SimStats {
        let mut ctx = ExecContext::new();
        self.run_with(&mut ctx, trace, policy)
    }

    /// Run `trace` under `policy` inside a reused [`ExecContext`].
    ///
    /// The context is returned to a cold machine state first, so results are
    /// independent of whatever ran in it before — reusing one context across
    /// runs is bit-identical to fresh contexts, just without the per-run
    /// allocations.
    pub fn run_with(
        &self,
        ctx: &mut ExecContext,
        trace: &Trace,
        policy: &mut dyn SteeringPolicy,
    ) -> SimStats {
        ctx.begin_run(&self.config, trace, policy.name());
        Machine::attach(&self.config, trace, policy, ctx).run_to_completion();
        ctx.take_stats()
    }

    /// Run a streaming [`TraceSource`] under `policy` inside a reused
    /// [`ExecContext`], holding only a bounded window of µops in memory.
    ///
    /// The source is `reset()` first, so warmup loops can hand the same
    /// source in repeatedly.  For any source that yields the same µops as a
    /// materialized trace with the same name and length, the returned stats
    /// are bit-identical to [`Simulator::run_with`] over that trace: the
    /// machine consumes positions through the same `(len, get(pos))`
    /// interface either way.
    ///
    /// A source failure (I/O error, corrupt frame, a stream shorter than its
    /// header promised) aborts the run with the typed error; no stats are
    /// produced.
    pub fn run_source(
        &self,
        ctx: &mut ExecContext,
        source: &mut dyn TraceSource,
        policy: &mut dyn SteeringPolicy,
    ) -> Result<SimStats, TraceError> {
        source.reset()?;
        let (name, len) = {
            let header = source.header();
            let len = usize::try_from(header.len).map_err(|_| {
                TraceError::CorruptHeader("µop count exceeds this platform's usize".into())
            })?;
            (header.name.clone(), len)
        };
        ctx.begin_run_parts(&self.config, &name, len, policy.name());
        let mut machine = Machine {
            cfg: &self.config,
            feed: TraceFeed::Stream(StreamCursor::new(source, len)),
            policy,
            ctx,
        };
        machine.run_to_completion();
        match machine.feed.into_failure() {
            Some(e) => Err(e),
            None => Ok(ctx.take_stats()),
        }
    }
}

/// Rename-table entry: the in-flight producer of an architectural register.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RenameEntry {
    pub(crate) seq: Seq,
}

/// Where a machine's µops come from: a borrowed materialized trace (random
/// access, the batched-lane case) or a streaming cursor over a
/// [`TraceSource`] holding only a bounded in-flight window.
///
/// Both answer the two questions the frontend asks — the total length, and
/// "the µop at position `pos`" — so slice-fed and stream-fed runs execute
/// the identical cycle-by-cycle schedule.
pub(crate) enum TraceFeed<'a> {
    Slice(&'a Trace),
    Stream(StreamCursor<'a>),
}

impl TraceFeed<'_> {
    pub(crate) fn len(&self) -> usize {
        match self {
            TraceFeed::Slice(trace) => trace.len(),
            TraceFeed::Stream(cursor) => cursor.len,
        }
    }

    /// The µop at trace position `pos`, or `None` past the end / after a
    /// stream failure.
    pub(crate) fn get(&mut self, pos: usize) -> Option<DynUop> {
        match self {
            TraceFeed::Slice(trace) => trace.uops.get(pos).copied(),
            TraceFeed::Stream(cursor) => cursor.get(pos),
        }
    }

    /// Whether the feed can no longer supply µops it should have.
    pub(crate) fn failed(&self) -> bool {
        matches!(self, TraceFeed::Stream(cursor) if cursor.failed.is_some())
    }

    /// Release buffered µops below the commit watermark — positions the
    /// machine can never ask for again (recovery rewinds only to in-flight,
    /// i.e. not-yet-committed, positions).
    pub(crate) fn trim(&mut self, watermark: usize) {
        if let TraceFeed::Stream(cursor) = self {
            cursor.trim(watermark);
        }
    }

    fn into_failure(self) -> Option<TraceError> {
        match self {
            TraceFeed::Slice(_) => None,
            TraceFeed::Stream(cursor) => cursor.failed,
        }
    }
}

/// A refill-on-demand window over a [`TraceSource`].
///
/// `buf` holds positions `[base, base + buf.len())`; `get` refills in
/// [`TRACE_SOURCE_CHUNK`] steps, and `trim` drops committed positions once a
/// chunk's worth has retired, keeping memory bounded by the chunk size plus
/// the in-flight window.  A source error is latched in `failed`: the
/// frontend then starves, the run loop exits, and the caller surfaces the
/// error instead of stats.
pub(crate) struct StreamCursor<'a> {
    source: &'a mut dyn TraceSource,
    buf: Vec<DynUop>,
    base: usize,
    len: usize,
    failed: Option<TraceError>,
}

impl<'a> StreamCursor<'a> {
    pub(crate) fn new(source: &'a mut dyn TraceSource, len: usize) -> StreamCursor<'a> {
        StreamCursor {
            source,
            buf: Vec::new(),
            base: 0,
            len,
            failed: None,
        }
    }

    fn get(&mut self, pos: usize) -> Option<DynUop> {
        debug_assert!(pos >= self.base, "position below the trimmed watermark");
        while pos >= self.base + self.buf.len() {
            if self.failed.is_some() {
                return None;
            }
            match self.source.fill(&mut self.buf, TRACE_SOURCE_CHUNK) {
                Ok(0) => {
                    self.failed = Some(TraceError::CountMismatch {
                        header: self.len as u64,
                        decoded: (self.base + self.buf.len()) as u64,
                    });
                    return None;
                }
                Ok(_) => {}
                Err(e) => {
                    self.failed = Some(e);
                    return None;
                }
            }
        }
        Some(self.buf[pos - self.base])
    }

    fn trim(&mut self, watermark: usize) {
        let consumed = watermark.saturating_sub(self.base);
        // Amortize: draining the Vec front is O(remaining), so only pay it
        // once a full chunk has retired.
        if consumed >= TRACE_SOURCE_CHUNK {
            self.buf.drain(..consumed.min(self.buf.len()));
            self.base = watermark;
        }
    }
}

/// One run's stage driver: a *view* that borrows the configuration, µop
/// feed, policy and the [`ExecContext`] lane holding **all** mutable state.
/// Because the machine owns nothing but its feed cursor, it can be attached
/// and dropped between wide cycles — which is how the batched mode
/// interleaves lanes.
pub(crate) struct Machine<'a> {
    pub(crate) cfg: &'a SimConfig,
    pub(crate) feed: TraceFeed<'a>,
    pub(crate) policy: &'a mut dyn SteeringPolicy,
    pub(crate) ctx: &'a mut ExecContext,
}

impl<'a> Machine<'a> {
    /// Attach a stage driver to a lane mid-run.  The lane must have been
    /// started with [`ExecContext::begin_run`] for this `(cfg, trace)` pair.
    pub(crate) fn attach(
        cfg: &'a SimConfig,
        trace: &'a Trace,
        policy: &'a mut dyn SteeringPolicy,
        ctx: &'a mut ExecContext,
    ) -> Self {
        Machine {
            cfg,
            feed: TraceFeed::Slice(trace),
            policy,
            ctx,
        }
    }

    pub(crate) fn ratio(&self) -> u64 {
        self.cfg.ticks_per_wide_cycle()
    }

    /// Helper datapath width every narrowness / carry check runs against.
    pub(crate) fn nbits(&self) -> u32 {
        self.cfg.narrow_bits()
    }

    /// IR split chunk count for the configured helper width.
    pub(crate) fn split_chunks(&self) -> usize {
        self.cfg.split_chunks()
    }

    // ----------------------------------------------------------------- run

    /// Drive the lane until its trace has fully retired (or, for a streaming
    /// feed, until the feed fails — the caller turns that into an error).
    pub(crate) fn run_to_completion(&mut self) {
        while !self.ctx.run_done() && !self.feed.failed() {
            self.step_wide_cycle();
        }
    }

    pub(crate) fn step_wide_cycle(&mut self) {
        let ratio = self.ratio();
        for sub in 0..ratio {
            self.complete_at(self.ctx.tick);
            if self.cfg.helper_enabled && self.policy.uses_helper() {
                self.issue_cluster(Cluster::Helper);
            }
            if sub == 0 {
                self.issue_cluster(Cluster::Wide);
            }
            self.ctx.tick += 1;
        }
        self.commit();
        self.feed.trim(self.ctx.committed_trace_uops);
        self.rename_and_dispatch();
        self.sample_nready();
        self.ctx.cycles += 1;
        self.ctx.stats.energy.wide_cycles += 1;
        self.ctx.stats.energy.helper_cycles += ratio;
    }

    // ------------------------------------------------------------- metrics

    fn sample_nready(&mut self) {
        if !self.cfg.helper_enabled || !self.policy.uses_helper() {
            return;
        }
        // The occupancy counters maintained by dispatch/issue/flush and the
        // ready-queue lengths are exactly the quantities the old O(window)
        // ROB walk recomputed: `wide_int_iq`/`helper_iq` count alive integer
        // entries still holding an IQ slot, the ready queues the alive
        // not-yet-issued ready entries.
        let wide_ready = self.ctx.ready.count(Cluster::Wide, false);
        let helper_ready = self.ctx.ready.count(Cluster::Helper, false);
        let considered = self.ctx.wide_int_iq + self.ctx.helper_iq;
        // Free slots next cycle approximated by the issue widths.
        let wide_free = self.cfg.int_issue_width;
        let helper_free = self.cfg.helper_issue_width * self.ratio() as usize;
        self.ctx
            .nready
            .record(wide_ready, wide_free, helper_ready, helper_free, considered);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steer::{
        AlwaysWide, HelperMode, SteerContext, SteerDecision, SteeringPolicy, WritebackInfo,
    };
    use hc_isa::DynUop;
    use hc_trace::{KernelKind, SpecBenchmark, WorkloadProfile};

    fn small_trace(len: usize) -> Trace {
        WorkloadProfile::new(
            "pipe-test",
            vec![
                (KernelKind::ByteHistogram, 1.0),
                (KernelKind::TokenScan, 1.0),
            ],
        )
        .with_trace_len(len)
        .generate()
    }

    #[test]
    fn baseline_retires_every_trace_uop() {
        let trace = small_trace(3_000);
        let sim = Simulator::new(SimConfig::monolithic_baseline()).unwrap();
        let stats = sim.run(&trace, &mut AlwaysWide);
        assert_eq!(stats.committed_uops, 3_000);
        assert_eq!(stats.helper_uops, 0);
        assert!(stats.cycles > 0);
        assert!(stats.ipc() > 0.1, "IPC unreasonably low: {}", stats.ipc());
        assert!(stats.ipc() <= 6.0, "IPC cannot exceed commit width");
    }

    #[test]
    fn baseline_generates_no_copies_or_splits() {
        let trace = small_trace(2_000);
        let sim = Simulator::new(SimConfig::monolithic_baseline()).unwrap();
        let stats = sim.run(&trace, &mut AlwaysWide);
        assert_eq!(stats.copy_uops, 0);
        assert_eq!(stats.split_uops, 0);
        assert_eq!(stats.fatal_width_mispredicts, 0);
    }

    #[test]
    fn baseline_is_deterministic() {
        let trace = small_trace(2_000);
        let sim = Simulator::new(SimConfig::monolithic_baseline()).unwrap();
        let a = sim.run(&trace, &mut AlwaysWide);
        let b = sim.run(&trace, &mut AlwaysWide);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.committed_uops, b.committed_uops);
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let trace = Trace::new("empty");
        let sim = Simulator::new(SimConfig::monolithic_baseline()).unwrap();
        let stats = sim.run(&trace, &mut AlwaysWide);
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.committed_uops, 0);
    }

    /// A test-only policy that steers ground-truth-narrow µops to the helper
    /// cluster (an oracle 8-8-8 policy).
    struct OracleNarrow;
    impl SteeringPolicy for OracleNarrow {
        fn name(&self) -> &str {
            "oracle-888"
        }
        fn steer(&mut self, uop: &DynUop, ctx: &SteerContext) -> SteerDecision {
            if ctx.helper_available
                && !ctx.forced_wide
                && uop.is_all_narrow()
                && !uop.uop.kind.wide_only()
            {
                SteerDecision::helper(HelperMode::AllNarrow).with_dest_prediction(true)
            } else {
                SteerDecision::wide()
            }
        }
        fn on_writeback(&mut self, _u: &DynUop, _i: WritebackInfo) {}
    }

    #[test]
    fn oracle_narrow_policy_uses_helper_and_never_flushes() {
        let trace = small_trace(3_000);
        let sim = Simulator::new(SimConfig::paper_baseline()).unwrap();
        let stats = sim.run(&trace, &mut OracleNarrow);
        assert_eq!(stats.committed_uops, 3_000);
        assert!(
            stats.helper_uops > 0,
            "oracle should steer some µops narrow"
        );
        assert_eq!(
            stats.fatal_width_mispredicts, 0,
            "oracle decisions can never be fatally wrong"
        );
    }

    #[test]
    fn oracle_narrow_speeds_up_narrow_heavy_code() {
        let trace = SpecBenchmark::Gzip.trace(6_000);
        let base_sim = Simulator::new(SimConfig::monolithic_baseline()).unwrap();
        let helper_sim = Simulator::new(SimConfig::paper_baseline()).unwrap();
        let base = base_sim.run(&trace, &mut AlwaysWide);
        let helper = helper_sim.run(&trace, &mut OracleNarrow);
        assert_eq!(base.committed_uops, helper.committed_uops);
        let speedup = helper.speedup_over(&base);
        assert!(
            speedup > 0.95,
            "helper cluster should not slow narrow-heavy code down much, got {speedup:.3}"
        );
    }

    /// A deliberately wrong policy: steers everything to the helper cluster as
    /// "all narrow".  Wide values must then trigger fatal mispredictions.
    struct RecklessNarrow;
    impl SteeringPolicy for RecklessNarrow {
        fn name(&self) -> &str {
            "reckless"
        }
        fn steer(&mut self, uop: &DynUop, ctx: &SteerContext) -> SteerDecision {
            if ctx.helper_available && !ctx.forced_wide && !uop.uop.kind.wide_only() {
                SteerDecision::helper(HelperMode::AllNarrow)
            } else {
                SteerDecision::wide()
            }
        }
        fn on_writeback(&mut self, _u: &DynUop, _i: WritebackInfo) {}
    }

    #[test]
    fn wrong_steering_triggers_fatal_mispredictions_and_still_completes() {
        let trace = small_trace(2_000);
        let sim = Simulator::new(SimConfig::paper_baseline()).unwrap();
        let stats = sim.run(&trace, &mut RecklessNarrow);
        assert_eq!(stats.committed_uops, 2_000, "flushes must not lose µops");
        assert!(
            stats.fatal_width_mispredicts > 0,
            "wide values steered narrow must be caught"
        );
    }

    #[test]
    fn copies_are_generated_when_values_cross_clusters() {
        let trace = small_trace(3_000);
        let sim = Simulator::new(SimConfig::paper_baseline()).unwrap();
        let stats = sim.run(&trace, &mut OracleNarrow);
        assert!(
            stats.copy_uops > 0,
            "narrow producers feeding wide consumers require copies"
        );
    }

    #[test]
    fn stats_fractions_are_consistent() {
        let trace = small_trace(2_000);
        let sim = Simulator::new(SimConfig::paper_baseline()).unwrap();
        let stats = sim.run(&trace, &mut OracleNarrow);
        assert_eq!(stats.helper_uops + stats.wide_uops, stats.committed_uops);
        assert!(stats.helper_fraction() <= 1.0);
        assert!(stats.ticks >= stats.cycles * 2);
    }

    #[test]
    fn reused_context_is_bit_identical_to_fresh_contexts() {
        let traces = [small_trace(1_500), SpecBenchmark::Gzip.trace(1_500)];
        let helper = Simulator::new(SimConfig::paper_baseline()).unwrap();
        let baseline = Simulator::new(SimConfig::monolithic_baseline()).unwrap();
        let mut ctx = ExecContext::new();
        for trace in &traces {
            // Interleave configurations and policies through ONE context and
            // compare against fresh-context runs.
            let a = helper.run_with(&mut ctx, trace, &mut OracleNarrow);
            let b = baseline.run_with(&mut ctx, trace, &mut AlwaysWide);
            let c = helper.run_with(&mut ctx, trace, &mut RecklessNarrow);
            assert_eq!(a, helper.run(trace, &mut OracleNarrow));
            assert_eq!(b, baseline.run(trace, &mut AlwaysWide));
            assert_eq!(c, helper.run(trace, &mut RecklessNarrow));
        }
    }

    #[test]
    fn streaming_source_is_bit_identical_to_slice_runs() {
        use hc_trace::MaterializedSource;
        // Long enough to wrap several stream chunks so `trim` really runs;
        // RecklessNarrow exercises the flush-and-resteer rewind path against
        // the trimmed window.
        let trace = small_trace(10_000);
        let sim = Simulator::new(SimConfig::paper_baseline()).unwrap();
        let mut ctx = ExecContext::new();
        let mut source = MaterializedSource::new(trace.clone());
        for make_policy in [
            || Box::new(OracleNarrow) as Box<dyn SteeringPolicy>,
            || Box::new(RecklessNarrow) as Box<dyn SteeringPolicy>,
            || Box::new(AlwaysWide) as Box<dyn SteeringPolicy>,
        ] {
            let sliced = sim.run_with(&mut ctx, &trace, make_policy().as_mut());
            let streamed = sim
                .run_source(&mut ctx, &mut source, make_policy().as_mut())
                .expect("materialized source cannot fail");
            assert_eq!(sliced, streamed, "stream-fed run must be bit-identical");
        }
    }

    #[test]
    fn short_stream_is_a_typed_error_not_a_hang() {
        use hc_trace::{MaterializedSource, TraceHeader, TraceSource};
        /// A source whose header promises more µops than it yields.
        struct Lying {
            inner: MaterializedSource,
            header: TraceHeader,
        }
        impl TraceSource for Lying {
            fn header(&self) -> &TraceHeader {
                &self.header
            }
            fn reset(&mut self) -> Result<(), hc_trace::TraceError> {
                self.inner.reset()
            }
            fn fill(
                &mut self,
                out: &mut Vec<DynUop>,
                max: usize,
            ) -> Result<usize, hc_trace::TraceError> {
                self.inner.fill(out, max)
            }
        }
        let trace = small_trace(500);
        let mut header = TraceHeader::of_trace(&trace);
        header.len = 800;
        let mut source = Lying {
            inner: MaterializedSource::new(trace),
            header,
        };
        let sim = Simulator::new(SimConfig::paper_baseline()).unwrap();
        let mut ctx = ExecContext::new();
        let err = sim
            .run_source(&mut ctx, &mut source, &mut AlwaysWide)
            .expect_err("a short stream must fail");
        assert!(
            matches!(
                err,
                hc_trace::TraceError::CountMismatch {
                    header: 800,
                    decoded: 500
                }
            ),
            "unexpected error {err:?}"
        );
        // The context is reusable afterwards.
        let trace = small_trace(400);
        let stats = sim.run_with(&mut ctx, &trace, &mut AlwaysWide);
        assert_eq!(stats.committed_uops, 400);
    }

    #[test]
    fn repeated_runs_through_one_context_are_identical() {
        let trace = small_trace(2_000);
        let sim = Simulator::new(SimConfig::paper_baseline()).unwrap();
        let mut ctx = ExecContext::new();
        let first = sim.run_with(&mut ctx, &trace, &mut OracleNarrow);
        for _ in 0..3 {
            let again = sim.run_with(&mut ctx, &trace, &mut OracleNarrow);
            assert_eq!(first, again, "context reuse must not leak state");
        }
    }
}
