//! Recovery: the fatal width-misprediction flush — squash the offending µop
//! and everything younger, invalidate the copy cache by epoch bump, rebuild
//! the rename map from the surviving window, and resteer the frontend.

use super::{Machine, RenameEntry};
use crate::rob::Seq;
use crate::rob::UopState;

impl Machine<'_> {
    pub(crate) fn handle_fatal_width_mispredict(&mut self, seq: Seq, resteer_pos: usize) {
        self.ctx.stats.fatal_width_mispredicts += 1;
        self.ctx.entries[seq as usize].fatal_mispredict = true;
        self.ctx.forced_wide.insert(resteer_pos);

        // Squash the offending entry and everything younger, keeping older
        // work.  The ROB is rebuilt in place via the context scratch buffer.
        let mut snapshot = std::mem::take(&mut self.ctx.seq_scratch);
        snapshot.clear();
        snapshot.extend(self.ctx.rob.iter().copied());
        self.ctx.rob.clear();
        for &s in &snapshot {
            if s >= seq {
                let idx = s as usize;
                if self.ctx.ctl[idx].occupies_iq() {
                    self.release_iq_slot(idx);
                }
                self.ctx.ctl[idx].state = UopState::Squashed;
            } else {
                self.ctx.rob.push_back(s);
            }
        }
        self.ctx.seq_scratch = snapshot;
        // Everything squashed is at or above `seq` (the window is allocated
        // in sequence order), so one retain pass drops all of it from the
        // ready queues.
        self.ctx.ready.retain(|s| s < seq);
        // Invalidate every cached copy mapping at once (the staged engine's
        // O(1) equivalent of the old `copy_map.clear()`).
        self.ctx.copy_epoch += 1;
        if let Some(b) = self.ctx.branch_stall {
            if b >= seq {
                self.ctx.branch_stall = None;
            }
        }

        // Rebuild the rename map from the surviving window.
        self.ctx.rename_map = [None; hc_isa::reg::NUM_ARCH_REGS];
        self.ctx.flags_map = None;
        for i in 0..self.ctx.rob.len() {
            let s = self.ctx.rob[i];
            let e = &self.ctx.entries[s as usize];
            if let Some(dst) = e.uop.uop.dest {
                self.ctx.rename_map[dst.index()] = Some(RenameEntry { seq: s });
            }
            if e.uop.uop.writes_flags {
                self.ctx.flags_map = Some(RenameEntry { seq: s });
            }
        }

        // Restart fetch at the offending µop after the flush penalty.
        self.ctx.next_pos = resteer_pos;
        self.ctx.frontend_stall_until = self.ctx.tick.max(self.ctx.frontend_stall_until)
            + self.cfg.wide_cycles_to_ticks(self.cfg.width_flush_penalty);
    }
}
