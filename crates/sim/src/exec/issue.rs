//! Issue/backend: per-cluster wakeup and select, execution latencies, fatal
//! width-violation detection at issue, and completion-event processing.
//!
//! The select loop walks the reorder buffer *in place* (the ROB is not
//! mutated during issue), and completion events are drained from the
//! context's cycle-bucketed event wheel into a reused scratch buffer — the
//! old per-tick ROB snapshot vector and `BinaryHeap` churn are gone.

use super::Machine;
use crate::rob::{Role, Seq, UopState};
use crate::steer::{Cluster, HelperMode};
use hc_isa::uop::UopKind;
use hc_isa::DynUop;

impl Machine<'_> {
    // ---------------------------------------------------------- completion

    pub(crate) fn complete_at(&mut self, now: u64) {
        let mut due = std::mem::take(&mut self.ctx.event_scratch);
        self.ctx.events.drain_due(now, &mut due);
        for &seq in &due {
            let idx = seq as usize;
            if self.ctx.entries[idx].state != UopState::Issued {
                continue; // squashed after issue
            }
            self.ctx.entries[idx].state = UopState::Completed;
            // Register-file write energy.
            if self.ctx.entries[idx].uop.uop.has_dest() {
                match self.ctx.entries[idx].cluster {
                    Cluster::Wide => self.stats.energy.wide_rf_writes += 1,
                    Cluster::Helper => self.stats.energy.helper_rf_writes += 1,
                }
            }
            if matches!(self.ctx.entries[idx].role, Role::Copy { .. }) {
                self.stats.energy.copy_transfers += 1;
            }
            // Wake dependents by walking this entry's chain in the link arena.
            let mut link = self.ctx.dep_head[idx];
            self.ctx.dep_head[idx] = super::context::NO_LINK;
            while link != super::context::NO_LINK {
                let (consumer, next) = self.ctx.dep_pool[link];
                let entry = &mut self.ctx.entries[consumer as usize];
                if entry.alive() && entry.satisfy_dep() {
                    self.ready_count[entry.cluster.index()][entry.is_fp as usize] += 1;
                }
                link = next;
            }
            // Branch-stall release.
            if self.branch_stall == Some(seq) {
                self.branch_stall = None;
                self.frontend_stall_until = self.frontend_stall_until.max(
                    now + self
                        .cfg
                        .wide_cycles_to_ticks(self.cfg.branch_mispredict_penalty),
                );
            }
        }
        self.ctx.event_scratch = due;
    }

    // --------------------------------------------------------------- issue

    pub(crate) fn issue_cluster(&mut self, cluster: Cluster) {
        let (int_width, fp_width) = match cluster {
            Cluster::Wide => (self.cfg.int_issue_width, self.cfg.fp_issue_width),
            Cluster::Helper => (self.cfg.helper_issue_width, 0),
        };
        let mut int_used = 0usize;
        let mut fp_used = 0usize;
        let mut fatal: Option<(Seq, usize)> = None;
        // Ready entries of this cluster not yet encountered by the scan;
        // once it reaches zero the remaining (younger) window holds nothing
        // issuable and the walk can stop without changing the select order.
        let mut unseen_ready =
            self.ready_count[cluster.index()][0] + self.ready_count[cluster.index()][1];

        // The ROB is only mutated by commit and recovery, never during issue,
        // so the select loop can walk it by index without a snapshot.
        for rob_idx in 0..self.ctx.rob.len() {
            if unseen_ready == 0 {
                break;
            }
            if int_used >= int_width && (fp_width == 0 || fp_used >= fp_width) {
                break;
            }
            let seq = self.ctx.rob[rob_idx];
            let idx = seq as usize;
            if !self.ctx.entries[idx].alive()
                || self.ctx.entries[idx].cluster != cluster
                || self.ctx.entries[idx].state != UopState::Ready
            {
                continue;
            }
            unseen_ready -= 1;
            let is_fp = self.ctx.entries[idx].is_fp;
            // Copy µops have their own scheduling resources (Canal/Parcerisa/
            // González scheme, see §4): they do not compete with regular µops
            // for issue slots.
            let is_copy = matches!(self.ctx.entries[idx].uop.uop.kind, UopKind::Copy);
            if is_fp {
                if fp_used >= fp_width {
                    continue;
                }
            } else if int_used >= int_width && !is_copy {
                continue;
            }

            // Memory ordering: a load may not issue past an older,
            // not-yet-completed overlapping store.
            let mut forward = false;
            if self.ctx.entries[idx].uop.uop.kind.is_load() {
                match self.memory_order_check(seq) {
                    super::memory::MemOrder::Blocked => continue,
                    super::memory::MemOrder::Forwarded => forward = true,
                    super::memory::MemOrder::Clear => {}
                }
            }

            // Fatal width misprediction detection: the helper cluster's
            // zero/carry detectors catch a value that does not fit as the µop
            // executes (§3.2 / §3.5).
            if cluster == Cluster::Helper && self.is_fatal_width_violation(idx) {
                fatal = Some((
                    seq,
                    self.ctx.entries[idx].trace_pos().unwrap_or(self.next_pos),
                ));
                break;
            }

            // Issue.
            let latency = self.latency_ticks(idx, forward);
            self.ctx.entries[idx].state = UopState::Issued;
            self.ctx.entries[idx].complete_tick = self.tick + latency;
            self.ready_count[cluster.index()][is_fp as usize] -= 1;
            self.ctx.events.push(self.tick + latency, seq);
            self.release_iq_slot(idx);
            if is_fp {
                fp_used += 1;
                self.stats.energy.fp_ops += 1;
            } else if !is_copy {
                int_used += 1;
                match cluster {
                    Cluster::Wide => self.stats.energy.wide_alu_ops += 1,
                    Cluster::Helper => self.stats.energy.helper_alu_ops += 1,
                }
            }
            let nsrc = self.ctx.entries[idx].uop.uop.num_sources() as u64;
            match cluster {
                Cluster::Wide => self.stats.energy.wide_rf_reads += nsrc,
                Cluster::Helper => self.stats.energy.helper_rf_reads += nsrc,
            }
        }

        if let Some((seq, pos)) = fatal {
            self.handle_fatal_width_mispredict(seq, pos);
        }
    }

    pub(crate) fn release_iq_slot(&mut self, idx: usize) {
        match (self.ctx.entries[idx].cluster, self.ctx.entries[idx].is_fp) {
            (Cluster::Wide, false) => self.wide_int_iq = self.wide_int_iq.saturating_sub(1),
            (Cluster::Wide, true) => self.wide_fp_iq = self.wide_fp_iq.saturating_sub(1),
            (Cluster::Helper, _) => self.helper_iq = self.helper_iq.saturating_sub(1),
        }
    }

    fn is_fatal_width_violation(&self, idx: usize) -> bool {
        let nbits = self.nbits();
        let e = &self.ctx.entries[idx];
        match e.helper_mode {
            Some(HelperMode::AllNarrow) => !e.uop.is_all_narrow_within(nbits),
            Some(HelperMode::CarryFree) => {
                !(e.uop.is_all_narrow_within(nbits)
                    || e.uop.is_carry_free_within(nbits)
                    || Self::address_carry_free(&e.uop, nbits))
            }
            // Branches, split chunks and copies cannot violate widths.
            _ => false,
        }
    }

    /// CR eligibility check for loads/stores: the *address computation* stays
    /// within the low `nbits` bits of the wide base.
    pub(crate) fn address_carry_free(uop: &DynUop, nbits: u32) -> bool {
        if !uop.uop.kind.is_mem() {
            return false;
        }
        let mut wide: Option<hc_isa::Value> = None;
        let mut wide_count = 0usize;
        let mut sum = hc_isa::Value::ZERO;
        for v in uop.source_values_iter().chain(uop.uop.imm) {
            sum = sum + v;
            if !v.fits_in(nbits) {
                wide_count += 1;
                wide = Some(v);
            }
        }
        wide_count == 1
            && wide.map(|w| w.upper_bits_within(nbits)) == Some(sum.upper_bits_within(nbits))
    }

    fn latency_ticks(&mut self, idx: usize, forwarded: bool) -> u64 {
        let cluster = self.ctx.entries[idx].cluster;
        let ratio = self.ratio();
        let own_cycle = match cluster {
            Cluster::Wide => ratio,
            Cluster::Helper => 1,
        };
        let kind = self.ctx.entries[idx].uop.uop.kind;
        match kind {
            UopKind::Alu(_) | UopKind::Nop | UopKind::CondBranch(_) | UopKind::Jump => own_cycle,
            // Copies ride the inter-cluster bypass: latency is expressed in
            // helper ticks (half wide cycles), matching the synchronised 2:1
            // clock of §2.2.
            UopKind::Copy => (self.cfg.copy_latency as u64).max(1),
            UopKind::Mul => self.cfg.wide_cycles_to_ticks(self.cfg.mul_latency),
            UopKind::Div => self.cfg.wide_cycles_to_ticks(self.cfg.div_latency),
            UopKind::Fp => self.cfg.wide_cycles_to_ticks(self.cfg.fp_latency),
            UopKind::Load(_) => {
                let addr = self.ctx.entries[idx].mem_addr.unwrap_or(0);
                let mem_cycles = if forwarded {
                    self.cfg.forward_latency
                } else {
                    self.ctx.mem.access(addr)
                };
                // AGU in the issuing cluster + cache access at wide-cluster speed.
                own_cycle + self.cfg.wide_cycles_to_ticks(mem_cycles)
            }
            UopKind::Store(_) => {
                // Address generation only; data is written at commit.
                own_cycle
            }
        }
    }
}
