//! Issue/backend: per-cluster wakeup and select, execution latencies, fatal
//! width-violation detection at issue, and completion-event processing.
//!
//! The select loop walks the cluster's **ready queues** (ascending sequence
//! order, maintained by dispatch/wakeup/flush) instead of scanning the
//! reorder buffer: because the ROB holds sequence numbers in ascending
//! dispatch order, the merged ready walk visits entries in exactly the order
//! the O(window) scan encountered them — same select outcome, without
//! stepping over waiting and issued entries.  Completion events are drained
//! from the context's cycle-bucketed event wheel into a reused scratch
//! buffer.

use super::Machine;
use crate::rob::{Role, Seq, UopState};
use crate::steer::{Cluster, HelperMode};
use hc_isa::uop::UopKind;
use hc_isa::DynUop;

impl Machine<'_> {
    // ---------------------------------------------------------- completion

    pub(crate) fn complete_at(&mut self, now: u64) {
        let mut due = std::mem::take(&mut self.ctx.event_scratch);
        self.ctx.events.drain_due(now, &mut due);
        for &seq in &due {
            let idx = seq as usize;
            if self.ctx.ctl[idx].state != UopState::Issued {
                continue; // squashed after issue
            }
            self.ctx.ctl[idx].state = UopState::Completed;
            // Register-file write energy.
            if self.ctx.entries[idx].uop.uop.has_dest() {
                match self.ctx.ctl[idx].cluster {
                    Cluster::Wide => self.ctx.stats.energy.wide_rf_writes += 1,
                    Cluster::Helper => self.ctx.stats.energy.helper_rf_writes += 1,
                }
            }
            if matches!(self.ctx.entries[idx].role, Role::Copy { .. }) {
                self.ctx.stats.energy.copy_transfers += 1;
            }
            // Wake dependents by walking this entry's chain in the link arena.
            let mut link = self.ctx.dep_head[idx];
            self.ctx.dep_head[idx] = super::context::NO_LINK;
            while link != super::context::NO_LINK {
                let (consumer, next) = self.ctx.dep_pool[link];
                let c = &mut self.ctx.ctl[consumer as usize];
                if c.alive() && c.satisfy_dep() {
                    let (cl, fp) = (c.cluster, c.is_fp);
                    self.ctx.ready.insert(cl, fp, consumer);
                }
                link = next;
            }
            // Branch-stall release.
            if self.ctx.branch_stall == Some(seq) {
                self.ctx.branch_stall = None;
                self.ctx.frontend_stall_until = self.ctx.frontend_stall_until.max(
                    now + self
                        .cfg
                        .wide_cycles_to_ticks(self.cfg.branch_mispredict_penalty),
                );
            }
        }
        self.ctx.event_scratch = due;
    }

    // --------------------------------------------------------------- issue

    pub(crate) fn issue_cluster(&mut self, cluster: Cluster) {
        let (int_width, fp_width) = match cluster {
            Cluster::Wide => (self.cfg.int_issue_width, self.cfg.fp_issue_width),
            Cluster::Helper => (self.cfg.helper_issue_width, 0),
        };
        let mut int_used = 0usize;
        let mut fp_used = 0usize;
        let mut fatal: Option<(Seq, usize)> = None;
        if self.ctx.ready.count(cluster, false) + self.ctx.ready.count(cluster, true) == 0 {
            return;
        }
        // Snapshot the cluster's ready entries in ascending sequence order —
        // exactly the subsequence of the ROB the old scan would have selected
        // from.  The queues themselves are mutated as entries issue, so the
        // walk runs over the reused scratch snapshot.
        let mut walk = std::mem::take(&mut self.ctx.select_scratch);
        self.ctx.ready.merged(cluster, &mut walk);
        for &seq in &walk {
            if int_used >= int_width && (fp_width == 0 || fp_used >= fp_width) {
                break;
            }
            let idx = seq as usize;
            debug_assert!(
                self.ctx.ctl[idx].alive()
                    && self.ctx.ctl[idx].cluster == cluster
                    && self.ctx.ctl[idx].state == UopState::Ready,
                "ready queues must hold exactly the alive Ready entries"
            );
            let is_fp = self.ctx.ctl[idx].is_fp;
            // Copy µops have their own scheduling resources (Canal/Parcerisa/
            // González scheme, see §4): they do not compete with regular µops
            // for issue slots.
            let is_copy = matches!(self.ctx.entries[idx].uop.uop.kind, UopKind::Copy);
            if is_fp {
                if fp_used >= fp_width {
                    continue;
                }
            } else if int_used >= int_width && !is_copy {
                continue;
            }

            // Memory ordering: a load may not issue past an older,
            // not-yet-completed overlapping store.
            let mut forward = false;
            if self.ctx.entries[idx].uop.uop.kind.is_load() {
                match self.memory_order_check(seq) {
                    super::memory::MemOrder::Blocked => continue,
                    super::memory::MemOrder::Forwarded => forward = true,
                    super::memory::MemOrder::Clear => {}
                }
            }

            // Fatal width misprediction detection: the helper cluster's
            // zero/carry detectors catch a value that does not fit as the µop
            // executes (§3.2 / §3.5).
            if cluster == Cluster::Helper && self.is_fatal_width_violation(idx) {
                fatal = Some((
                    seq,
                    self.ctx.entries[idx]
                        .trace_pos()
                        .unwrap_or(self.ctx.next_pos),
                ));
                break;
            }

            // Issue.
            let latency = self.latency_ticks(idx, forward);
            debug_assert!(
                latency < self.ctx.events.horizon(),
                "completion latency {latency} would wrap the {}-bucket event wheel; \
                 SimConfig::validate and EventWheel::ensure_horizon must keep the \
                 wheel larger than any reachable latency",
                self.ctx.events.horizon()
            );
            self.ctx.ctl[idx].state = UopState::Issued;
            self.ctx.ready.remove(cluster, is_fp, seq);
            self.ctx.events.push(self.ctx.tick + latency, seq);
            self.release_iq_slot(idx);
            if is_fp {
                fp_used += 1;
                self.ctx.stats.energy.fp_ops += 1;
            } else if !is_copy {
                int_used += 1;
                match cluster {
                    Cluster::Wide => self.ctx.stats.energy.wide_alu_ops += 1,
                    Cluster::Helper => self.ctx.stats.energy.helper_alu_ops += 1,
                }
            }
            let nsrc = self.ctx.entries[idx].uop.uop.num_sources() as u64;
            match cluster {
                Cluster::Wide => self.ctx.stats.energy.wide_rf_reads += nsrc,
                Cluster::Helper => self.ctx.stats.energy.helper_rf_reads += nsrc,
            }
        }
        self.ctx.select_scratch = walk;

        if let Some((seq, pos)) = fatal {
            self.handle_fatal_width_mispredict(seq, pos);
        }
    }

    pub(crate) fn release_iq_slot(&mut self, idx: usize) {
        match (self.ctx.ctl[idx].cluster, self.ctx.ctl[idx].is_fp) {
            (Cluster::Wide, false) => self.ctx.wide_int_iq = self.ctx.wide_int_iq.saturating_sub(1),
            (Cluster::Wide, true) => self.ctx.wide_fp_iq = self.ctx.wide_fp_iq.saturating_sub(1),
            (Cluster::Helper, _) => self.ctx.helper_iq = self.ctx.helper_iq.saturating_sub(1),
        }
    }

    fn is_fatal_width_violation(&self, idx: usize) -> bool {
        let nbits = self.nbits();
        let e = &self.ctx.entries[idx];
        match e.helper_mode {
            Some(HelperMode::AllNarrow) => !e.uop.is_all_narrow_within(nbits),
            Some(HelperMode::CarryFree) => {
                !(e.uop.is_all_narrow_within(nbits)
                    || e.uop.is_carry_free_within(nbits)
                    || Self::address_carry_free(&e.uop, nbits))
            }
            // Branches, split chunks and copies cannot violate widths.
            _ => false,
        }
    }

    /// CR eligibility check for loads/stores: the *address computation* stays
    /// within the low `nbits` bits of the wide base.
    pub(crate) fn address_carry_free(uop: &DynUop, nbits: u32) -> bool {
        if !uop.uop.kind.is_mem() {
            return false;
        }
        let mut wide: Option<hc_isa::Value> = None;
        let mut wide_count = 0usize;
        let mut sum = hc_isa::Value::ZERO;
        for v in uop.source_values_iter().chain(uop.uop.imm) {
            sum = sum + v;
            if !v.fits_in(nbits) {
                wide_count += 1;
                wide = Some(v);
            }
        }
        wide_count == 1
            && wide.map(|w| w.upper_bits_within(nbits)) == Some(sum.upper_bits_within(nbits))
    }

    fn latency_ticks(&mut self, idx: usize, forwarded: bool) -> u64 {
        let cluster = self.ctx.ctl[idx].cluster;
        let ratio = self.ratio();
        let own_cycle = match cluster {
            Cluster::Wide => ratio,
            Cluster::Helper => 1,
        };
        let kind = self.ctx.entries[idx].uop.uop.kind;
        match kind {
            UopKind::Alu(_) | UopKind::Nop | UopKind::CondBranch(_) | UopKind::Jump => own_cycle,
            // Copies ride the inter-cluster bypass: latency is expressed in
            // helper ticks (half wide cycles), matching the synchronised 2:1
            // clock of §2.2.
            UopKind::Copy => (self.cfg.copy_latency as u64).max(1),
            UopKind::Mul => self.cfg.wide_cycles_to_ticks(self.cfg.mul_latency),
            UopKind::Div => self.cfg.wide_cycles_to_ticks(self.cfg.div_latency),
            UopKind::Fp => self.cfg.wide_cycles_to_ticks(self.cfg.fp_latency),
            UopKind::Load(_) => {
                let addr = self.ctx.entries[idx].mem_addr.unwrap_or(0);
                let mem_cycles = if forwarded {
                    self.cfg.forward_latency
                } else {
                    self.ctx.mem.access(addr)
                };
                // AGU in the issuing cluster + cache access at wide-cluster speed.
                own_cycle + self.cfg.wide_cycles_to_ticks(mem_cycles)
            }
            UopKind::Store(_) => {
                // Address generation only; data is written at commit.
                own_cycle
            }
        }
    }
}
