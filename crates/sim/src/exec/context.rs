//! The reusable per-run execution arena: every piece of mutable simulator
//! state, in a structure-of-arrays layout — one [`ExecContext`] is one
//! *lane* of simulator state, and a batch of lanes
//! ([`super::batch::BatchContext`]) is a column-per-field SoA over cells.
//!
//! A [`ExecContext`] owns the in-flight window slab, the dependence-link
//! arena, the reorder buffer, the cycle-bucketed event wheel, the
//! `forced_wide` bitset, the reused memory hierarchy and branch predictor,
//! assorted scratch buffers, **and the whole per-run machine state** (rename
//! tables, issue-queue occupancy, the ready queues, clocks and statistics).
//! Holding the machine state here — rather than on a stack-allocated
//! `Machine` — is what makes runs *suspendable*: a lane can be stepped a few
//! wide cycles at a time and interleaved with other lanes, which is the
//! foundation of the batched execution mode.
//!
//! Its `begin_run` step returns all of it to a cold state *without releasing
//! allocations*, which is what makes the staged engine's hot loop
//! allocation-free in steady state: a campaign worker thread allocates one
//! context (or one batch of lanes) and replays every grid cell through it.
//!
//! [`Simulator::run_with`]: crate::exec::Simulator::run_with

use super::RenameEntry;
use crate::cache::MemoryHierarchy;
use crate::config::SimConfig;
use crate::imbalance::NReadyAccumulator;
use crate::rob::{Inflight, Seq, UopCtl};
use crate::stats::SimStats;
use crate::steer::{Cluster, SourceWidthInfo};
use hc_isa::reg::NUM_ARCH_REGS;
use hc_predictors::BranchPredictor;
use hc_trace::Trace;
use std::collections::VecDeque;

/// Sentinel for "no link" in the dependence arena.
pub(crate) const NO_LINK: usize = usize::MAX;

/// Default number of buckets in the event wheel: larger than the longest
/// event latency of the paper configuration (a main-memory load is under
/// 1000 ticks at the 2× helper clock), so bucket collisions essentially
/// never happen.  Configurations with longer worst-case latencies grow the
/// wheel to the next power of two that covers them (see
/// [`EventWheel::ensure_horizon`]); [`SimConfig::validate`] rejects
/// configurations beyond [`crate::config::MAX_COMPLETION_LATENCY_TICKS`]
/// outright.
const DEFAULT_WHEEL_BUCKETS: usize = 1024;

/// Reusable per-run simulator state.  Create once (per worker thread, or one
/// per batch lane) and pass to [`Simulator::run_with`] for every run; each
/// run starts from a cold machine state but reuses every allocation of the
/// previous one.
///
/// [`Simulator::run_with`]: crate::exec::Simulator::run_with
#[derive(Debug, Clone)]
pub struct ExecContext {
    // ------------------------------------------------------------- arenas
    /// Dense in-flight window slab (cold per-entry payload), indexed by
    /// [`Seq`].
    pub(crate) entries: Vec<Inflight>,
    /// Packed hot scheduling state of each entry (8 bytes/entry), parallel
    /// to `entries` — the wakeup/select/routing loops walk this column
    /// instead of dragging whole [`Inflight`] records through the cache.
    pub(crate) ctl: Vec<UopCtl>,
    /// Head of each entry's dependents chain in [`ExecContext::dep_pool`]
    /// (`NO_LINK` = no dependents).  Parallel to `entries`.
    pub(crate) dep_head: Vec<usize>,
    /// Arena of `(consumer, next)` dependence links: the index-vector
    /// replacement for the old per-entry `Vec<Seq>` dependents lists.
    pub(crate) dep_pool: Vec<(Seq, usize)>,
    /// The reorder buffer (sequence numbers in dispatch order).
    pub(crate) rob: VecDeque<Seq>,
    /// In-flight store sequence numbers in dispatch (= age) order: the MOB's
    /// index, so the load ordering check scans stores only, not the whole
    /// window.  Squashed stores are skipped lazily and dropped at the next
    /// store retirement.
    pub(crate) stores: VecDeque<Seq>,
    /// Cycle-bucketed completion-event wheel.
    pub(crate) events: EventWheel,
    /// Scratch for draining one tick's due events.
    pub(crate) event_scratch: Vec<Seq>,
    /// Scratch for the select loop's merged (int + fp) ready walk.
    pub(crate) select_scratch: Vec<Seq>,
    /// Alive `Ready` (not yet issued) entries per `[cluster][is_fp]`, each
    /// queue in ascending sequence order — the select loop walks exactly the
    /// issuable entries instead of scanning the whole reorder buffer.
    pub(crate) ready: ReadyQueues,
    /// Trace positions forced to the wide cluster after a fatal width
    /// misprediction, as a dense bitset over trace positions.
    pub(crate) forced_wide: BitSet,
    /// Scratch for the steer-context source list, reclaimed after every
    /// policy call so rename never allocates per µop.
    pub(crate) steer_sources: Vec<SourceWidthInfo>,
    /// Scratch sequence buffer for flush recovery.
    pub(crate) seq_scratch: Vec<Seq>,
    /// Reused data-memory hierarchy (rebuilt only when the cache geometry
    /// changes between runs, reset otherwise).
    pub(crate) mem: MemoryHierarchy,
    /// Reused branch predictor (reset to untrained between runs).
    pub(crate) branch_pred: BranchPredictor,

    // -------------------------------------------------- per-run machine state
    // (Previously stack-locals of the run loop; living here makes a run
    // suspendable so batch lanes can interleave.)
    /// Rename table: in-flight producer of each architectural register.
    pub(crate) rename_map: [Option<RenameEntry>; NUM_ARCH_REGS],
    /// In-flight producer of the flags register.
    pub(crate) flags_map: Option<RenameEntry>,
    /// Cluster each committed architectural register lives in.
    pub(crate) arch_loc: [Cluster; NUM_ARCH_REGS],
    /// Whether the committed value is replicated in both clusters.
    pub(crate) arch_replicated: [bool; NUM_ARCH_REGS],
    /// Whether the committed value fits the helper width.
    pub(crate) arch_narrow: [bool; NUM_ARCH_REGS],
    /// Cluster the committed flags value lives in.
    pub(crate) flags_loc: Cluster,
    /// Current copy-slot epoch; a flush bumps it to invalidate every cached
    /// copy mapping at once (see [`crate::rob::Inflight`]).
    pub(crate) copy_epoch: u32,
    /// Wide-cluster integer issue-queue occupancy.
    pub(crate) wide_int_iq: usize,
    /// Wide-cluster FP issue-queue occupancy.
    pub(crate) wide_fp_iq: usize,
    /// Helper-cluster issue-queue occupancy.
    pub(crate) helper_iq: usize,
    /// Next trace position to fetch.
    pub(crate) next_pos: usize,
    /// Frontend redirect stall: no rename until this tick.
    pub(crate) frontend_stall_until: u64,
    /// Unresolved mispredicted branch blocking fetch, if any.
    pub(crate) branch_stall: Option<Seq>,
    /// Current tick (helper cycles).
    pub(crate) tick: u64,
    /// Current wide cycle.
    pub(crate) cycles: u64,
    /// Hard cycle bound so a modelling bug can never hang the caller.
    pub(crate) max_cycles: u64,
    /// NREADY imbalance accumulator.
    pub(crate) nready: NReadyAccumulator,
    /// Statistics under construction for the current run.
    pub(crate) stats: SimStats,
    /// Trace µops retired so far (the run's termination condition).
    pub(crate) committed_trace_uops: usize,
    /// Trace length of the current run (captured so the lane itself knows
    /// when it has drained).
    pub(crate) trace_len: usize,
}

impl ExecContext {
    /// Create an empty context.  Buffers grow on first use and are kept for
    /// every later run.
    pub fn new() -> ExecContext {
        ExecContext {
            entries: Vec::new(),
            ctl: Vec::new(),
            dep_head: Vec::new(),
            dep_pool: Vec::new(),
            rob: VecDeque::new(),
            stores: VecDeque::new(),
            events: EventWheel::new(),
            event_scratch: Vec::new(),
            select_scratch: Vec::new(),
            ready: ReadyQueues::default(),
            forced_wide: BitSet::new(),
            steer_sources: Vec::new(),
            seq_scratch: Vec::new(),
            mem: MemoryHierarchy::new(&SimConfig::default()),
            branch_pred: BranchPredictor::default(),
            rename_map: [None; NUM_ARCH_REGS],
            flags_map: None,
            arch_loc: [Cluster::Wide; NUM_ARCH_REGS],
            arch_replicated: [false; NUM_ARCH_REGS],
            arch_narrow: [false; NUM_ARCH_REGS],
            flags_loc: Cluster::Wide,
            copy_epoch: 1,
            wide_int_iq: 0,
            wide_fp_iq: 0,
            helper_iq: 0,
            next_pos: 0,
            frontend_stall_until: 0,
            branch_stall: None,
            tick: 0,
            cycles: 0,
            max_cycles: 0,
            nready: NReadyAccumulator::new(4096),
            stats: SimStats::default(),
            committed_trace_uops: 0,
            trace_len: 0,
        }
    }

    /// Return the arena buffers to a cold state for a run of `trace` under
    /// `cfg`, keeping every allocation.
    #[cfg(test)]
    pub(crate) fn prepare(&mut self, cfg: &SimConfig, trace: &Trace) {
        self.prepare_parts(cfg, trace.len());
    }

    /// [`ExecContext::prepare`] from a bare µop count — what streaming runs
    /// use, where the length is known from the source header but no
    /// materialized [`Trace`] exists.
    pub(crate) fn prepare_parts(&mut self, cfg: &SimConfig, trace_len: usize) {
        self.entries.clear();
        self.ctl.clear();
        self.dep_head.clear();
        self.dep_pool.clear();
        let want = trace_len + trace_len / 2;
        self.entries.reserve(want);
        self.ctl.reserve(want);
        self.dep_head.reserve(want);
        self.rob.clear();
        self.stores.clear();
        self.events.reset();
        self.events
            .ensure_horizon(cfg.worst_case_completion_ticks());
        self.event_scratch.clear();
        self.select_scratch.clear();
        self.ready.reset();
        self.forced_wide.reset(trace_len);
        self.steer_sources.clear();
        self.seq_scratch.clear();
        if self.mem.matches(cfg) {
            self.mem.reset();
        } else {
            self.mem = MemoryHierarchy::new(cfg);
        }
        self.branch_pred.reset();
    }

    /// Return the whole context — arenas *and* machine state — to the cold
    /// state a fresh run starts from, keeping every allocation.  After this
    /// the lane can be stepped wide cycle by wide cycle until
    /// [`ExecContext::run_done`].
    pub(crate) fn begin_run(&mut self, cfg: &SimConfig, trace: &Trace, policy_name: &str) {
        self.begin_run_parts(cfg, &trace.name, trace.len(), policy_name);
    }

    /// [`ExecContext::begin_run`] from header parts (name + µop count) — the
    /// streaming entry point, bit-identical to `begin_run` over a
    /// materialized trace with the same name and length.
    pub(crate) fn begin_run_parts(
        &mut self,
        cfg: &SimConfig,
        trace_name: &str,
        trace_len: usize,
        policy_name: &str,
    ) {
        self.prepare_parts(cfg, trace_len);
        self.rename_map = [None; NUM_ARCH_REGS];
        self.flags_map = None;
        self.arch_loc = [Cluster::Wide; NUM_ARCH_REGS];
        self.arch_replicated = [false; NUM_ARCH_REGS];
        self.arch_narrow = [false; NUM_ARCH_REGS];
        self.flags_loc = Cluster::Wide;
        self.copy_epoch = 1; // entries start at epoch 0 = "no cached copies"
        self.wide_int_iq = 0;
        self.wide_fp_iq = 0;
        self.helper_iq = 0;
        self.next_pos = 0;
        self.frontend_stall_until = 0;
        self.branch_stall = None;
        self.tick = 0;
        self.cycles = 0;
        // Hard bound so a modelling bug can never hang the caller.
        self.max_cycles = (trace_len as u64 + 1_000) * 600;
        self.nready = NReadyAccumulator::new(4096);
        self.stats = SimStats {
            policy: policy_name.to_string(),
            trace: trace_name.to_string(),
            ..SimStats::default()
        };
        self.committed_trace_uops = 0;
        self.trace_len = trace_len;
    }

    /// Whether the current run has retired its whole trace (or hit the
    /// safety cycle bound).
    pub(crate) fn run_done(&self) -> bool {
        self.committed_trace_uops >= self.trace_len || self.cycles >= self.max_cycles
    }

    /// Finalize and take the current run's statistics.
    pub(crate) fn take_stats(&mut self) -> SimStats {
        debug_assert!(
            self.committed_trace_uops >= self.trace_len,
            "simulation did not retire the whole trace within the cycle bound"
        );
        let mut stats = std::mem::take(&mut self.stats);
        stats.cycles = self.cycles;
        stats.ticks = self.tick;
        stats.imbalance = self.nready.stats();
        stats.dl0 = self.mem.dl0_stats();
        stats.ul1 = self.mem.ul1_stats();
        stats.energy.dl0_accesses = stats.dl0.accesses;
        stats.energy.ul1_accesses = stats.ul1.accesses;
        stats
    }
}

impl Default for ExecContext {
    fn default() -> ExecContext {
        ExecContext::new()
    }
}

/// The per-cluster ready queues: alive, `Ready`, not-yet-issued entries in
/// ascending sequence order, indexed `[cluster][is_fp]`.
///
/// Because the reorder buffer holds sequence numbers in ascending dispatch
/// order, walking a merged (int + fp) view of a cluster's queues visits
/// ready entries in **exactly the order the old O(window) ROB scan
/// encountered them** — the select loop's results are bit-identical, it
/// just skips the non-ready window entries the scan used to step over.
#[derive(Debug, Clone, Default)]
pub(crate) struct ReadyQueues {
    queues: [[Vec<Seq>; 2]; 2],
}

impl ReadyQueues {
    fn reset(&mut self) {
        for cluster in &mut self.queues {
            for queue in cluster {
                queue.clear();
            }
        }
    }

    /// Number of ready entries of one (cluster, is_fp) class.
    pub(crate) fn count(&self, cluster: Cluster, is_fp: bool) -> usize {
        self.queues[cluster.index()][is_fp as usize].len()
    }

    /// Record that `seq` became ready.  Newly dispatched µops carry the
    /// highest sequence so far (append); dependence wakeups can ready an
    /// older entry than some already-ready younger one (sorted insert).
    pub(crate) fn insert(&mut self, cluster: Cluster, is_fp: bool, seq: Seq) {
        let queue = &mut self.queues[cluster.index()][is_fp as usize];
        match queue.last() {
            Some(&last) if last > seq => {
                let at = queue.partition_point(|&s| s < seq);
                queue.insert(at, seq);
            }
            _ => queue.push(seq),
        }
    }

    /// Remove `seq` from one queue (it issued or was squashed).
    pub(crate) fn remove(&mut self, cluster: Cluster, is_fp: bool, seq: Seq) {
        let queue = &mut self.queues[cluster.index()][is_fp as usize];
        if let Ok(at) = queue.binary_search(&seq) {
            queue.remove(at);
        }
    }

    /// Drop every queued entry `predicate` rejects — the recovery path's
    /// bulk removal after a flush squashes a suffix of the window.
    pub(crate) fn retain(&mut self, mut predicate: impl FnMut(Seq) -> bool) {
        for cluster in &mut self.queues {
            for queue in cluster {
                queue.retain(|&s| predicate(s));
            }
        }
    }

    /// Merge one cluster's int + fp queues into `out`, ascending by seq —
    /// the select loop's walk order.
    pub(crate) fn merged(&self, cluster: Cluster, out: &mut Vec<Seq>) {
        out.clear();
        let ints = &self.queues[cluster.index()][0];
        let fps = &self.queues[cluster.index()][1];
        if fps.is_empty() {
            out.extend_from_slice(ints);
            return;
        }
        let (mut i, mut f) = (0, 0);
        while i < ints.len() && f < fps.len() {
            if ints[i] < fps[f] {
                out.push(ints[i]);
                i += 1;
            } else {
                out.push(fps[f]);
                f += 1;
            }
        }
        out.extend_from_slice(&ints[i..]);
        out.extend_from_slice(&fps[f..]);
    }
}

/// A cycle-bucketed event wheel: completion events land in the bucket of
/// their due tick and are drained exactly at that tick, replacing the old
/// `BinaryHeap<Reverse<(tick, Seq)>>`.  Draining sorts the (tiny) due set by
/// sequence number, reproducing the heap's `(tick, seq)` pop order exactly.
#[derive(Debug, Clone)]
pub(crate) struct EventWheel {
    buckets: Vec<Vec<(u64, Seq)>>,
    pending: usize,
}

impl EventWheel {
    fn new() -> EventWheel {
        EventWheel {
            buckets: vec![Vec::new(); DEFAULT_WHEEL_BUCKETS],
            pending: 0,
        }
    }

    fn reset(&mut self) {
        if self.pending > 0 {
            for bucket in &mut self.buckets {
                bucket.clear();
            }
            self.pending = 0;
        }
    }

    /// Number of ticks of look-ahead the wheel covers without a bucket
    /// collision.  Always a power of two.
    pub(crate) fn horizon(&self) -> u64 {
        self.buckets.len() as u64
    }

    /// Grow the wheel (to the next power of two) until `worst_case_ticks`
    /// of look-ahead fit without wrapping.  Growth is config-driven and
    /// sticky — a context reused across scenario machines keeps the largest
    /// horizon it has seen, so steady-state runs never reallocate.
    pub(crate) fn ensure_horizon(&mut self, worst_case_ticks: u64) {
        debug_assert_eq!(self.pending, 0, "resize only between runs");
        let needed = (worst_case_ticks + 1)
            .next_power_of_two()
            .max(DEFAULT_WHEEL_BUCKETS as u64) as usize;
        if needed > self.buckets.len() {
            self.buckets.resize(needed, Vec::new());
        }
    }

    /// Schedule `seq` to complete at tick `due`.
    ///
    /// The caller (the issue stage) guarantees `due` is less than one wheel
    /// revolution ahead of the current tick — [`SimConfig::validate`]
    /// rejects configurations whose worst-case completion latency could
    /// wrap the wheel, and `ensure_horizon` sizes it to the config.  A
    /// colliding *future* event would still be handled correctly (it stays
    /// in place until its due tick), it is just slower; the debug assertion
    /// at the issue site keeps the invariant honest.
    pub(crate) fn push(&mut self, due: u64, seq: Seq) {
        let mask = self.buckets.len() - 1;
        self.buckets[due as usize & mask].push((due, seq));
        self.pending += 1;
    }

    /// Move every event due at `now` into `out`, sorted by sequence number.
    /// The wheel is drained every tick, so an event's bucket is always
    /// visited exactly at its due tick; events a full wheel revolution in
    /// the future (only reachable by bypassing [`SimConfig::validate`])
    /// stay in place until their turn.
    pub(crate) fn drain_due(&mut self, now: u64, out: &mut Vec<Seq>) {
        out.clear();
        if self.pending == 0 {
            return;
        }
        let mask = self.buckets.len() - 1;
        let bucket = &mut self.buckets[now as usize & mask];
        if bucket.iter().all(|&(due, _)| due == now) {
            out.extend(bucket.drain(..).map(|(_, seq)| seq));
        } else {
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].0 <= now {
                    out.push(bucket.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
        }
        self.pending -= out.len();
        out.sort_unstable();
    }
}

/// A dense bitset over trace positions, replacing the old
/// `HashSet<usize>` for `forced_wide` with two instructions per query.
#[derive(Debug, Clone, Default)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new() -> BitSet {
        BitSet::default()
    }

    /// Clear and resize to cover `bits` positions, keeping the allocation.
    fn reset(&mut self, bits: usize) {
        self.words.clear();
        self.words.resize(bits.div_ceil(64), 0);
    }

    pub(crate) fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    pub(crate) fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_inserts_and_queries() {
        let mut b = BitSet::new();
        b.reset(130);
        assert!(!b.contains(0));
        b.insert(0);
        b.insert(64);
        b.insert(129);
        assert!(b.contains(0));
        assert!(b.contains(64));
        assert!(b.contains(129));
        assert!(!b.contains(1));
        b.reset(130);
        assert!(!b.contains(64), "reset must clear previous bits");
    }

    #[test]
    fn wheel_drains_in_seq_order_at_the_due_tick() {
        let mut w = EventWheel::new();
        let mut out = Vec::new();
        w.push(5, 9);
        w.push(5, 3);
        w.push(6, 1);
        w.drain_due(4, &mut out);
        assert!(out.is_empty());
        w.drain_due(5, &mut out);
        assert_eq!(out, vec![3, 9]);
        w.drain_due(6, &mut out);
        assert_eq!(out, vec![1]);
        w.drain_due(7, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn wheel_keeps_colliding_future_events() {
        let mut w = EventWheel::new();
        let mut out = Vec::new();
        // Same bucket (one revolution apart), different due ticks: reachable
        // only by bypassing config validation, but still handled exactly.
        let horizon = w.horizon();
        w.push(10, 1);
        w.push(10 + horizon, 2);
        w.drain_due(10, &mut out);
        assert_eq!(out, vec![1]);
        w.drain_due(10 + horizon, &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn wheel_grows_to_cover_long_latencies() {
        let mut w = EventWheel::new();
        assert_eq!(w.horizon(), DEFAULT_WHEEL_BUCKETS as u64);
        w.ensure_horizon(3_000);
        assert_eq!(w.horizon(), 4_096, "next power of two covering 3000");
        // Sticky: a smaller config does not shrink the wheel.
        w.ensure_horizon(10);
        assert_eq!(w.horizon(), 4_096);
        let mut out = Vec::new();
        w.push(3_000, 7);
        w.drain_due(3_000, &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn ready_queues_iterate_in_seq_order() {
        let mut r = ReadyQueues::default();
        r.insert(Cluster::Wide, false, 5);
        r.insert(Cluster::Wide, false, 2); // wakeup out of order
        r.insert(Cluster::Wide, true, 3);
        r.insert(Cluster::Helper, false, 1);
        let mut out = Vec::new();
        r.merged(Cluster::Wide, &mut out);
        assert_eq!(out, vec![2, 3, 5]);
        r.merged(Cluster::Helper, &mut out);
        assert_eq!(out, vec![1]);
        assert_eq!(r.count(Cluster::Wide, false), 2);
        r.remove(Cluster::Wide, false, 2);
        r.merged(Cluster::Wide, &mut out);
        assert_eq!(out, vec![3, 5]);
        r.retain(|s| s != 3);
        r.merged(Cluster::Wide, &mut out);
        assert_eq!(out, vec![5]);
    }

    #[test]
    fn context_prepare_is_idempotent() {
        use hc_trace::{KernelKind, WorkloadProfile};
        let trace = WorkloadProfile::new("ctx-test", vec![(KernelKind::WordSum, 1.0)])
            .with_trace_len(500)
            .generate();
        let cfg = SimConfig::paper_baseline();
        let mut ctx = ExecContext::new();
        ctx.prepare(&cfg, &trace);
        ctx.entries.push(Inflight::new(
            0,
            crate::rob::Role::Trace { pos: 0 },
            trace.uops[0],
        ));
        ctx.ctl
            .push(UopCtl::new(crate::steer::Cluster::Wide, false));
        ctx.events.push(3, 0);
        ctx.prepare(&cfg, &trace);
        assert!(ctx.entries.is_empty());
        assert!(ctx.ctl.is_empty());
        assert_eq!(ctx.events.pending, 0);
    }
}
