//! The reusable per-run execution arena: every piece of mutable simulator
//! state whose allocation can outlive a single [`Simulator::run_with`] call.
//!
//! A [`ExecContext`] owns the in-flight window slab, the dependence-link
//! arena, the reorder buffer, the cycle-bucketed event wheel, the
//! `forced_wide` bitset, the reused memory hierarchy and branch predictor,
//! and assorted scratch buffers.  Its `prepare` step returns all of it
//! to a cold state *without releasing allocations*, which is what makes the
//! staged engine's hot loop allocation-free in steady state: a campaign
//! worker thread allocates one context and replays every grid cell through
//! it.
//!
//! [`Simulator::run_with`]: crate::exec::Simulator::run_with

use crate::cache::MemoryHierarchy;
use crate::config::SimConfig;
use crate::rob::{Inflight, Seq};
use crate::steer::SourceWidthInfo;
use hc_predictors::BranchPredictor;
use hc_trace::Trace;
use std::collections::VecDeque;

/// Sentinel for "no link" in the dependence arena.
pub(crate) const NO_LINK: usize = usize::MAX;

/// Number of buckets in the event wheel.  Larger than the longest event
/// latency of the paper configuration (a main-memory load is under 1000
/// ticks), so bucket collisions essentially never happen; correctness does
/// not depend on it (colliding future events are simply left in place).
const WHEEL_BUCKETS: usize = 1024;

/// Reusable per-run simulator state.  Create once (per worker thread) and
/// pass to [`Simulator::run_with`] for every run; each run starts from a
/// cold machine state but reuses every allocation of the previous one.
///
/// [`Simulator::run_with`]: crate::exec::Simulator::run_with
#[derive(Debug, Clone)]
pub struct ExecContext {
    /// Dense in-flight window slab, indexed by [`Seq`].
    pub(crate) entries: Vec<Inflight>,
    /// Head of each entry's dependents chain in [`ExecContext::dep_pool`]
    /// (`NO_LINK` = no dependents).  Parallel to `entries`.
    pub(crate) dep_head: Vec<usize>,
    /// Arena of `(consumer, next)` dependence links: the index-vector
    /// replacement for the old per-entry `Vec<Seq>` dependents lists.
    pub(crate) dep_pool: Vec<(Seq, usize)>,
    /// The reorder buffer (sequence numbers in dispatch order).
    pub(crate) rob: VecDeque<Seq>,
    /// In-flight store sequence numbers in dispatch (= age) order: the MOB's
    /// index, so the load ordering check scans stores only, not the whole
    /// window.  Squashed stores are skipped lazily and dropped at the next
    /// store retirement.
    pub(crate) stores: VecDeque<Seq>,
    /// Cycle-bucketed completion-event wheel.
    pub(crate) events: EventWheel,
    /// Scratch for draining one tick's due events.
    pub(crate) event_scratch: Vec<Seq>,
    /// Trace positions forced to the wide cluster after a fatal width
    /// misprediction, as a dense bitset over trace positions.
    pub(crate) forced_wide: BitSet,
    /// Scratch for the steer-context source list, reclaimed after every
    /// policy call so rename never allocates per µop.
    pub(crate) steer_sources: Vec<SourceWidthInfo>,
    /// Scratch sequence buffer for flush recovery.
    pub(crate) seq_scratch: Vec<Seq>,
    /// Reused data-memory hierarchy (rebuilt only when the cache geometry
    /// changes between runs, reset otherwise).
    pub(crate) mem: MemoryHierarchy,
    /// Reused branch predictor (reset to untrained between runs).
    pub(crate) branch_pred: BranchPredictor,
}

impl ExecContext {
    /// Create an empty context.  Buffers grow on first use and are kept for
    /// every later run.
    pub fn new() -> ExecContext {
        ExecContext {
            entries: Vec::new(),
            dep_head: Vec::new(),
            dep_pool: Vec::new(),
            rob: VecDeque::new(),
            stores: VecDeque::new(),
            events: EventWheel::new(),
            event_scratch: Vec::new(),
            forced_wide: BitSet::new(),
            steer_sources: Vec::new(),
            seq_scratch: Vec::new(),
            mem: MemoryHierarchy::new(&SimConfig::default()),
            branch_pred: BranchPredictor::default(),
        }
    }

    /// Return the context to a cold state for a run of `trace` under `cfg`,
    /// keeping every allocation.
    pub(crate) fn prepare(&mut self, cfg: &SimConfig, trace: &Trace) {
        self.entries.clear();
        self.dep_head.clear();
        self.dep_pool.clear();
        let want = trace.len() + trace.len() / 2;
        self.entries.reserve(want);
        self.dep_head.reserve(want);
        self.rob.clear();
        self.stores.clear();
        self.events.reset();
        self.event_scratch.clear();
        self.forced_wide.reset(trace.len());
        self.steer_sources.clear();
        self.seq_scratch.clear();
        if self.mem.matches(cfg) {
            self.mem.reset();
        } else {
            self.mem = MemoryHierarchy::new(cfg);
        }
        self.branch_pred.reset();
    }
}

impl Default for ExecContext {
    fn default() -> ExecContext {
        ExecContext::new()
    }
}

/// A cycle-bucketed event wheel: completion events land in the bucket of
/// their due tick and are drained exactly at that tick, replacing the old
/// `BinaryHeap<Reverse<(tick, Seq)>>`.  Draining sorts the (tiny) due set by
/// sequence number, reproducing the heap's `(tick, seq)` pop order exactly.
#[derive(Debug, Clone)]
pub(crate) struct EventWheel {
    buckets: Vec<Vec<(u64, Seq)>>,
    pending: usize,
}

impl EventWheel {
    fn new() -> EventWheel {
        EventWheel {
            buckets: vec![Vec::new(); WHEEL_BUCKETS],
            pending: 0,
        }
    }

    fn reset(&mut self) {
        if self.pending > 0 {
            for bucket in &mut self.buckets {
                bucket.clear();
            }
            self.pending = 0;
        }
    }

    /// Schedule `seq` to complete at tick `due`.
    pub(crate) fn push(&mut self, due: u64, seq: Seq) {
        self.buckets[due as usize % WHEEL_BUCKETS].push((due, seq));
        self.pending += 1;
    }

    /// Move every event due at `now` into `out`, sorted by sequence number.
    /// The wheel is drained every tick, so an event's bucket is always
    /// visited exactly at its due tick; events a full wheel revolution in
    /// the future (only possible for configurations with latencies beyond
    /// [`WHEEL_BUCKETS`] ticks) stay in place until their turn.
    pub(crate) fn drain_due(&mut self, now: u64, out: &mut Vec<Seq>) {
        out.clear();
        if self.pending == 0 {
            return;
        }
        let bucket = &mut self.buckets[now as usize % WHEEL_BUCKETS];
        if bucket.iter().all(|&(due, _)| due == now) {
            out.extend(bucket.drain(..).map(|(_, seq)| seq));
        } else {
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].0 <= now {
                    out.push(bucket.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
        }
        self.pending -= out.len();
        out.sort_unstable();
    }
}

/// A dense bitset over trace positions, replacing the old
/// `HashSet<usize>` for `forced_wide` with two instructions per query.
#[derive(Debug, Clone, Default)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new() -> BitSet {
        BitSet::default()
    }

    /// Clear and resize to cover `bits` positions, keeping the allocation.
    fn reset(&mut self, bits: usize) {
        self.words.clear();
        self.words.resize(bits.div_ceil(64), 0);
    }

    pub(crate) fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    pub(crate) fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_inserts_and_queries() {
        let mut b = BitSet::new();
        b.reset(130);
        assert!(!b.contains(0));
        b.insert(0);
        b.insert(64);
        b.insert(129);
        assert!(b.contains(0));
        assert!(b.contains(64));
        assert!(b.contains(129));
        assert!(!b.contains(1));
        b.reset(130);
        assert!(!b.contains(64), "reset must clear previous bits");
    }

    #[test]
    fn wheel_drains_in_seq_order_at_the_due_tick() {
        let mut w = EventWheel::new();
        let mut out = Vec::new();
        w.push(5, 9);
        w.push(5, 3);
        w.push(6, 1);
        w.drain_due(4, &mut out);
        assert!(out.is_empty());
        w.drain_due(5, &mut out);
        assert_eq!(out, vec![3, 9]);
        w.drain_due(6, &mut out);
        assert_eq!(out, vec![1]);
        w.drain_due(7, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn wheel_keeps_colliding_future_events() {
        let mut w = EventWheel::new();
        let mut out = Vec::new();
        // Same bucket (1024 apart), different due ticks.
        w.push(10, 1);
        w.push(10 + WHEEL_BUCKETS as u64, 2);
        w.drain_due(10, &mut out);
        assert_eq!(out, vec![1]);
        w.drain_due(10 + WHEEL_BUCKETS as u64, &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn context_prepare_is_idempotent() {
        use hc_trace::{KernelKind, WorkloadProfile};
        let trace = WorkloadProfile::new("ctx-test", vec![(KernelKind::WordSum, 1.0)])
            .with_trace_len(500)
            .generate();
        let cfg = SimConfig::paper_baseline();
        let mut ctx = ExecContext::new();
        ctx.prepare(&cfg, &trace);
        ctx.entries.push(Inflight::new(
            0,
            crate::rob::Role::Trace { pos: 0 },
            trace.uops[0],
            crate::steer::Cluster::Wide,
        ));
        ctx.events.push(3, 0);
        ctx.prepare(&cfg, &trace);
        assert!(ctx.entries.is_empty());
        assert_eq!(ctx.events.pending, 0);
    }
}
