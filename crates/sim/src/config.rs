//! Simulator configuration — Table 1 of the paper plus the helper-cluster
//! parameters of §2 — and the typed [`ConfigError`] produced when a
//! configuration is rejected.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Helper datapath widths the execution model supports: the paper's 8-bit
/// design point plus the half- and double-width sensitivity neighbours.
pub const SUPPORTED_HELPER_WIDTHS: [u32; 3] = [4, 8, 16];

/// Largest helper clock ratio the tick-based clocking model accepts.  Beyond
/// this every wide-cycle latency times out the cycle-bucketed event wheel
/// (and no silicon ships a 64× faster narrow backend anyway).
pub const MAX_HELPER_CLOCK_RATIO: u32 = 64;

/// Largest worst-case completion latency (in ticks) a configuration may
/// produce.  The execution engine's event wheel is sized at run start to the
/// next power of two covering [`SimConfig::worst_case_completion_ticks`], so
/// this cap bounds the wheel at 2²⁰ buckets (~24 MB of empty buckets per
/// lane at the extreme — the paper machine needs 2¹⁰); a configuration whose
/// single longest µop latency exceeds a million helper cycles is a typo, not
/// a machine.
pub const MAX_COMPLETION_LATENCY_TICKS: u64 = 1 << 20;

/// Why a [`SimConfig`] was rejected by [`SimConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfigError {
    /// One of `fetch_width`, `rename_width` or `commit_width` is zero.
    ZeroFrontendWidth,
    /// The reorder buffer cannot hold one full commit group.
    RobSmallerThanCommitGroup {
        /// Configured ROB entries.
        rob_entries: usize,
        /// Configured commit width.
        commit_width: usize,
    },
    /// A cache line size is not a power of two.
    CacheLineNotPowerOfTwo {
        /// Offending line size in bytes.
        line_bytes: u32,
    },
    /// A cache's size, associativity and line size do not produce a non-zero
    /// power-of-two set count (the index function needs one).
    CacheGeometryNotPowerOfTwo {
        /// Configured capacity in bytes.
        size_bytes: u32,
        /// Configured associativity.
        ways: u32,
        /// Configured line size in bytes.
        line_bytes: u32,
    },
    /// The helper cluster is enabled with a clock ratio of zero.
    ZeroHelperClockRatio,
    /// The helper clock ratio exceeds [`MAX_HELPER_CLOCK_RATIO`]: wide-cycle
    /// latencies expressed in ticks would overflow the clocking model's
    /// event-wheel horizon.
    HelperClockRatioTooLarge {
        /// Configured ratio.
        ratio: u32,
        /// Largest supported ratio.
        max: u32,
    },
    /// The helper datapath width is not one of
    /// [`SUPPORTED_HELPER_WIDTHS`]; the narrowness detectors and the IR
    /// split-chunk machinery only model widths that divide 32 evenly.
    UnsupportedHelperWidth {
        /// Configured width in bits.
        width_bits: u32,
    },
    /// The worst-case completion latency of a single µop (a full cache-miss
    /// load at the configured clock ratio) exceeds
    /// [`MAX_COMPLETION_LATENCY_TICKS`]: the event wheel cannot be sized to
    /// cover the configuration's scheduling horizon.
    CompletionLatencyBeyondHorizon {
        /// The configuration's worst-case single-µop latency in ticks.
        worst_case_ticks: u64,
        /// The supported maximum.
        max: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroFrontendWidth => {
                write!(f, "frontend/commit widths must be non-zero")
            }
            ConfigError::RobSmallerThanCommitGroup {
                rob_entries,
                commit_width,
            } => write!(
                f,
                "ROB must hold at least one commit group ({rob_entries} entries < commit width {commit_width})"
            ),
            ConfigError::CacheLineNotPowerOfTwo { line_bytes } => {
                write!(f, "cache line sizes must be powers of two (got {line_bytes})")
            }
            ConfigError::CacheGeometryNotPowerOfTwo {
                size_bytes,
                ways,
                line_bytes,
            } => write!(
                f,
                "cache geometry {size_bytes}B / {ways}-way / {line_bytes}B lines does not \
                 yield a power-of-two set count"
            ),
            ConfigError::ZeroHelperClockRatio => {
                write!(f, "helper clock ratio must be at least 1")
            }
            ConfigError::HelperClockRatioTooLarge { ratio, max } => {
                write!(f, "helper clock ratio {ratio} exceeds the supported maximum {max}")
            }
            ConfigError::UnsupportedHelperWidth { width_bits } => write!(
                f,
                "helper datapath width {width_bits} is unsupported (must be one of {SUPPORTED_HELPER_WIDTHS:?})"
            ),
            ConfigError::CompletionLatencyBeyondHorizon {
                worst_case_ticks,
                max,
            } => write!(
                f,
                "worst-case completion latency of {worst_case_ticks} ticks exceeds the \
                 event-wheel horizon cap of {max} (check memory/functional-unit latencies \
                 against the helper clock ratio)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Cache geometry and latency for one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (ways).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Access latency in wide-cluster cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u32 {
        (self.size_bytes / (self.ways * self.line_bytes)).max(1)
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Level-1 data cache (DL0 in the paper: 32KB, 8-way, 3 cycles).
    pub dl0: CacheConfig,
    /// Level-2 cache (UL1: 4MB, 16-way, 13 cycles).
    pub ul1: CacheConfig,
    /// Main memory latency in wide cycles (450 in Table 1).
    pub memory_latency: u32,
    /// Integer scheduler (issue queue) entries per cluster (32 in Table 1).
    pub int_iq_entries: usize,
    /// Integer issue width per cluster per *its own* cycle (3 in Table 1).
    pub int_issue_width: usize,
    /// FP scheduler entries (wide cluster only).
    pub fp_iq_entries: usize,
    /// FP issue width (wide cluster only).
    pub fp_issue_width: usize,
    /// Commit width in µops per wide cycle (6 in Table 1).
    pub commit_width: usize,
    /// Rename/dispatch width in µops per wide cycle.
    pub rename_width: usize,
    /// Fetch width in µops per wide cycle (trace cache delivery).
    pub fetch_width: usize,
    /// Reorder buffer entries.
    pub rob_entries: usize,
    /// Whether the helper cluster exists at all (false = monolithic baseline).
    pub helper_enabled: bool,
    /// Helper cluster datapath width in bits (8 in the paper).
    pub helper_width_bits: u32,
    /// Helper-cluster clock multiplier relative to the wide cluster (2 in §2.2).
    pub helper_clock_ratio: u32,
    /// Helper cluster integer issue width per *helper* cycle.
    pub helper_issue_width: usize,
    /// Helper cluster issue-queue entries.
    pub helper_iq_entries: usize,
    /// Latency of an inter-cluster copy µop in helper ticks (half wide
    /// cycles), once its source is ready: the transfer plus the write into the
    /// consumer's register file over the synchronised inter-cluster bypass.
    pub copy_latency: u32,
    /// Branch misprediction frontend redirect penalty in wide cycles.
    pub branch_mispredict_penalty: u32,
    /// Width (fatal) misprediction flush penalty in wide cycles.
    pub width_flush_penalty: u32,
    /// Integer multiply latency in wide cycles.
    pub mul_latency: u32,
    /// Integer divide latency in wide cycles.
    pub div_latency: u32,
    /// FP operation latency in wide cycles.
    pub fp_latency: u32,
    /// Store-to-load forwarding latency in wide cycles.
    pub forward_latency: u32,
}

impl SimConfig {
    /// The baseline processor parameters of Table 1, with the §2 helper
    /// cluster attached (8 bits wide, clocked 2×).
    pub fn paper_baseline() -> SimConfig {
        SimConfig {
            dl0: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                line_bytes: 64,
                latency: 3,
            },
            ul1: CacheConfig {
                size_bytes: 4 * 1024 * 1024,
                ways: 16,
                line_bytes: 64,
                latency: 13,
            },
            memory_latency: 450,
            int_iq_entries: 32,
            int_issue_width: 3,
            fp_iq_entries: 32,
            fp_issue_width: 3,
            commit_width: 6,
            rename_width: 6,
            fetch_width: 6,
            rob_entries: 128,
            helper_enabled: true,
            helper_width_bits: 8,
            helper_clock_ratio: 2,
            helper_issue_width: 3,
            helper_iq_entries: 32,
            copy_latency: 1,
            branch_mispredict_penalty: 10,
            width_flush_penalty: 4,
            mul_latency: 4,
            div_latency: 20,
            fp_latency: 4,
            forward_latency: 1,
        }
    }

    /// The monolithic baseline: identical frontend and wide backend, no helper
    /// cluster (the comparison point for every speedup in the paper).
    pub fn monolithic_baseline() -> SimConfig {
        SimConfig {
            helper_enabled: false,
            ..SimConfig::paper_baseline()
        }
    }

    /// Number of helper ticks per wide cycle.
    pub fn ticks_per_wide_cycle(&self) -> u64 {
        self.helper_clock_ratio.max(1) as u64
    }

    /// Convert a latency expressed in wide cycles to ticks.
    pub fn wide_cycles_to_ticks(&self, cycles: u32) -> u64 {
        cycles as u64 * self.ticks_per_wide_cycle()
    }

    /// The helper datapath width the narrowness detectors check against.
    pub fn narrow_bits(&self) -> u32 {
        self.helper_width_bits
    }

    /// Number of chunks the IR scheme splits a wide (32-bit) instruction
    /// into: one per helper-datapath slice (4 at the paper's 8-bit design
    /// point, 2 at 16 bits, 8 at 4 bits).
    pub fn split_chunks(&self) -> usize {
        (32 / self.helper_width_bits.clamp(1, 32)) as usize
    }

    /// Worst-case completion latency of a single µop in ticks: the upper
    /// bound on how far ahead of the current tick the issue stage can ever
    /// schedule a completion event.  The execution engine sizes its event
    /// wheel to cover this, so no reachable latency wraps a wheel bucket.
    ///
    /// The bound is a wide-cluster µop's own issue cycle plus the longest
    /// latency class — a load missing every cache level (`dl0 + ul1 + main
    /// memory`, the levels are additive on a full miss) or the slowest
    /// functional unit — converted to ticks at the configured clock ratio.
    pub fn worst_case_completion_ticks(&self) -> u64 {
        let own_cycle = self.ticks_per_wide_cycle();
        let full_miss =
            self.dl0.latency as u64 + self.ul1.latency as u64 + self.memory_latency as u64;
        let slowest_unit = (self.mul_latency as u64)
            .max(self.div_latency as u64)
            .max(self.fp_latency as u64)
            .max(self.forward_latency as u64);
        let longest_wide_cycles = full_miss.max(slowest_unit);
        let copy = (self.copy_latency as u64).max(1);
        (own_cycle + longest_wide_cycles.saturating_mul(own_cycle)).max(copy)
    }

    /// Basic sanity validation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.commit_width == 0 || self.rename_width == 0 || self.fetch_width == 0 {
            return Err(ConfigError::ZeroFrontendWidth);
        }
        if self.rob_entries < self.commit_width {
            return Err(ConfigError::RobSmallerThanCommitGroup {
                rob_entries: self.rob_entries,
                commit_width: self.commit_width,
            });
        }
        for cache in [&self.dl0, &self.ul1] {
            if !cache.line_bytes.is_power_of_two() {
                return Err(ConfigError::CacheLineNotPowerOfTwo {
                    line_bytes: cache.line_bytes,
                });
            }
            // The index function needs a non-zero power-of-two set count:
            // capacity must divide evenly into power-of-two-many sets.
            let geometry_error = ConfigError::CacheGeometryNotPowerOfTwo {
                size_bytes: cache.size_bytes,
                ways: cache.ways,
                line_bytes: cache.line_bytes,
            };
            if cache.ways == 0 {
                return Err(geometry_error);
            }
            let way_bytes = cache.ways * cache.line_bytes;
            if cache.size_bytes == 0
                || cache.size_bytes % way_bytes != 0
                || !(cache.size_bytes / way_bytes).is_power_of_two()
            {
                return Err(geometry_error);
            }
        }
        if self.helper_enabled {
            if self.helper_clock_ratio == 0 {
                return Err(ConfigError::ZeroHelperClockRatio);
            }
            if self.helper_clock_ratio > MAX_HELPER_CLOCK_RATIO {
                return Err(ConfigError::HelperClockRatioTooLarge {
                    ratio: self.helper_clock_ratio,
                    max: MAX_HELPER_CLOCK_RATIO,
                });
            }
            if !SUPPORTED_HELPER_WIDTHS.contains(&self.helper_width_bits) {
                return Err(ConfigError::UnsupportedHelperWidth {
                    width_bits: self.helper_width_bits,
                });
            }
        }
        let worst_case_ticks = self.worst_case_completion_ticks();
        if worst_case_ticks > MAX_COMPLETION_LATENCY_TICKS {
            return Err(ConfigError::CompletionLatencyBeyondHorizon {
                worst_case_ticks,
                max: MAX_COMPLETION_LATENCY_TICKS,
            });
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_baseline_matches_table_1() {
        let c = SimConfig::paper_baseline();
        assert_eq!(c.dl0.size_bytes, 32 * 1024);
        assert_eq!(c.dl0.ways, 8);
        assert_eq!(c.dl0.latency, 3);
        assert_eq!(c.ul1.size_bytes, 4 * 1024 * 1024);
        assert_eq!(c.ul1.ways, 16);
        assert_eq!(c.ul1.latency, 13);
        assert_eq!(c.memory_latency, 450);
        assert_eq!(c.int_iq_entries, 32);
        assert_eq!(c.int_issue_width, 3);
        assert_eq!(c.fp_iq_entries, 32);
        assert_eq!(c.fp_issue_width, 3);
        assert_eq!(c.commit_width, 6);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn helper_parameters_match_section_2() {
        let c = SimConfig::paper_baseline();
        assert!(c.helper_enabled);
        assert_eq!(c.helper_width_bits, 8);
        assert_eq!(c.helper_clock_ratio, 2);
        assert_eq!(c.ticks_per_wide_cycle(), 2);
        assert_eq!(c.wide_cycles_to_ticks(3), 6);
    }

    #[test]
    fn monolithic_baseline_disables_helper() {
        let c = SimConfig::monolithic_baseline();
        assert!(!c.helper_enabled);
        // Everything else identical to the helper configuration.
        let p = SimConfig::paper_baseline();
        assert_eq!(c.dl0, p.dl0);
        assert_eq!(c.commit_width, p.commit_width);
    }

    #[test]
    fn cache_sets_computed() {
        let c = SimConfig::paper_baseline();
        assert_eq!(c.dl0.sets(), 32 * 1024 / (8 * 64));
        assert_eq!(c.ul1.sets(), 4 * 1024 * 1024 / (16 * 64));
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut c = SimConfig::paper_baseline();
        c.commit_width = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroFrontendWidth));

        let mut c = SimConfig::paper_baseline();
        c.dl0.line_bytes = 48;
        assert_eq!(
            c.validate(),
            Err(ConfigError::CacheLineNotPowerOfTwo { line_bytes: 48 })
        );

        let mut c = SimConfig::paper_baseline();
        c.rob_entries = 2;
        assert_eq!(
            c.validate(),
            Err(ConfigError::RobSmallerThanCommitGroup {
                rob_entries: 2,
                commit_width: 6
            })
        );

        let mut c = SimConfig::paper_baseline();
        c.helper_clock_ratio = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroHelperClockRatio));
    }

    #[test]
    fn validation_rejects_overflowing_clock_ratios() {
        let mut c = SimConfig::paper_baseline();
        c.helper_clock_ratio = MAX_HELPER_CLOCK_RATIO;
        assert!(c.validate().is_ok(), "the cap itself is legal");
        c.helper_clock_ratio = MAX_HELPER_CLOCK_RATIO + 1;
        assert_eq!(
            c.validate(),
            Err(ConfigError::HelperClockRatioTooLarge {
                ratio: MAX_HELPER_CLOCK_RATIO + 1,
                max: MAX_HELPER_CLOCK_RATIO,
            })
        );
        // The clock knobs only matter while the helper cluster exists.
        c.helper_enabled = false;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_unsupported_helper_widths() {
        for width_bits in [0, 1, 2, 3, 5, 12, 24, 32, 64] {
            let mut c = SimConfig::paper_baseline();
            c.helper_width_bits = width_bits;
            assert_eq!(
                c.validate(),
                Err(ConfigError::UnsupportedHelperWidth { width_bits }),
                "width {width_bits} must be rejected"
            );
            c.helper_enabled = false;
            assert!(
                c.validate().is_ok(),
                "monolithic machines ignore the helper width"
            );
        }
        for width_bits in SUPPORTED_HELPER_WIDTHS {
            let mut c = SimConfig::paper_baseline();
            c.helper_width_bits = width_bits;
            assert!(c.validate().is_ok(), "width {width_bits} is a sweep point");
        }
    }

    #[test]
    fn validation_rejects_non_power_of_two_cache_geometry() {
        // 48KB / 8-way / 64B lines -> 96 sets: line size is a power of two
        // but the set count is not.
        let mut c = SimConfig::paper_baseline();
        c.dl0.size_bytes = 48 * 1024;
        assert_eq!(
            c.validate(),
            Err(ConfigError::CacheGeometryNotPowerOfTwo {
                size_bytes: 48 * 1024,
                ways: 8,
                line_bytes: 64,
            })
        );

        // Zero ways would divide by zero in the set computation.
        let mut c = SimConfig::paper_baseline();
        c.ul1.ways = 0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::CacheGeometryNotPowerOfTwo { ways: 0, .. })
        ));

        // Capacity smaller than one way's worth of lines.
        let mut c = SimConfig::paper_baseline();
        c.dl0.size_bytes = 256;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::CacheGeometryNotPowerOfTwo { .. })
        ));
    }

    #[test]
    fn split_chunks_track_helper_width() {
        let mut c = SimConfig::paper_baseline();
        assert_eq!(c.split_chunks(), 4);
        c.helper_width_bits = 4;
        assert_eq!(c.split_chunks(), 8);
        c.helper_width_bits = 16;
        assert_eq!(c.split_chunks(), 2);
    }

    #[test]
    fn config_errors_display_and_implement_error() {
        let e: Box<dyn std::error::Error> = Box::new(ConfigError::ZeroHelperClockRatio);
        assert!(e.to_string().contains("clock ratio"));
    }

    #[test]
    fn worst_case_latency_covers_a_full_miss_load() {
        let c = SimConfig::paper_baseline();
        // Wide own cycle (2 ticks at ratio 2) + (3 + 13 + 450) wide cycles
        // of memory, converted to ticks.
        assert_eq!(c.worst_case_completion_ticks(), 2 + (3 + 13 + 450) * 2);
        // The monolithic baseline disables the helper but keeps the same
        // tick clocking (ratio 2), so its bound is identical.
        let mono = SimConfig::monolithic_baseline();
        assert_eq!(mono.worst_case_completion_ticks(), 2 + 466 * 2);
    }

    #[test]
    fn validation_rejects_latencies_beyond_the_event_horizon() {
        // Every in-range clock ratio keeps the paper latencies well inside
        // the horizon — the new check must not reject previously valid
        // machines.
        for ratio in [1, 2, 4, 8, MAX_HELPER_CLOCK_RATIO] {
            let mut c = SimConfig::paper_baseline();
            c.helper_clock_ratio = ratio;
            assert!(c.validate().is_ok(), "ratio {ratio} stays valid");
        }
        // A pathological memory latency overflows the wheel horizon and is
        // rejected with the typed error instead of silently degrading.
        let mut c = SimConfig::paper_baseline();
        c.memory_latency = 3_000_000;
        let worst = c.worst_case_completion_ticks();
        assert!(worst > MAX_COMPLETION_LATENCY_TICKS);
        assert_eq!(
            c.validate(),
            Err(ConfigError::CompletionLatencyBeyondHorizon {
                worst_case_ticks: worst,
                max: MAX_COMPLETION_LATENCY_TICKS,
            })
        );
        let msg = c.validate().unwrap_err().to_string();
        assert!(msg.contains("event-wheel horizon"));
    }
}
