//! The steering interface between the cycle simulator and the policies.
//!
//! The simulator calls [`SteeringPolicy::steer`] once per renamed µop with a
//! [`SteerContext`] describing everything the rename stage can see (source
//! width bits from the rename width table, flag-producer location, issue-queue
//! occupancies, …).  The returned [`SteerDecision`] selects the backend and
//! any auxiliary actions (load replication, splitting, copy prefetching).
//!
//! The actual data-width aware policies — the paper's contribution — live in
//! `hc-core::policy`; this module only defines the contract plus the trivial
//! [`AlwaysWide`] policy used for the monolithic baseline.

use hc_isa::DynUop;
use serde::{Deserialize, Serialize};

/// The two backends of the clustered processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cluster {
    /// The full-width 32-bit backend.
    Wide,
    /// The 8-bit helper backend (clocked 2×).
    Helper,
}

impl Cluster {
    /// The opposite backend.
    pub fn other(self) -> Cluster {
        match self {
            Cluster::Wide => Cluster::Helper,
            Cluster::Helper => Cluster::Wide,
        }
    }

    /// Dense index of the cluster (`Wide` = 0, `Helper` = 1), usable as an
    /// array subscript for per-cluster tables.
    pub fn index(self) -> usize {
        match self {
            Cluster::Wide => 0,
            Cluster::Helper => 1,
        }
    }
}

/// Why a µop was sent to the helper cluster; determines which ground-truth
/// condition must hold for the steering to be correct (and thus what counts
/// as a *fatal* misprediction requiring a flush).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HelperMode {
    /// Steered because all sources and the result were predicted ≤ 8 bits
    /// (the 8-8-8 scheme, §3.2).
    AllNarrow,
    /// Steered because the carry was predicted not to propagate past bit 8
    /// (the CR scheme, §3.5).
    CarryFree,
    /// A conditional branch following its flag producer (the BR scheme, §3.3).
    /// Branches carry no data result, so this cannot be width-mispredicted.
    FlagBranch,
    /// A chunk of a split wide instruction (the IR scheme, §3.7); correct by
    /// construction.
    SplitChunk,
}

/// The per-µop outcome of a steering policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SteerDecision {
    /// Which backend receives the µop.
    pub cluster: Cluster,
    /// When steered to the helper cluster, the justification (used for fatal
    /// misprediction checking).
    pub helper_mode: Option<HelperMode>,
    /// LR (§3.4): replicate this (narrow) load's value into the other
    /// cluster's register file so later consumers there need no copy.
    pub replicate_load: bool,
    /// IR (§3.7): split this wide µop into four chained 8-bit µops on the
    /// helper cluster.
    pub split: bool,
    /// CP (§3.6): eagerly generate the inter-cluster copy at this producer
    /// instead of waiting for a consumer in the other cluster to request it.
    pub prefetch_copy: bool,
    /// The policy's width prediction for the destination register, if it made
    /// one.  The simulator stores it in the rename table's width field so
    /// later consumers can read it (Figure 4).
    pub predicted_dest_narrow: Option<bool>,
}

impl SteerDecision {
    /// Plain steering to the wide backend.
    pub fn wide() -> SteerDecision {
        SteerDecision {
            cluster: Cluster::Wide,
            helper_mode: None,
            replicate_load: false,
            split: false,
            prefetch_copy: false,
            predicted_dest_narrow: None,
        }
    }

    /// Plain steering to the helper backend with the given justification.
    pub fn helper(mode: HelperMode) -> SteerDecision {
        SteerDecision {
            cluster: Cluster::Helper,
            helper_mode: Some(mode),
            replicate_load: false,
            split: false,
            prefetch_copy: false,
            predicted_dest_narrow: None,
        }
    }

    /// Attach the policy's destination-width prediction to the decision.
    pub fn with_dest_prediction(mut self, narrow: bool) -> SteerDecision {
        self.predicted_dest_narrow = Some(narrow);
        self
    }

    /// Enable load replication on this decision.
    pub fn with_replication(mut self) -> SteerDecision {
        self.replicate_load = true;
        self
    }

    /// Enable copy prefetching on this decision.
    pub fn with_copy_prefetch(mut self) -> SteerDecision {
        self.prefetch_copy = true;
        self
    }

    /// Mark the µop for splitting (implies helper cluster, split-chunk mode).
    pub fn split_to_helper() -> SteerDecision {
        SteerDecision {
            cluster: Cluster::Helper,
            helper_mode: Some(HelperMode::SplitChunk),
            replicate_load: false,
            split: true,
            prefetch_copy: false,
            predicted_dest_narrow: None,
        }
    }
}

/// Width information about one source operand as visible at rename time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceWidthInfo {
    /// Whether the source is (predicted or known to be) narrow.
    pub narrow: bool,
    /// Whether the information is the actual written-back width (`true`) or a
    /// prediction (`false`) — the paper reads the actual width when the
    /// producer has already written back.
    pub actual: bool,
    /// The cluster that produces (or produced) the value, if known.
    pub producer_cluster: Option<Cluster>,
}

/// Everything the rename/steer stage can legitimately see about a µop when it
/// makes the steering decision.  Note it does *not* include the µop's actual
/// result value — that is what the width predictor is for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SteerContext {
    /// Width info for each present register source, in source-slot order.
    pub sources: Vec<SourceWidthInfo>,
    /// Whether the immediate operand (if any) is narrow; `None` if no immediate.
    pub imm_narrow: Option<bool>,
    /// Cluster of the most recent in-flight producer of the flags register,
    /// if the flags value is still being produced in the window.
    pub flags_producer: Option<Cluster>,
    /// Current integer issue-queue occupancy of the wide cluster (entries used).
    pub wide_iq_occupancy: usize,
    /// Current issue-queue occupancy of the helper cluster.
    pub helper_iq_occupancy: usize,
    /// Integer IQ capacity of the wide cluster.
    pub wide_iq_capacity: usize,
    /// IQ capacity of the helper cluster.
    pub helper_iq_capacity: usize,
    /// Recent wide→narrow NREADY imbalance estimate (fraction of ready µops
    /// stuck in the wide cluster that could have issued in the helper cluster).
    pub wide_to_narrow_imbalance: f64,
    /// Recent narrow→wide NREADY imbalance estimate.
    pub narrow_to_wide_imbalance: f64,
    /// Whether the helper cluster exists in this configuration.
    pub helper_available: bool,
    /// Whether a previous fatal misprediction forces this µop to the wide
    /// cluster on its re-dispatch.
    pub forced_wide: bool,
}

impl SteerContext {
    /// A context describing a machine without a helper cluster.
    pub fn monolithic() -> SteerContext {
        SteerContext {
            sources: Vec::new(),
            imm_narrow: None,
            flags_producer: None,
            wide_iq_occupancy: 0,
            helper_iq_occupancy: 0,
            wide_iq_capacity: 32,
            helper_iq_capacity: 0,
            wide_to_narrow_imbalance: 0.0,
            narrow_to_wide_imbalance: 0.0,
            helper_available: false,
            forced_wide: false,
        }
    }

    /// Whether every register source is narrow (predicted or actual) and the
    /// immediate (if any) is narrow.
    pub fn all_sources_narrow(&self) -> bool {
        self.sources.iter().all(|s| s.narrow) && self.imm_narrow.unwrap_or(true)
    }

    /// Number of wide register sources.
    pub fn wide_source_count(&self) -> usize {
        self.sources.iter().filter(|s| !s.narrow).count()
    }

    /// Number of narrow register sources.
    pub fn narrow_source_count(&self) -> usize {
        self.sources.iter().filter(|s| s.narrow).count()
    }
}

/// Feedback delivered to the policy when a µop completes, so it can train its
/// predictors with ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WritebackInfo {
    /// Cluster the µop finally executed in.
    pub executed_in: Cluster,
    /// Whether the µop's register result (if any) was narrow.
    pub result_narrow: bool,
    /// Whether the µop satisfied the CR carry-free condition (only meaningful
    /// for CR-eligible µops).
    pub carry_free: bool,
    /// Whether the steering of this µop turned out to be a fatal width
    /// misprediction (it was flushed and resteered wide).
    pub fatal_mispredict: bool,
    /// Whether the µop's result was consumed in the other cluster, i.e. an
    /// inter-cluster copy was generated for it.
    pub incurred_copy: bool,
}

/// A steering policy: the decision logic the paper contributes.
pub trait SteeringPolicy {
    /// Short policy name for reports ("baseline", "8_8_8", "8_8_8+BR", …).
    fn name(&self) -> &str;

    /// Decide where the µop executes.
    fn steer(&mut self, uop: &DynUop, ctx: &SteerContext) -> SteerDecision;

    /// Ground-truth feedback at writeback/commit, used to train predictors.
    fn on_writeback(&mut self, uop: &DynUop, info: WritebackInfo);

    /// Whether the policy ever uses the helper cluster (false for the
    /// monolithic baseline, which lets the simulator skip helper bookkeeping).
    fn uses_helper(&self) -> bool {
        true
    }

    /// Return the policy to its untrained post-construction state, keeping
    /// its allocations (predictor tables), so one policy instance can be
    /// reused across grid cells — a batch lane refill resets the previous
    /// cell's policy instead of reconstructing its tables.  Implementations
    /// must make a reset policy behave **identically** to a freshly built
    /// one; stateless policies need not override the default no-op.
    fn reset(&mut self) {}
}

/// The monolithic baseline policy: every µop goes to the wide backend.
#[derive(Debug, Clone, Default)]
pub struct AlwaysWide;

impl SteeringPolicy for AlwaysWide {
    fn name(&self) -> &str {
        "baseline"
    }

    fn steer(&mut self, _uop: &DynUop, _ctx: &SteerContext) -> SteerDecision {
        SteerDecision::wide()
    }

    fn on_writeback(&mut self, _uop: &DynUop, _info: WritebackInfo) {}

    fn uses_helper(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_isa::uop::{AluOp, Uop, UopKind};

    #[test]
    fn cluster_other_is_involutive() {
        assert_eq!(Cluster::Wide.other(), Cluster::Helper);
        assert_eq!(Cluster::Helper.other().other(), Cluster::Helper);
    }

    #[test]
    fn decision_builders() {
        let d = SteerDecision::helper(HelperMode::AllNarrow).with_replication();
        assert_eq!(d.cluster, Cluster::Helper);
        assert!(d.replicate_load);
        assert!(!d.split);
        let s = SteerDecision::split_to_helper();
        assert!(s.split);
        assert_eq!(s.helper_mode, Some(HelperMode::SplitChunk));
        let w = SteerDecision::wide().with_copy_prefetch();
        assert!(w.prefetch_copy);
        assert_eq!(w.cluster, Cluster::Wide);
    }

    #[test]
    fn context_source_helpers() {
        let ctx = SteerContext {
            sources: vec![
                SourceWidthInfo {
                    narrow: true,
                    actual: true,
                    producer_cluster: Some(Cluster::Helper),
                },
                SourceWidthInfo {
                    narrow: false,
                    actual: false,
                    producer_cluster: None,
                },
            ],
            imm_narrow: Some(true),
            ..SteerContext::monolithic()
        };
        assert!(!ctx.all_sources_narrow());
        assert_eq!(ctx.wide_source_count(), 1);
        assert_eq!(ctx.narrow_source_count(), 1);
    }

    #[test]
    fn all_narrow_requires_narrow_immediate() {
        let mut ctx = SteerContext::monolithic();
        ctx.sources = vec![SourceWidthInfo {
            narrow: true,
            actual: true,
            producer_cluster: None,
        }];
        ctx.imm_narrow = Some(false);
        assert!(!ctx.all_sources_narrow());
        ctx.imm_narrow = Some(true);
        assert!(ctx.all_sources_narrow());
        ctx.imm_narrow = None;
        assert!(ctx.all_sources_narrow());
    }

    #[test]
    fn always_wide_never_uses_helper() {
        let mut p = AlwaysWide;
        let uop = DynUop::from_uop(Uop::new(0, UopKind::Alu(AluOp::Add)));
        let d = p.steer(&uop, &SteerContext::monolithic());
        assert_eq!(d.cluster, Cluster::Wide);
        assert!(!p.uses_helper());
        assert_eq!(p.name(), "baseline");
    }
}
