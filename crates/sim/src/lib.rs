//! # hc-sim
//!
//! A cycle-level, trace-driven simulator of a clustered out-of-order IA-32-like
//! processor: a monolithic 32-bit core (Table 1 of the paper) optionally
//! extended with the low-complexity 8-bit **helper cluster** of §2, clocked
//! twice as fast as the wide backend.
//!
//! The simulator executes any [`steer::SteeringPolicy`]; the paper's
//! data-width aware policies live in `hc-core`.  The crate also provides the
//! NREADY imbalance metric, the memory hierarchy, and the statistics /
//! energy-event collection the power model consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Version of the simulator's *observable behaviour*: the mapping from
/// (trace, configuration, policy) to [`SimStats`].  Consumers that memoize
/// simulation results on disk (the `hc_core::cache` cell cache) fold this
/// constant into their keys, so bumping it invalidates every cached cell.
///
/// Bump it whenever a change alters the statistics a run produces — new
/// timing behaviour, counter semantics, predictor defaults.  Pure refactors
/// that keep runs bit-identical (the `tests/golden_*.rs` snapshots prove
/// this) must **not** bump it, or caches lose their contents for nothing.
pub const SIM_BEHAVIOR_VERSION: u32 = 1;

pub mod cache;
pub mod config;
pub mod exec;
pub mod imbalance;
pub mod rob;
pub mod stats;
pub mod steer;

pub use cache::{MemoryHierarchy, SetAssocCache};
pub use config::{CacheConfig, ConfigError, SimConfig};
pub use exec::{BatchContext, BatchJob, ExecContext, Simulator};
pub use imbalance::NReadyAccumulator;
pub use stats::{EnergyEvents, ImbalanceStats, SimStats};
pub use steer::{
    AlwaysWide, Cluster, HelperMode, SourceWidthInfo, SteerContext, SteerDecision, SteeringPolicy,
    WritebackInfo,
};
