//! The NREADY workload-imbalance metric (§3.7, following Parcerisa & González).
//!
//! "The workload imbalance at a given instant of time is defined as the total
//! number of ready instructions that cannot issue, but could have issued in
//! the other cluster."  We accumulate, per wide cycle, the number of ready
//! µops left unissued in each cluster while the other cluster still had free
//! issue slots, and normalise by the number of µops considered.

use crate::stats::ImbalanceStats;
use serde::{Deserialize, Serialize};

/// Accumulates NREADY samples over a run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NReadyAccumulator {
    wide_stuck: u64,
    narrow_stuck: u64,
    samples: u64,
    /// Sliding-window counters for the steering policies' online imbalance
    /// estimate (IR reacts to *recent* imbalance, not the whole-run average).
    recent_wide_stuck: u64,
    recent_narrow_stuck: u64,
    recent_samples: u64,
    window: u64,
}

impl NReadyAccumulator {
    /// Create an accumulator whose "recent" estimate covers roughly `window`
    /// µop samples.
    pub fn new(window: u64) -> NReadyAccumulator {
        NReadyAccumulator {
            window: window.max(1),
            ..NReadyAccumulator::default()
        }
    }

    /// Record one cycle's observation.
    ///
    /// * `wide_ready_unissued` — ready µops left in the wide IQ after issue.
    /// * `wide_free_slots` — issue slots the wide cluster left unused.
    /// * `helper_ready_unissued` / `helper_free_slots` — same for the helper.
    /// * `uops_considered` — µops that were present in either IQ this cycle.
    pub fn record(
        &mut self,
        wide_ready_unissued: usize,
        wide_free_slots: usize,
        helper_ready_unissued: usize,
        helper_free_slots: usize,
        uops_considered: usize,
    ) {
        // Ready µops stuck in the wide cluster that the helper could have taken.
        let w2n = wide_ready_unissued.min(helper_free_slots) as u64;
        // Ready µops stuck in the helper cluster that the wide cluster could have taken.
        let n2w = helper_ready_unissued.min(wide_free_slots) as u64;
        self.wide_stuck += w2n;
        self.narrow_stuck += n2w;
        self.samples += uops_considered as u64;

        self.recent_wide_stuck += w2n;
        self.recent_narrow_stuck += n2w;
        self.recent_samples += uops_considered as u64;
        if self.recent_samples > self.window {
            // Halve the window so the estimate tracks recent behaviour.
            self.recent_wide_stuck /= 2;
            self.recent_narrow_stuck /= 2;
            self.recent_samples /= 2;
        }
    }

    /// Whole-run imbalance statistics.
    pub fn stats(&self) -> ImbalanceStats {
        let f = |n: u64| {
            if self.samples == 0 {
                0.0
            } else {
                n as f64 / self.samples as f64
            }
        };
        ImbalanceStats {
            wide_to_narrow: f(self.wide_stuck),
            narrow_to_wide: f(self.narrow_stuck),
        }
    }

    /// Recent wide→narrow imbalance estimate (what the IR policy reads).
    pub fn recent_wide_to_narrow(&self) -> f64 {
        if self.recent_samples == 0 {
            0.0
        } else {
            self.recent_wide_stuck as f64 / self.recent_samples as f64
        }
    }

    /// Recent narrow→wide imbalance estimate.
    pub fn recent_narrow_to_wide(&self) -> f64 {
        if self.recent_samples == 0 {
            0.0
        } else {
            self.recent_narrow_stuck as f64 / self.recent_samples as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_samples_means_no_imbalance() {
        let a = NReadyAccumulator::new(1000);
        assert_eq!(a.stats().wide_to_narrow, 0.0);
        assert_eq!(a.recent_wide_to_narrow(), 0.0);
    }

    #[test]
    fn wide_to_narrow_counts_only_transferable_uops() {
        let mut a = NReadyAccumulator::new(1000);
        // 5 ready stuck wide, but helper has only 2 free slots -> 2 count.
        a.record(5, 0, 0, 2, 10);
        let s = a.stats();
        assert!((s.wide_to_narrow - 0.2).abs() < 1e-12);
        assert_eq!(s.narrow_to_wide, 0.0);
    }

    #[test]
    fn narrow_to_wide_symmetric() {
        let mut a = NReadyAccumulator::new(1000);
        a.record(0, 3, 4, 0, 8);
        let s = a.stats();
        assert!((s.narrow_to_wide - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn recent_estimate_decays() {
        let mut a = NReadyAccumulator::new(100);
        for _ in 0..50 {
            a.record(2, 0, 0, 2, 4); // heavy wide->narrow imbalance
        }
        let early = a.recent_wide_to_narrow();
        assert!(early > 0.3);
        for _ in 0..200 {
            a.record(0, 3, 0, 3, 4); // balanced now
        }
        let late = a.recent_wide_to_narrow();
        assert!(
            late < early,
            "recent estimate should track recent behaviour"
        );
        // Whole-run stats still remember the early imbalance.
        assert!(a.stats().wide_to_narrow > 0.0);
    }
}
