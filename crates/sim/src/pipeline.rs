//! The cycle-level clustered out-of-order pipeline.
//!
//! The simulator is trace driven: it replays a [`Trace`] through a model of a
//! Pentium-4-like core (Table 1) extended with the 8-bit helper backend of §2,
//! honouring the steering decisions of a [`SteeringPolicy`].
//!
//! # Clocking
//!
//! Time advances in *ticks* — helper-cluster cycles.  A wide-cluster cycle is
//! `helper_clock_ratio` ticks (2 in the paper).  Frontend, commit, and the
//! wide backend operate once per wide cycle; the helper backend issues every
//! tick, which is exactly the "2× faster narrow backend with synchronised
//! clocks" design of §2.2.
//!
//! # What is modelled
//!
//! * per-cluster issue queues with limited entries and issue width,
//! * register dependences through a rename map, including the flags register,
//! * inter-cluster communication through copy µops steered to the producer's
//!   backend (Canal/Parcerisa/González scheme), plus copy prefetching,
//! * load replication (LR) and wide-instruction splitting (IR),
//! * a shared memory hierarchy (DL0/UL1/main memory) and a single MOB with
//!   store-to-load forwarding,
//! * branch direction prediction with frontend redirect stalls,
//! * fatal width-misprediction detection with a flush-and-resteer recovery,
//! * the NREADY imbalance metric and energy event counting.

use crate::cache::MemoryHierarchy;
use crate::config::{ConfigError, SimConfig};
use crate::imbalance::NReadyAccumulator;
use crate::rob::{Inflight, Role, Seq, UopState};
use crate::stats::SimStats;
use crate::steer::{
    Cluster, HelperMode, SourceWidthInfo, SteerContext, SteerDecision, SteeringPolicy,
    WritebackInfo,
};
use hc_isa::reg::{ArchReg, NUM_ARCH_REGS};
use hc_isa::uop::{Uop, UopKind};
use hc_isa::DynUop;
use hc_predictors::BranchPredictor;
use hc_trace::Trace;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

/// Number of chunks a wide instruction is split into by the IR scheme.
const SPLIT_CHUNKS: usize = 4;

/// The simulator: construct once per configuration, then [`Simulator::run`]
/// as many traces / policies as needed.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Create a simulator after validating the configuration.
    pub fn new(config: SimConfig) -> Result<Simulator, ConfigError> {
        config.validate()?;
        Ok(Simulator { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Run `trace` under `policy` and return the measured statistics.
    pub fn run(&self, trace: &Trace, policy: &mut dyn SteeringPolicy) -> SimStats {
        let mut m = Machine::new(&self.config, trace, policy);
        m.run();
        m.into_stats()
    }
}

/// Rename-table entry: the in-flight producer of an architectural register.
#[derive(Debug, Clone, Copy)]
struct RenameEntry {
    seq: Seq,
}

struct Machine<'a> {
    cfg: &'a SimConfig,
    trace: &'a Trace,
    policy: &'a mut dyn SteeringPolicy,

    // In-flight window.
    entries: Vec<Inflight>,
    dependents: Vec<Vec<Seq>>,
    rob: VecDeque<Seq>,

    // Rename state.
    rename_map: [Option<RenameEntry>; NUM_ARCH_REGS],
    flags_map: Option<RenameEntry>,
    arch_loc: [Cluster; NUM_ARCH_REGS],
    arch_replicated: [bool; NUM_ARCH_REGS],
    arch_narrow: [bool; NUM_ARCH_REGS],
    flags_loc: Cluster,
    copy_map: HashMap<(Seq, Cluster), Seq>,

    // Issue-queue occupancy.
    wide_int_iq: usize,
    wide_fp_iq: usize,
    helper_iq: usize,

    // Frontend.
    next_pos: usize,
    forced_wide: HashSet<usize>,
    frontend_stall_until: u64,
    branch_stall: Option<Seq>,
    branch_pred: BranchPredictor,

    // Execution.
    events: BinaryHeap<std::cmp::Reverse<(u64, Seq)>>,
    mem: MemoryHierarchy,

    // Time.
    tick: u64,
    cycles: u64,

    // Measurement.
    nready: NReadyAccumulator,
    stats: SimStats,
    committed_trace_uops: usize,
}

impl<'a> Machine<'a> {
    fn new(cfg: &'a SimConfig, trace: &'a Trace, policy: &'a mut dyn SteeringPolicy) -> Self {
        let stats = SimStats {
            policy: policy.name().to_string(),
            trace: trace.name.clone(),
            ..SimStats::default()
        };
        Machine {
            cfg,
            trace,
            policy,
            entries: Vec::with_capacity(trace.len() + trace.len() / 2),
            dependents: Vec::with_capacity(trace.len() + trace.len() / 2),
            rob: VecDeque::with_capacity(cfg.rob_entries),
            rename_map: [None; NUM_ARCH_REGS],
            flags_map: None,
            arch_loc: [Cluster::Wide; NUM_ARCH_REGS],
            arch_replicated: [false; NUM_ARCH_REGS],
            arch_narrow: [false; NUM_ARCH_REGS],
            flags_loc: Cluster::Wide,
            copy_map: HashMap::new(),
            wide_int_iq: 0,
            wide_fp_iq: 0,
            helper_iq: 0,
            next_pos: 0,
            forced_wide: HashSet::new(),
            frontend_stall_until: 0,
            branch_stall: None,
            branch_pred: BranchPredictor::default(),
            events: BinaryHeap::new(),
            mem: MemoryHierarchy::new(cfg),
            tick: 0,
            cycles: 0,
            nready: NReadyAccumulator::new(4096),
            stats,
            committed_trace_uops: 0,
        }
    }

    fn ratio(&self) -> u64 {
        self.cfg.ticks_per_wide_cycle()
    }

    // ----------------------------------------------------------------- run

    fn run(&mut self) {
        if self.trace.is_empty() {
            return;
        }
        // Hard bound so a modelling bug can never hang the caller.
        let max_cycles = (self.trace.len() as u64 + 1_000) * 600;
        while self.committed_trace_uops < self.trace.len() && self.cycles < max_cycles {
            self.step_wide_cycle();
        }
        debug_assert!(
            self.committed_trace_uops >= self.trace.len(),
            "simulation did not retire the whole trace within the cycle bound"
        );
    }

    fn step_wide_cycle(&mut self) {
        let ratio = self.ratio();
        for sub in 0..ratio {
            self.complete_at(self.tick);
            if self.cfg.helper_enabled && self.policy.uses_helper() {
                self.issue_cluster(Cluster::Helper);
            }
            if sub == 0 {
                self.issue_cluster(Cluster::Wide);
            }
            self.tick += 1;
        }
        self.commit();
        self.rename_and_dispatch();
        self.sample_nready();
        self.cycles += 1;
        self.stats.energy.wide_cycles += 1;
        self.stats.energy.helper_cycles += ratio;
    }

    // ---------------------------------------------------------- completion

    fn complete_at(&mut self, now: u64) {
        while let Some(&std::cmp::Reverse((t, seq))) = self.events.peek() {
            if t > now {
                break;
            }
            self.events.pop();
            let idx = seq as usize;
            if self.entries[idx].state != UopState::Issued {
                continue; // squashed after issue
            }
            self.entries[idx].state = UopState::Completed;
            // Register-file write energy.
            if self.entries[idx].uop.uop.has_dest() {
                match self.entries[idx].cluster {
                    Cluster::Wide => self.stats.energy.wide_rf_writes += 1,
                    Cluster::Helper => self.stats.energy.helper_rf_writes += 1,
                }
            }
            if matches!(self.entries[idx].role, Role::Copy { .. }) {
                self.stats.energy.copy_transfers += 1;
            }
            // Wake dependents.
            let deps = std::mem::take(&mut self.dependents[idx]);
            for d in deps {
                let di = d as usize;
                if self.entries[di].alive() {
                    self.entries[di].satisfy_dep(seq);
                }
            }
            // Branch-stall release.
            if self.branch_stall == Some(seq) {
                self.branch_stall = None;
                self.frontend_stall_until = self.frontend_stall_until.max(
                    now + self
                        .cfg
                        .wide_cycles_to_ticks(self.cfg.branch_mispredict_penalty),
                );
            }
        }
    }

    // --------------------------------------------------------------- issue

    fn issue_cluster(&mut self, cluster: Cluster) {
        let (int_width, fp_width) = match cluster {
            Cluster::Wide => (self.cfg.int_issue_width, self.cfg.fp_issue_width),
            Cluster::Helper => (self.cfg.helper_issue_width, 0),
        };
        let mut int_used = 0usize;
        let mut fp_used = 0usize;
        let mut fatal: Option<(Seq, usize)> = None;

        let rob_snapshot: Vec<Seq> = self.rob.iter().copied().collect();
        for seq in rob_snapshot {
            if int_used >= int_width && (fp_width == 0 || fp_used >= fp_width) {
                break;
            }
            let idx = seq as usize;
            if !self.entries[idx].alive()
                || self.entries[idx].cluster != cluster
                || self.entries[idx].state != UopState::Ready
            {
                continue;
            }
            let is_fp = self.entries[idx].is_fp;
            // Copy µops have their own scheduling resources (Canal/Parcerisa/
            // González scheme, see §4): they do not compete with regular µops
            // for issue slots.
            let is_copy = matches!(self.entries[idx].uop.uop.kind, UopKind::Copy);
            if is_fp {
                if fp_used >= fp_width {
                    continue;
                }
            } else if int_used >= int_width && !is_copy {
                continue;
            }

            // Memory ordering: a load may not issue past an older,
            // not-yet-completed overlapping store.
            let mut forward = false;
            if self.entries[idx].uop.uop.kind.is_load() {
                match self.memory_order_check(seq) {
                    MemOrder::Blocked => continue,
                    MemOrder::Forwarded => forward = true,
                    MemOrder::Clear => {}
                }
            }

            // Fatal width misprediction detection: the helper cluster's
            // zero/carry detectors catch a value that does not fit as the µop
            // executes (§3.2 / §3.5).
            if cluster == Cluster::Helper && self.is_fatal_width_violation(idx) {
                fatal = Some((seq, self.entries[idx].trace_pos().unwrap_or(self.next_pos)));
                break;
            }

            // Issue.
            let latency = self.latency_ticks(idx, forward);
            self.entries[idx].state = UopState::Issued;
            self.entries[idx].complete_tick = self.tick + latency;
            self.events
                .push(std::cmp::Reverse((self.tick + latency, seq)));
            self.release_iq_slot(idx);
            if is_fp {
                fp_used += 1;
                self.stats.energy.fp_ops += 1;
            } else if !is_copy {
                int_used += 1;
                match cluster {
                    Cluster::Wide => self.stats.energy.wide_alu_ops += 1,
                    Cluster::Helper => self.stats.energy.helper_alu_ops += 1,
                }
            }
            let nsrc = self.entries[idx].uop.uop.num_sources() as u64;
            match cluster {
                Cluster::Wide => self.stats.energy.wide_rf_reads += nsrc,
                Cluster::Helper => self.stats.energy.helper_rf_reads += nsrc,
            }
        }

        if let Some((seq, pos)) = fatal {
            self.handle_fatal_width_mispredict(seq, pos);
        }
    }

    fn release_iq_slot(&mut self, idx: usize) {
        match (self.entries[idx].cluster, self.entries[idx].is_fp) {
            (Cluster::Wide, false) => self.wide_int_iq = self.wide_int_iq.saturating_sub(1),
            (Cluster::Wide, true) => self.wide_fp_iq = self.wide_fp_iq.saturating_sub(1),
            (Cluster::Helper, _) => self.helper_iq = self.helper_iq.saturating_sub(1),
        }
    }

    fn is_fatal_width_violation(&self, idx: usize) -> bool {
        let e = &self.entries[idx];
        match e.helper_mode {
            Some(HelperMode::AllNarrow) => !e.uop.is_all_narrow(),
            Some(HelperMode::CarryFree) => {
                !(e.uop.is_all_narrow()
                    || e.uop.is_carry_free_8_32_32()
                    || Self::address_carry_free(&e.uop))
            }
            // Branches, split chunks and copies cannot violate widths.
            _ => false,
        }
    }

    /// CR eligibility check for loads/stores: the *address computation* stays
    /// within the low byte of the wide base.
    fn address_carry_free(uop: &DynUop) -> bool {
        if !uop.uop.kind.is_mem() {
            return false;
        }
        let mut operands: Vec<hc_isa::Value> = uop.source_values();
        if let Some(i) = uop.uop.imm {
            operands.push(i);
        }
        let wide: Vec<hc_isa::Value> = operands
            .iter()
            .copied()
            .filter(|v| !v.is_narrow())
            .collect();
        if wide.len() != 1 {
            return false;
        }
        let sum = operands
            .iter()
            .copied()
            .fold(hc_isa::Value::ZERO, |acc, v| acc + v);
        sum.upper_bits() == wide[0].upper_bits()
    }

    fn memory_order_check(&self, load_seq: Seq) -> MemOrder {
        let load_idx = load_seq as usize;
        let load_mem = match self.entries[load_idx].uop.mem {
            Some(m) => m,
            None => return MemOrder::Clear,
        };
        for &seq in self.rob.iter() {
            if seq >= load_seq {
                break;
            }
            let idx = seq as usize;
            let e = &self.entries[idx];
            if !e.alive() || !e.is_store {
                continue;
            }
            if let Some(smem) = e.uop.mem {
                if smem.overlaps(&load_mem) {
                    return if e.state == UopState::Completed {
                        MemOrder::Forwarded
                    } else {
                        MemOrder::Blocked
                    };
                }
            }
        }
        MemOrder::Clear
    }

    fn latency_ticks(&mut self, idx: usize, forwarded: bool) -> u64 {
        let cluster = self.entries[idx].cluster;
        let ratio = self.ratio();
        let own_cycle = match cluster {
            Cluster::Wide => ratio,
            Cluster::Helper => 1,
        };
        let kind = self.entries[idx].uop.uop.kind;
        match kind {
            UopKind::Alu(_) | UopKind::Nop | UopKind::CondBranch(_) | UopKind::Jump => own_cycle,
            // Copies ride the inter-cluster bypass: latency is expressed in
            // helper ticks (half wide cycles), matching the synchronised 2:1
            // clock of §2.2.
            UopKind::Copy => (self.cfg.copy_latency as u64).max(1),
            UopKind::Mul => self.cfg.wide_cycles_to_ticks(self.cfg.mul_latency),
            UopKind::Div => self.cfg.wide_cycles_to_ticks(self.cfg.div_latency),
            UopKind::Fp => self.cfg.wide_cycles_to_ticks(self.cfg.fp_latency),
            UopKind::Load(_) => {
                let addr = self.entries[idx].mem_addr.unwrap_or(0);
                let mem_cycles = if forwarded {
                    self.cfg.forward_latency
                } else {
                    self.mem.access(addr)
                };
                // AGU in the issuing cluster + cache access at wide-cluster speed.
                own_cycle + self.cfg.wide_cycles_to_ticks(mem_cycles)
            }
            UopKind::Store(_) => {
                // Address generation only; data is written at commit.
                own_cycle
            }
        }
    }

    // -------------------------------------------------------------- commit

    fn commit(&mut self) {
        let mut committed = 0usize;
        while let Some(&seq) = self.rob.front() {
            let idx = seq as usize;
            if !self.entries[idx].alive() {
                self.rob.pop_front();
                continue;
            }
            if self.entries[idx].state != UopState::Completed {
                break;
            }
            if committed >= self.cfg.commit_width {
                break;
            }
            self.rob.pop_front();
            committed += 1;
            self.retire(seq);
        }
    }

    fn retire(&mut self, seq: Seq) {
        let idx = seq as usize;
        let cluster = self.entries[idx].cluster;
        let replicated = self.entries[idx].replicated;
        let incurred_copy = self.entries[idx].incurred_copy;
        let fatal = self.entries[idx].fatal_mispredict;
        let uop = self.entries[idx].uop;
        let role = self.entries[idx].role;

        // Free the rename mapping if this entry is still the current producer.
        if let Some(dst) = uop.uop.dest {
            if self.rename_map[dst.index()]
                .map(|e| e.seq == seq)
                .unwrap_or(false)
            {
                self.rename_map[dst.index()] = None;
            }
            self.arch_loc[dst.index()] = cluster;
            self.arch_replicated[dst.index()] = replicated;
            self.arch_narrow[dst.index()] = uop.result.map(|v| v.is_narrow()).unwrap_or(false);
        }
        if uop.uop.writes_flags {
            if self.flags_map.map(|e| e.seq == seq).unwrap_or(false) {
                self.flags_map = None;
            }
            self.flags_loc = cluster;
        }

        match role {
            Role::Trace { .. } => {
                self.committed_trace_uops += 1;
                self.stats.committed_uops += 1;
                match cluster {
                    Cluster::Wide => self.stats.wide_uops += 1,
                    Cluster::Helper => self.stats.helper_uops += 1,
                }
                // Width-prediction outcome accounting (Figure 5 semantics):
                // helper-steered µops that survived are correct; wide-steered
                // µops that could have gone narrow are missed opportunities.
                if self.eligible_for_width_accounting(&uop) {
                    if cluster == Cluster::Helper {
                        self.stats.correct_width_predictions += 1;
                    } else if uop.is_all_narrow() && self.cfg.helper_enabled {
                        self.stats.nonfatal_width_mispredicts += 1;
                    } else {
                        self.stats.correct_width_predictions += 1;
                    }
                }
                let info = WritebackInfo {
                    executed_in: cluster,
                    result_narrow: uop.result.map(|v| v.is_narrow()).unwrap_or(true),
                    carry_free: uop.is_carry_free_8_32_32() || Self::address_carry_free(&uop),
                    fatal_mispredict: fatal,
                    incurred_copy,
                };
                self.policy.on_writeback(&uop, info);
            }
            Role::SplitChunk { .. } => {
                self.stats.split_uops += 1;
            }
            Role::Copy { .. } => {}
        }
    }

    fn eligible_for_width_accounting(&self, uop: &DynUop) -> bool {
        !uop.uop.kind.wide_only() && !uop.uop.kind.is_branch()
    }

    // ------------------------------------------------------ rename/dispatch

    fn rename_and_dispatch(&mut self) {
        if self.tick < self.frontend_stall_until || self.branch_stall.is_some() {
            return;
        }
        let mut renamed = 0usize;
        while renamed < self.cfg.rename_width && self.next_pos < self.trace.len() {
            // Window space: worst case a split needs chunks + copies entries.
            if self.rob.len() + SPLIT_CHUNKS * 2 + 2 > self.cfg.rob_entries {
                break;
            }
            let pos = self.next_pos;
            let duop = self.trace.uops[pos];
            let ctx = self.build_context(&duop, pos);
            self.stats.energy.predictor_accesses += 1;
            let mut decision = self.policy.steer(&duop, &ctx);
            self.sanitize_decision(&duop, &ctx, &mut decision);

            // Issue-queue admission check.
            if !self.iq_has_room(&duop, &decision) {
                break;
            }

            if decision.split && duop.uop.kind.is_simple_alu() {
                self.dispatch_split(pos, &duop, &decision);
            } else {
                self.dispatch_normal(pos, &duop, &decision);
            }
            self.next_pos += 1;
            renamed += 1;

            if self.branch_stall.is_some() {
                break; // mispredicted branch: stop fetching younger work
            }
        }
    }

    fn sanitize_decision(&self, duop: &DynUop, ctx: &SteerContext, d: &mut SteerDecision) {
        let helper_ok = self.cfg.helper_enabled && self.policy.uses_helper();
        if !helper_ok || duop.uop.kind.wide_only() || ctx.forced_wide {
            d.cluster = Cluster::Wide;
            d.helper_mode = None;
            d.split = false;
        }
        if d.cluster == Cluster::Wide {
            d.helper_mode = None;
            if !duop.uop.kind.is_simple_alu() {
                d.split = false;
            }
        }
        if d.split && !duop.uop.kind.is_simple_alu() {
            d.split = false;
        }
    }

    fn iq_has_room(&self, duop: &DynUop, d: &SteerDecision) -> bool {
        let needed_helper;
        let mut needed_wide_int = 0usize;
        let mut needed_wide_fp = 0usize;
        if matches!(duop.uop.kind, UopKind::Fp) {
            needed_wide_fp += 1;
            needed_helper = 0;
        } else if d.split {
            // chunks in the helper IQ + copies (also helper IQ, they execute at
            // the producer side).
            needed_helper = SPLIT_CHUNKS * 2;
        } else {
            match d.cluster {
                Cluster::Wide => {
                    needed_wide_int += 1;
                    needed_helper = 0;
                }
                Cluster::Helper => needed_helper = 1,
            }
        }
        // Conservative slack of 2 for source copies that dispatch may create.
        self.wide_int_iq + needed_wide_int + 2 <= self.cfg.int_iq_entries
            && self.wide_fp_iq + needed_wide_fp <= self.cfg.fp_iq_entries
            && (!self.cfg.helper_enabled
                || self.helper_iq + needed_helper + 2 <= self.cfg.helper_iq_entries)
    }

    fn build_context(&self, duop: &DynUop, pos: usize) -> SteerContext {
        let mut sources = Vec::with_capacity(duop.uop.num_sources());
        for src in duop.uop.sources() {
            sources.push(self.source_info(src));
        }
        let flags_producer = if duop.uop.reads_flags {
            match self.flags_map {
                Some(e) => Some(self.entries[e.seq as usize].cluster),
                None => Some(self.flags_loc),
            }
        } else {
            None
        };
        SteerContext {
            sources,
            imm_narrow: duop.uop.imm.map(|v| v.is_narrow()),
            flags_producer,
            wide_iq_occupancy: self.wide_int_iq,
            helper_iq_occupancy: self.helper_iq,
            wide_iq_capacity: self.cfg.int_iq_entries,
            helper_iq_capacity: self.cfg.helper_iq_entries,
            wide_to_narrow_imbalance: self.nready.recent_wide_to_narrow(),
            narrow_to_wide_imbalance: self.nready.recent_narrow_to_wide(),
            helper_available: self.cfg.helper_enabled && self.policy.uses_helper(),
            forced_wide: self.forced_wide.contains(&pos),
        }
    }

    fn source_info(&self, src: ArchReg) -> SourceWidthInfo {
        match self.rename_map[src.index()] {
            Some(e) => {
                let p = &self.entries[e.seq as usize];
                if p.state == UopState::Completed {
                    SourceWidthInfo {
                        narrow: p.uop.result.map(|v| v.is_narrow()).unwrap_or(false),
                        actual: true,
                        producer_cluster: Some(p.cluster),
                    }
                } else {
                    SourceWidthInfo {
                        narrow: p.predicted_narrow.unwrap_or(false),
                        actual: false,
                        producer_cluster: Some(p.cluster),
                    }
                }
            }
            None => SourceWidthInfo {
                narrow: self.arch_narrow[src.index()],
                actual: true,
                producer_cluster: Some(self.arch_loc[src.index()]),
            },
        }
    }

    fn alloc_entry(&mut self, mut e: Inflight) -> Seq {
        let seq = self.entries.len() as Seq;
        e.seq = seq;
        self.entries.push(e);
        self.dependents.push(Vec::new());
        seq
    }

    fn add_dep(&mut self, consumer: Seq, producer: Seq) {
        let pidx = producer as usize;
        if self.entries[pidx].state == UopState::Completed || !self.entries[pidx].alive() {
            return;
        }
        self.entries[consumer as usize].pending_deps.push(producer);
        self.dependents[pidx].push(consumer);
    }

    fn charge_iq(&mut self, cluster: Cluster, is_fp: bool) {
        match (cluster, is_fp) {
            (Cluster::Wide, false) => {
                self.wide_int_iq += 1;
                self.stats.energy.wide_iq_ops += 1;
            }
            (Cluster::Wide, true) => {
                self.wide_fp_iq += 1;
                self.stats.energy.wide_iq_ops += 1;
            }
            (Cluster::Helper, _) => {
                self.helper_iq += 1;
                self.stats.energy.helper_iq_ops += 1;
            }
        }
    }

    fn finish_dispatch(&mut self, seq: Seq) {
        let idx = seq as usize;
        if self.entries[idx].pending_deps.is_empty() {
            self.entries[idx].state = UopState::Ready;
        }
        self.rob.push_back(seq);
        let cluster = self.entries[idx].cluster;
        let is_fp = self.entries[idx].is_fp;
        self.charge_iq(cluster, is_fp);
    }

    /// Ensure the value produced by `producer_seq` (or architectural register
    /// `src` if no in-flight producer) is available in `cluster`, generating a
    /// copy µop if necessary.  Returns the seq the consumer must wait for, if
    /// any.
    fn route_source(&mut self, src: ArchReg, cluster: Cluster) -> Option<Seq> {
        match self.rename_map[src.index()] {
            Some(e) => {
                let pseq = e.seq;
                let pidx = pseq as usize;
                let pcluster = self.entries[pidx].cluster;
                if pcluster == cluster || self.entries[pidx].replicated {
                    if self.entries[pidx].state == UopState::Completed {
                        None
                    } else {
                        Some(pseq)
                    }
                } else {
                    // Need the value in the other cluster: reuse or create a copy.
                    if let Some(&cseq) = self.copy_map.get(&(pseq, cluster)) {
                        if self.entries[cseq as usize].alive() {
                            return if self.entries[cseq as usize].state == UopState::Completed {
                                None
                            } else {
                                Some(cseq)
                            };
                        }
                    }
                    let cseq = self.make_copy(pseq, cluster, false);
                    Some(cseq)
                }
            }
            None => {
                // Architectural value.
                if self.arch_loc[src.index()] == cluster || self.arch_replicated[src.index()] {
                    None
                } else {
                    let cseq = self.make_arch_copy(src, cluster);
                    Some(cseq)
                }
            }
        }
    }

    fn route_flags(&mut self, cluster: Cluster) -> Option<Seq> {
        match self.flags_map {
            Some(e) => {
                let pseq = e.seq;
                let pcluster = self.entries[pseq as usize].cluster;
                if pcluster == cluster || self.entries[pseq as usize].replicated {
                    if self.entries[pseq as usize].state == UopState::Completed {
                        None
                    } else {
                        Some(pseq)
                    }
                } else {
                    if let Some(&cseq) = self.copy_map.get(&(pseq, cluster)) {
                        if self.entries[cseq as usize].alive() {
                            return if self.entries[cseq as usize].state == UopState::Completed {
                                None
                            } else {
                                Some(cseq)
                            };
                        }
                    }
                    let cseq = self.make_copy(pseq, cluster, false);
                    Some(cseq)
                }
            }
            None => {
                if self.flags_loc == cluster {
                    None
                } else {
                    // The flags value lives in the other cluster's committed
                    // state; a copy is still required.
                    let cseq = self.make_flags_copy(cluster);
                    Some(cseq)
                }
            }
        }
    }

    /// Create a copy µop for in-flight producer `producer` targeting `target`.
    fn make_copy(&mut self, producer: Seq, target: Cluster, prefetched: bool) -> Seq {
        let pidx = producer as usize;
        let pcluster = self.entries[pidx].cluster;
        let uop = DynUop::from_uop(Uop::new(self.entries[pidx].uop.uop.pc, UopKind::Copy));
        let mut e = Inflight::new(
            0,
            Role::Copy {
                producer,
                target,
                prefetched,
            },
            uop,
            pcluster, // copies execute in the producer's backend
        );
        e.state = UopState::Waiting;
        let seq = self.alloc_entry(e);
        self.add_dep(seq, producer);
        self.finish_dispatch(seq);
        self.copy_map.insert((producer, target), seq);
        self.entries[pidx].incurred_copy = true;
        self.stats.copy_uops += 1;
        if prefetched {
            self.stats.energy.copy_transfers += 0; // counted at completion
        }
        seq
    }

    /// Copy of an already-committed architectural value.
    fn make_arch_copy(&mut self, src: ArchReg, target: Cluster) -> Seq {
        let source_cluster = self.arch_loc[src.index()];
        let uop = DynUop::from_uop(Uop::new(0, UopKind::Copy).with_src(src));
        let e = Inflight::new(
            0,
            Role::Copy {
                producer: Seq::MAX,
                target,
                prefetched: false,
            },
            uop,
            source_cluster,
        );
        let seq = self.alloc_entry(e);
        self.finish_dispatch(seq);
        // Mark the architectural value as now replicated so we do not generate
        // the same copy again next cycle.
        self.arch_replicated[src.index()] = true;
        self.stats.copy_uops += 1;
        seq
    }

    fn make_flags_copy(&mut self, target: Cluster) -> Seq {
        let source_cluster = self.flags_loc;
        let uop = DynUop::from_uop(Uop::new(0, UopKind::Copy).with_src(ArchReg::Eflags));
        let e = Inflight::new(
            0,
            Role::Copy {
                producer: Seq::MAX,
                target,
                prefetched: false,
            },
            uop,
            source_cluster,
        );
        let seq = self.alloc_entry(e);
        self.finish_dispatch(seq);
        self.flags_loc = target; // value now present in both; track target
        self.stats.copy_uops += 1;
        seq
    }

    fn dispatch_normal(&mut self, pos: usize, duop: &DynUop, decision: &SteerDecision) {
        let cluster = decision.cluster;
        let mut e = Inflight::new(0, Role::Trace { pos }, *duop, cluster);
        e.helper_mode = decision.helper_mode;
        e.predicted_narrow = decision.predicted_dest_narrow;
        if decision.replicate_load && duop.uop.kind.is_load() {
            e.replicated = true;
            self.stats.replicated_loads += 1;
        }
        let seq = self.alloc_entry(e);

        // Source routing.
        let srcs: Vec<ArchReg> = duop.uop.sources().collect();
        for src in srcs {
            if let Some(dep) = self.route_source(src, cluster) {
                self.add_dep(seq, dep);
            }
        }
        if duop.uop.reads_flags {
            if let Some(dep) = self.route_flags(cluster) {
                self.add_dep(seq, dep);
            }
        }

        // Rename the destination / flags.
        if let Some(dst) = duop.uop.dest {
            self.rename_map[dst.index()] = Some(RenameEntry { seq });
        }
        if duop.uop.writes_flags {
            self.flags_map = Some(RenameEntry { seq });
        }

        self.finish_dispatch(seq);

        // Copy prefetching (CP): eagerly push the result to the other cluster.
        if decision.prefetch_copy && duop.uop.has_dest() && self.cfg.helper_enabled {
            let target = cluster.other();
            if !self.copy_map.contains_key(&(seq, target)) {
                self.make_copy(seq, target, true);
            }
        }

        // Branch prediction and frontend redirect stalls.
        if duop.uop.kind.is_cond_branch() {
            self.stats.branches += 1;
            let predicted = self.branch_pred.predict(duop.uop.pc);
            let actual = duop.taken.unwrap_or(false);
            self.branch_pred.update(duop.uop.pc, actual, duop.target);
            if predicted != actual {
                self.stats.branch_mispredicts += 1;
                self.branch_stall = Some(seq);
            }
        }
    }

    fn dispatch_split(&mut self, pos: usize, duop: &DynUop, decision: &SteerDecision) {
        // Split a wide ALU µop into SPLIT_CHUNKS chained 8-bit chunks executed
        // in the helper cluster (§3.7).  Chunk 0 handles the least significant
        // byte; each chunk depends on the previous one (carry chain).
        let srcs: Vec<ArchReg> = duop.uop.sources().collect();
        let mut prev: Option<Seq> = None;
        let mut last_chunk: Seq = 0;
        for i in 0..SPLIT_CHUNKS {
            let mut chunk_uop = *duop;
            chunk_uop.uop.pc = duop.uop.pc;
            let mut e = Inflight::new(
                0,
                Role::SplitChunk {
                    parent_pos: pos,
                    index: i as u8,
                },
                chunk_uop,
                Cluster::Helper,
            );
            e.helper_mode = Some(HelperMode::SplitChunk);
            let seq = self.alloc_entry(e);
            if i == 0 {
                for src in &srcs {
                    if let Some(dep) = self.route_source(*src, Cluster::Helper) {
                        self.add_dep(seq, dep);
                    }
                }
                if duop.uop.reads_flags {
                    if let Some(dep) = self.route_flags(Cluster::Helper) {
                        self.add_dep(seq, dep);
                    }
                }
            } else if let Some(p) = prev {
                self.add_dep(seq, p);
            }
            self.finish_dispatch(seq);
            prev = Some(seq);
            last_chunk = seq;
        }

        // The architectural destination maps to the chain's last chunk.  The
        // full 32-bit value is prefetched to the wide cluster with copy µops.
        if let Some(dst) = duop.uop.dest {
            self.rename_map[dst.index()] = Some(RenameEntry { seq: last_chunk });
            for _ in 0..SPLIT_CHUNKS {
                // Four 8-bit copy µops reconstruct the value in the wide RF;
                // only the one keyed in copy_map is depended upon by later
                // wide consumers (they all complete together).
                let c = self.make_copy(last_chunk, Cluster::Wide, true);
                self.copy_map.insert((last_chunk, Cluster::Wide), c);
            }
        }
        if duop.uop.writes_flags {
            self.flags_map = Some(RenameEntry { seq: last_chunk });
        }

        // The original wide µop itself is accounted as a helper-steered trace
        // µop: the last chunk carries the Trace role bookkeeping is handled at
        // retire of split chunks; we additionally retire the logical trace µop
        // by tagging the last chunk.
        let idx = last_chunk as usize;
        self.entries[idx].role = Role::Trace { pos };
        self.entries[idx].helper_mode = Some(HelperMode::SplitChunk);
        self.entries[idx].predicted_narrow = decision.predicted_dest_narrow;
        let _ = decision;
    }

    // -------------------------------------------------------------- flush

    fn handle_fatal_width_mispredict(&mut self, seq: Seq, resteer_pos: usize) {
        self.stats.fatal_width_mispredicts += 1;
        self.entries[seq as usize].fatal_mispredict = true;
        self.forced_wide.insert(resteer_pos);

        // Squash the offending entry and everything younger.
        let rob_snapshot: Vec<Seq> = self.rob.iter().copied().collect();
        let mut keep: VecDeque<Seq> = VecDeque::with_capacity(rob_snapshot.len());
        for s in rob_snapshot {
            if s >= seq {
                let idx = s as usize;
                if self.entries[idx].occupies_iq() {
                    self.release_iq_slot(idx);
                }
                self.entries[idx].state = UopState::Squashed;
            } else {
                keep.push_back(s);
            }
        }
        self.rob = keep;
        self.copy_map.clear();
        if let Some(b) = self.branch_stall {
            if b >= seq {
                self.branch_stall = None;
            }
        }

        // Rebuild the rename map from the surviving window.
        self.rename_map = [None; NUM_ARCH_REGS];
        self.flags_map = None;
        let survivors: Vec<Seq> = self.rob.iter().copied().collect();
        for s in survivors {
            let e = &self.entries[s as usize];
            if let Some(dst) = e.uop.uop.dest {
                self.rename_map[dst.index()] = Some(RenameEntry { seq: s });
            }
            if e.uop.uop.writes_flags {
                self.flags_map = Some(RenameEntry { seq: s });
            }
        }

        // Restart fetch at the offending µop after the flush penalty.
        self.next_pos = resteer_pos;
        self.frontend_stall_until = self.tick.max(self.frontend_stall_until)
            + self.cfg.wide_cycles_to_ticks(self.cfg.width_flush_penalty);
    }

    // ------------------------------------------------------------- metrics

    fn sample_nready(&mut self) {
        if !self.cfg.helper_enabled || !self.policy.uses_helper() {
            return;
        }
        let mut wide_ready = 0usize;
        let mut helper_ready = 0usize;
        let mut considered = 0usize;
        for &seq in self.rob.iter() {
            let e = &self.entries[seq as usize];
            if !e.alive() || e.is_fp {
                continue;
            }
            if e.occupies_iq() {
                considered += 1;
                if e.state == UopState::Ready {
                    match e.cluster {
                        Cluster::Wide => wide_ready += 1,
                        Cluster::Helper => helper_ready += 1,
                    }
                }
            }
        }
        // Free slots next cycle approximated by the issue widths.
        let wide_free = self.cfg.int_issue_width;
        let helper_free = self.cfg.helper_issue_width * self.ratio() as usize;
        self.nready
            .record(wide_ready, wide_free, helper_ready, helper_free, considered);
    }

    fn into_stats(mut self) -> SimStats {
        self.stats.cycles = self.cycles;
        self.stats.ticks = self.tick;
        self.stats.imbalance = self.nready.stats();
        self.stats.dl0 = self.mem.dl0_stats();
        self.stats.ul1 = self.mem.ul1_stats();
        self.stats.energy.dl0_accesses = self.stats.dl0.accesses;
        self.stats.energy.ul1_accesses = self.stats.ul1.accesses;
        self.stats
    }
}

/// Result of the memory-order check for a load.
enum MemOrder {
    /// No conflicting older store: access the cache.
    Clear,
    /// An older overlapping store has completed: forward its data.
    Forwarded,
    /// An older overlapping store is still pending: the load must wait.
    Blocked,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steer::AlwaysWide;
    use hc_trace::{KernelKind, SpecBenchmark, WorkloadProfile};

    fn small_trace(len: usize) -> Trace {
        WorkloadProfile::new(
            "pipe-test",
            vec![
                (KernelKind::ByteHistogram, 1.0),
                (KernelKind::TokenScan, 1.0),
            ],
        )
        .with_trace_len(len)
        .generate()
    }

    #[test]
    fn baseline_retires_every_trace_uop() {
        let trace = small_trace(3_000);
        let sim = Simulator::new(SimConfig::monolithic_baseline()).unwrap();
        let stats = sim.run(&trace, &mut AlwaysWide);
        assert_eq!(stats.committed_uops, 3_000);
        assert_eq!(stats.helper_uops, 0);
        assert!(stats.cycles > 0);
        assert!(stats.ipc() > 0.1, "IPC unreasonably low: {}", stats.ipc());
        assert!(stats.ipc() <= 6.0, "IPC cannot exceed commit width");
    }

    #[test]
    fn baseline_generates_no_copies_or_splits() {
        let trace = small_trace(2_000);
        let sim = Simulator::new(SimConfig::monolithic_baseline()).unwrap();
        let stats = sim.run(&trace, &mut AlwaysWide);
        assert_eq!(stats.copy_uops, 0);
        assert_eq!(stats.split_uops, 0);
        assert_eq!(stats.fatal_width_mispredicts, 0);
    }

    #[test]
    fn baseline_is_deterministic() {
        let trace = small_trace(2_000);
        let sim = Simulator::new(SimConfig::monolithic_baseline()).unwrap();
        let a = sim.run(&trace, &mut AlwaysWide);
        let b = sim.run(&trace, &mut AlwaysWide);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.committed_uops, b.committed_uops);
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let trace = Trace::new("empty");
        let sim = Simulator::new(SimConfig::monolithic_baseline()).unwrap();
        let stats = sim.run(&trace, &mut AlwaysWide);
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.committed_uops, 0);
    }

    /// A test-only policy that steers ground-truth-narrow µops to the helper
    /// cluster (an oracle 8-8-8 policy).
    struct OracleNarrow;
    impl SteeringPolicy for OracleNarrow {
        fn name(&self) -> &str {
            "oracle-888"
        }
        fn steer(&mut self, uop: &DynUop, ctx: &SteerContext) -> SteerDecision {
            if ctx.helper_available
                && !ctx.forced_wide
                && uop.is_all_narrow()
                && !uop.uop.kind.wide_only()
            {
                SteerDecision::helper(HelperMode::AllNarrow).with_dest_prediction(true)
            } else {
                SteerDecision::wide()
            }
        }
        fn on_writeback(&mut self, _u: &DynUop, _i: WritebackInfo) {}
    }

    #[test]
    fn oracle_narrow_policy_uses_helper_and_never_flushes() {
        let trace = small_trace(3_000);
        let sim = Simulator::new(SimConfig::paper_baseline()).unwrap();
        let stats = sim.run(&trace, &mut OracleNarrow);
        assert_eq!(stats.committed_uops, 3_000);
        assert!(
            stats.helper_uops > 0,
            "oracle should steer some µops narrow"
        );
        assert_eq!(
            stats.fatal_width_mispredicts, 0,
            "oracle decisions can never be fatally wrong"
        );
    }

    #[test]
    fn oracle_narrow_speeds_up_narrow_heavy_code() {
        let trace = SpecBenchmark::Gzip.trace(6_000);
        let base_sim = Simulator::new(SimConfig::monolithic_baseline()).unwrap();
        let helper_sim = Simulator::new(SimConfig::paper_baseline()).unwrap();
        let base = base_sim.run(&trace, &mut AlwaysWide);
        let helper = helper_sim.run(&trace, &mut OracleNarrow);
        assert_eq!(base.committed_uops, helper.committed_uops);
        let speedup = helper.speedup_over(&base);
        assert!(
            speedup > 0.95,
            "helper cluster should not slow narrow-heavy code down much, got {speedup:.3}"
        );
    }

    /// A deliberately wrong policy: steers everything to the helper cluster as
    /// "all narrow".  Wide values must then trigger fatal mispredictions.
    struct RecklessNarrow;
    impl SteeringPolicy for RecklessNarrow {
        fn name(&self) -> &str {
            "reckless"
        }
        fn steer(&mut self, uop: &DynUop, ctx: &SteerContext) -> SteerDecision {
            if ctx.helper_available && !ctx.forced_wide && !uop.uop.kind.wide_only() {
                SteerDecision::helper(HelperMode::AllNarrow)
            } else {
                SteerDecision::wide()
            }
        }
        fn on_writeback(&mut self, _u: &DynUop, _i: WritebackInfo) {}
    }

    #[test]
    fn wrong_steering_triggers_fatal_mispredictions_and_still_completes() {
        let trace = small_trace(2_000);
        let sim = Simulator::new(SimConfig::paper_baseline()).unwrap();
        let stats = sim.run(&trace, &mut RecklessNarrow);
        assert_eq!(stats.committed_uops, 2_000, "flushes must not lose µops");
        assert!(
            stats.fatal_width_mispredicts > 0,
            "wide values steered narrow must be caught"
        );
    }

    #[test]
    fn copies_are_generated_when_values_cross_clusters() {
        let trace = small_trace(3_000);
        let sim = Simulator::new(SimConfig::paper_baseline()).unwrap();
        let stats = sim.run(&trace, &mut OracleNarrow);
        assert!(
            stats.copy_uops > 0,
            "narrow producers feeding wide consumers require copies"
        );
    }

    #[test]
    fn stats_fractions_are_consistent() {
        let trace = small_trace(2_000);
        let sim = Simulator::new(SimConfig::paper_baseline()).unwrap();
        let stats = sim.run(&trace, &mut OracleNarrow);
        assert_eq!(stats.helper_uops + stats.wide_uops, stats.committed_uops);
        assert!(stats.helper_fraction() <= 1.0);
        assert!(stats.ticks >= stats.cycles * 2);
    }
}
