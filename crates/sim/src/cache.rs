//! Set-associative caches and the memory hierarchy (DL0 / UL1 / main memory).

use crate::config::{CacheConfig, SimConfig};
use serde::{Deserialize, Serialize};

/// Access statistics for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of accesses.
    pub accesses: u64,
    /// Number of misses.
    pub misses: u64,
}

impl CacheStats {
    /// Miss rate in [0, 1].
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.  Only tags are tracked;
/// data comes from the trace.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: Vec<Vec<(u32, u64)>>, // (tag, last-use stamp) per way
    ways: usize,
    line_shift: u32,
    set_mask: u32,
    stamp: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Build a cache from its configuration.
    pub fn new(cfg: &CacheConfig) -> SetAssocCache {
        let sets = cfg.sets().max(1) as usize;
        SetAssocCache {
            sets: vec![Vec::with_capacity(cfg.ways as usize); sets],
            ways: cfg.ways.max(1) as usize,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: (sets as u32) - 1,
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    fn index_and_tag(&self, addr: u32) -> (usize, u32) {
        let line = addr >> self.line_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Access the cache; returns `true` on hit.  Misses allocate the line.
    pub fn access(&mut self, addr: u32) -> bool {
        self.stamp += 1;
        self.stats.accesses += 1;
        let (set, tag) = self.index_and_tag(addr);
        let ways = &mut self.sets[set];
        if let Some(entry) = ways.iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = self.stamp;
            return true;
        }
        self.stats.misses += 1;
        if ways.len() >= self.ways {
            // Evict the least recently used way.
            if let Some(lru) = ways
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(i, _)| i)
            {
                ways.swap_remove(lru);
            }
        }
        ways.push((tag, self.stamp));
        false
    }

    /// Probe without allocating or updating LRU; returns `true` on hit.
    pub fn probe(&self, addr: u32) -> bool {
        let (set, tag) = self.index_and_tag(addr);
        self.sets[set].iter().any(|(t, _)| *t == tag)
    }

    /// Return the cache to its cold post-construction state without
    /// releasing any allocation (the per-set way vectors keep their
    /// capacity), so a reused execution context starts every run cold.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.stamp = 0;
        self.stats = CacheStats::default();
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// The data-memory hierarchy: DL0 backed by UL1 backed by main memory.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    dl0: SetAssocCache,
    ul1: SetAssocCache,
    dl0_cfg: CacheConfig,
    ul1_cfg: CacheConfig,
    dl0_latency: u32,
    ul1_latency: u32,
    memory_latency: u32,
}

impl MemoryHierarchy {
    /// Build the hierarchy from the simulator configuration.
    pub fn new(cfg: &SimConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            dl0: SetAssocCache::new(&cfg.dl0),
            ul1: SetAssocCache::new(&cfg.ul1),
            dl0_cfg: cfg.dl0,
            ul1_cfg: cfg.ul1,
            dl0_latency: cfg.dl0.latency,
            ul1_latency: cfg.ul1.latency,
            memory_latency: cfg.memory_latency,
        }
    }

    /// Whether this hierarchy was built from the same cache geometry and
    /// latencies as `cfg`, i.e. a reused instance only needs a [`reset`]
    /// instead of a rebuild.
    ///
    /// [`reset`]: MemoryHierarchy::reset
    pub fn matches(&self, cfg: &SimConfig) -> bool {
        self.dl0_cfg == cfg.dl0
            && self.ul1_cfg == cfg.ul1
            && self.memory_latency == cfg.memory_latency
    }

    /// Return both cache levels to their cold state, keeping every
    /// allocation for reuse by the next run.
    pub fn reset(&mut self) {
        self.dl0.reset();
        self.ul1.reset();
    }

    /// Perform a data access and return its latency in wide cycles.
    pub fn access(&mut self, addr: u32) -> u32 {
        if self.dl0.access(addr) {
            self.dl0_latency
        } else if self.ul1.access(addr) {
            self.dl0_latency + self.ul1_latency
        } else {
            self.dl0_latency + self.ul1_latency + self.memory_latency
        }
    }

    /// DL0 statistics.
    pub fn dl0_stats(&self) -> CacheStats {
        self.dl0.stats()
    }

    /// UL1 statistics.
    pub fn ul1_stats(&self) -> CacheStats {
        self.ul1.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> SetAssocCache {
        SetAssocCache::new(&CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
            latency: 1,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small_cache();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1010), "same line");
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest_way() {
        let mut c = small_cache(); // 8 sets, 2 ways, 64B lines
                                   // Three addresses mapping to the same set (stride = sets*line = 512).
        let a = 0x0000;
        let b = 0x0200;
        let d = 0x0400;
        c.access(a);
        c.access(b);
        c.access(d); // evicts a
        assert!(!c.probe(a));
        assert!(c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn hit_refreshes_lru() {
        let mut c = small_cache();
        let a = 0x0000;
        let b = 0x0200;
        let d = 0x0400;
        c.access(a);
        c.access(b);
        c.access(a); // refresh a
        c.access(d); // should evict b, not a
        assert!(c.probe(a));
        assert!(!c.probe(b));
    }

    #[test]
    fn hierarchy_latencies_compose() {
        let cfg = SimConfig::paper_baseline();
        let mut m = MemoryHierarchy::new(&cfg);
        let first = m.access(0x4000_0000);
        assert_eq!(first, 3 + 13 + 450, "cold miss goes to memory");
        let second = m.access(0x4000_0000);
        assert_eq!(second, 3, "now a DL0 hit");
    }

    #[test]
    fn ul1_hit_after_dl0_eviction() {
        let cfg = SimConfig::paper_baseline();
        let mut m = MemoryHierarchy::new(&cfg);
        // Touch one line, then sweep enough lines mapping everywhere to evict
        // it from the 32KB DL0 but not the 4MB UL1.
        m.access(0);
        for i in 1..2048u32 {
            m.access(i * 64);
        }
        let lat = m.access(0);
        assert_eq!(lat, 3 + 13, "DL0 miss, UL1 hit expected, got {lat}");
    }

    #[test]
    fn miss_rate_reporting() {
        let mut c = small_cache();
        c.access(0);
        c.access(0);
        c.access(64 * 1024);
        let s = c.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.misses, 2);
        assert!((s.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
