//! The EFLAGS condition-code register.
//!
//! Arithmetic and logic µops write the flags register; conditional branches
//! read it.  The BR steering policy (§3.3) steers a conditional branch to the
//! helper cluster when the µop that last wrote the flags already executes
//! there, saving an inter-cluster copy of the (narrow) flags value.

use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Condition codes produced by integer µops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash, Serialize, Deserialize)]
pub struct Flags {
    /// Zero flag: result was zero.
    pub zf: bool,
    /// Sign flag: result's most significant bit.
    pub sf: bool,
    /// Carry flag: unsigned overflow out of the destination width.
    pub cf: bool,
    /// Overflow flag: signed overflow.
    pub of: bool,
    /// Parity flag: even parity of the low result byte.
    pub pf: bool,
}

impl Flags {
    /// Compute the flags an addition `a + b = result` produces.
    pub fn from_add(a: Value, b: Value, result: Value) -> Flags {
        let (_, carry) = a.bits().overflowing_add(b.bits());
        let of = ((a.bits() ^ result.bits()) & (b.bits() ^ result.bits()) & 0x8000_0000) != 0;
        Flags::from_result_with(result, carry, of)
    }

    /// Compute the flags a subtraction `a - b = result` produces.
    pub fn from_sub(a: Value, b: Value, result: Value) -> Flags {
        let borrow = a.bits() < b.bits();
        let of = ((a.bits() ^ b.bits()) & (a.bits() ^ result.bits()) & 0x8000_0000) != 0;
        Flags::from_result_with(result, borrow, of)
    }

    /// Compute the flags a logical operation produces (CF = OF = 0).
    pub fn from_logic(result: Value) -> Flags {
        Flags::from_result_with(result, false, false)
    }

    fn from_result_with(result: Value, cf: bool, of: bool) -> Flags {
        Flags {
            zf: result.bits() == 0,
            sf: result.bits() & 0x8000_0000 != 0,
            cf,
            of,
            pf: result.low_byte().count_ones().is_multiple_of(2),
        }
    }

    /// Pack the flags into a value as stored in the EFLAGS architectural
    /// register.  Note the packed representation always fits in 8 bits — the
    /// flags value itself is narrow, which is why flag-consuming branches are
    /// attractive candidates for the helper cluster.
    pub fn pack(self) -> Value {
        let mut v = 0u32;
        if self.cf {
            v |= 1 << 0;
        }
        if self.pf {
            v |= 1 << 2;
        }
        if self.zf {
            v |= 1 << 3;
        }
        if self.sf {
            v |= 1 << 4;
        }
        if self.of {
            v |= 1 << 5;
        }
        Value(v)
    }

    /// Unpack flags from a register value produced by [`Flags::pack`].
    pub fn unpack(v: Value) -> Flags {
        Flags {
            cf: v.bits() & (1 << 0) != 0,
            pf: v.bits() & (1 << 2) != 0,
            zf: v.bits() & (1 << 3) != 0,
            sf: v.bits() & (1 << 4) != 0,
            of: v.bits() & (1 << 5) != 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_flags_zero_result() {
        let f = Flags::from_add(Value::new(5), Value::from_i32(-5), Value::new(0));
        assert!(f.zf);
        assert!(!f.sf);
    }

    #[test]
    fn add_flags_carry() {
        let a = Value::new(u32::MAX);
        let b = Value::new(1);
        let f = Flags::from_add(a, b, a + b);
        assert!(f.cf);
        assert!(f.zf);
    }

    #[test]
    fn sub_flags_borrow_and_sign() {
        let a = Value::new(1);
        let b = Value::new(2);
        let f = Flags::from_sub(a, b, a - b);
        assert!(f.cf, "borrow expected");
        assert!(f.sf, "negative result expected");
        assert!(!f.zf);
    }

    #[test]
    fn signed_overflow_detected() {
        let a = Value::new(0x7FFF_FFFF);
        let b = Value::new(1);
        let f = Flags::from_add(a, b, a + b);
        assert!(f.of);
        assert!(!f.cf);
    }

    #[test]
    fn logic_clears_carry_and_overflow() {
        let f = Flags::from_logic(Value::new(0xFFFF_FFFF));
        assert!(!f.cf);
        assert!(!f.of);
        assert!(f.sf);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let f = Flags {
            zf: true,
            sf: false,
            cf: true,
            of: true,
            pf: false,
        };
        assert_eq!(Flags::unpack(f.pack()), f);
        // Packed flags are always a narrow value.
        assert!(f.pack().is_narrow());
    }

    #[test]
    fn parity_of_low_byte() {
        let f = Flags::from_logic(Value::new(0x3)); // two bits set -> even parity
        assert!(f.pf);
        let f = Flags::from_logic(Value::new(0x1)); // one bit set -> odd parity
        assert!(!f.pf);
    }
}
