//! Data-width classification.
//!
//! The paper's steering policies reason about the *operand width profile* of a
//! µop: which of its sources and its result are narrow (≤ 8 bits).  §1 reports
//! that 39.4% of regular ALU instructions require one narrow operand, 3.3%
//! require two narrow operands producing a wide result and 43.5% require two
//! narrow operands producing a narrow result; §3.2 steers the all-narrow
//! (8-8-8) combination and §3.5 adds the 8-32-32 carry-free combination.

use crate::value::Value;
use serde::{Deserialize, Serialize};

/// The helper cluster datapath width in bits (the paper's design point, §2.1).
pub const NARROW_BITS: u32 = 8;

/// The wide cluster / machine datapath width in bits.
pub const WIDE_BITS: u32 = 32;

/// Width class of a single operand or result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WidthClass {
    /// Representable in [`NARROW_BITS`] bits (sign-extended).
    Narrow,
    /// Requires more than [`NARROW_BITS`] bits.
    Wide,
}

impl WidthClass {
    /// Classify a concrete value.
    pub fn of(v: Value) -> WidthClass {
        if v.is_narrow() {
            WidthClass::Narrow
        } else {
            WidthClass::Wide
        }
    }

    /// Classify a value against an arbitrary narrow width (for ablations on
    /// helper-cluster width).
    pub fn of_with_width(v: Value, bits: u32) -> WidthClass {
        if v.fits_in(bits) {
            WidthClass::Narrow
        } else {
            WidthClass::Wide
        }
    }

    /// True if narrow.
    pub fn is_narrow(self) -> bool {
        matches!(self, WidthClass::Narrow)
    }
}

/// The operand-width profile of a µop instance: the combination of source and
/// result widths that the steering policies key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperandProfile {
    /// All sources and the result are narrow — the paper's `8_8_8` case.
    AllNarrow,
    /// One source narrow, one wide, wide result whose upper bits equal the wide
    /// source's upper bits (no carry propagation) — the paper's `8_32_32`
    /// carry-free case handled by CR.
    NarrowWideCarryFree,
    /// One source narrow, one wide, wide result with carry propagation into the
    /// upper bits: must execute wide.
    NarrowWideCarry,
    /// Sources narrow but the result is wide (e.g. 127 + 127 = 254): must
    /// execute wide (or be caught as a fatal misprediction).
    NarrowSourcesWideResult,
    /// Everything wide.
    AllWide,
    /// The µop has no register sources and no result (e.g. unconditional jump).
    NoOperands,
}

impl OperandProfile {
    /// Classify from concrete source values and result value.
    ///
    /// `sources` are the values read, `result` the value produced (if any).
    pub fn classify(sources: &[Value], result: Option<Value>) -> OperandProfile {
        if sources.is_empty() && result.is_none() {
            return OperandProfile::NoOperands;
        }
        let all_src_narrow = sources.iter().all(|v| v.is_narrow());
        let any_src_narrow = sources.iter().any(|v| v.is_narrow());
        let result_narrow = result.map(|v| v.is_narrow());

        match (all_src_narrow, any_src_narrow, result_narrow) {
            (true, _, Some(true)) | (true, _, None) => OperandProfile::AllNarrow,
            (true, _, Some(false)) => OperandProfile::NarrowSourcesWideResult,
            (false, true, Some(false)) => {
                // Mixed widths with wide result: carry-free if the upper bits of
                // the result match the upper bits of (one of) the wide sources.
                let result = result.expect("checked Some above");
                let carry_free = sources
                    .iter()
                    .filter(|v| !v.is_narrow())
                    .any(|wide| wide.upper_bits() == result.upper_bits());
                if carry_free {
                    OperandProfile::NarrowWideCarryFree
                } else {
                    OperandProfile::NarrowWideCarry
                }
            }
            (false, true, Some(true)) => {
                // Mixed sources but narrow result (e.g. masking a wide value).
                // The operation still needs to read a wide source, so it cannot
                // run on the 8-bit datapath without the CR upper-bits machinery;
                // treat as carry-free only if a wide source shares upper bits
                // with the result (which, for a narrow result, it cannot).
                OperandProfile::NarrowWideCarry
            }
            (false, false, _) | (false, true, None) => OperandProfile::AllWide,
        }
    }

    /// Whether this profile can execute natively on the 8-bit helper datapath
    /// without any extra support.
    pub fn helper_native(self) -> bool {
        matches!(self, OperandProfile::AllNarrow)
    }

    /// Whether this profile can execute on the helper datapath when the CR
    /// (carry-width prediction) support of §3.5 is enabled.
    pub fn helper_with_cr(self) -> bool {
        matches!(
            self,
            OperandProfile::AllNarrow | OperandProfile::NarrowWideCarryFree
        )
    }
}

/// Summary counters of operand-profile occurrence over a stream of µops.
/// Used to reproduce the §1 statistics and Figure 11.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileHistogram {
    /// Count per profile, indexed by the order of [`OperandProfile`] variants.
    pub all_narrow: u64,
    /// See [`OperandProfile::NarrowWideCarryFree`].
    pub narrow_wide_carry_free: u64,
    /// See [`OperandProfile::NarrowWideCarry`].
    pub narrow_wide_carry: u64,
    /// See [`OperandProfile::NarrowSourcesWideResult`].
    pub narrow_sources_wide_result: u64,
    /// See [`OperandProfile::AllWide`].
    pub all_wide: u64,
    /// See [`OperandProfile::NoOperands`].
    pub no_operands: u64,
}

impl ProfileHistogram {
    /// Record one profile observation.
    pub fn record(&mut self, p: OperandProfile) {
        match p {
            OperandProfile::AllNarrow => self.all_narrow += 1,
            OperandProfile::NarrowWideCarryFree => self.narrow_wide_carry_free += 1,
            OperandProfile::NarrowWideCarry => self.narrow_wide_carry += 1,
            OperandProfile::NarrowSourcesWideResult => self.narrow_sources_wide_result += 1,
            OperandProfile::AllWide => self.all_wide += 1,
            OperandProfile::NoOperands => self.no_operands += 1,
        }
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.all_narrow
            + self.narrow_wide_carry_free
            + self.narrow_wide_carry
            + self.narrow_sources_wide_result
            + self.all_wide
            + self.no_operands
    }

    /// Fraction (0..=1) of observations with the given predicate over counts.
    pub fn fraction(&self, count: u64) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            count as f64 / self.total() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: i64) -> Value {
        Value::new(x as u32)
    }

    #[test]
    fn all_narrow_profile() {
        let p = OperandProfile::classify(&[v(3), v(-4)], Some(v(-1)));
        assert_eq!(p, OperandProfile::AllNarrow);
        assert!(p.helper_native());
        assert!(p.helper_with_cr());
    }

    #[test]
    fn narrow_sources_wide_result() {
        let p = OperandProfile::classify(&[v(200), v(200)], Some(v(400)));
        assert_eq!(p, OperandProfile::NarrowSourcesWideResult);
        assert!(!p.helper_native());
    }

    #[test]
    fn figure_10_is_carry_free() {
        let base = Value::new(0xFFFC_4A02);
        let off = Value::new(0x1C);
        let result = Value::new(0xFFFC_4A1E);
        let p = OperandProfile::classify(&[base, off], Some(result));
        assert_eq!(p, OperandProfile::NarrowWideCarryFree);
        assert!(!p.helper_native());
        assert!(p.helper_with_cr());
    }

    #[test]
    fn carry_propagation_is_not_carry_free() {
        let base = Value::new(0x0000_10F0);
        let off = Value::new(0x20);
        let result = base + off;
        let p = OperandProfile::classify(&[base, off], Some(result));
        assert_eq!(p, OperandProfile::NarrowWideCarry);
        assert!(!p.helper_with_cr());
    }

    #[test]
    fn all_wide_profile() {
        let p = OperandProfile::classify(&[v(1000), v(2000)], Some(v(3000)));
        assert_eq!(p, OperandProfile::AllWide);
    }

    #[test]
    fn no_operands() {
        assert_eq!(
            OperandProfile::classify(&[], None),
            OperandProfile::NoOperands
        );
    }

    #[test]
    fn narrow_source_no_result_counts_as_all_narrow() {
        // e.g. a store of a narrow value to a narrow address register.
        let p = OperandProfile::classify(&[v(5)], None);
        assert_eq!(p, OperandProfile::AllNarrow);
    }

    #[test]
    fn histogram_records_and_totals() {
        let mut h = ProfileHistogram::default();
        h.record(OperandProfile::AllNarrow);
        h.record(OperandProfile::AllNarrow);
        h.record(OperandProfile::AllWide);
        assert_eq!(h.total(), 3);
        assert!((h.fraction(h.all_narrow) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn width_class_with_custom_width() {
        let v16 = Value::new(0x7FFF);
        assert_eq!(WidthClass::of(v16), WidthClass::Wide);
        assert_eq!(WidthClass::of_with_width(v16, 16), WidthClass::Narrow);
    }
}
