//! Architectural and physical register identifiers.
//!
//! The IA-32 µop machine state is larger than the eight architected GPRs: the
//! frontend introduces temporary registers when cracking complex macro
//! instructions, and the condition codes live in EFLAGS.  We model the integer
//! architectural state as the 8 GPRs, the instruction pointer, the flags
//! register and 8 µop temporaries — 18 renameable names in total.

use serde::{Deserialize, Serialize};

/// Number of IA-32 general purpose registers.
pub const NUM_GPRS: usize = 8;
/// Number of µop temporary registers introduced by instruction cracking.
pub const NUM_TEMPS: usize = 8;
/// Total number of renameable architectural registers (GPRs + EIP + EFLAGS + temps).
pub const NUM_ARCH_REGS: usize = NUM_GPRS + 2 + NUM_TEMPS;

/// An architectural (logical) register name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ArchReg {
    /// General purpose register EAX.
    Eax,
    /// General purpose register EBX.
    Ebx,
    /// General purpose register ECX.
    Ecx,
    /// General purpose register EDX.
    Edx,
    /// General purpose register ESI.
    Esi,
    /// General purpose register EDI.
    Edi,
    /// General purpose register EBP.
    Ebp,
    /// General purpose register ESP.
    Esp,
    /// Instruction pointer (used by the frontend branch-address resolution of §3.3).
    Eip,
    /// The flags / condition-code register.
    Eflags,
    /// µop temporary register.
    Temp(u8),
}

impl ArchReg {
    /// All general purpose registers, in encoding order.
    pub const GPRS: [ArchReg; NUM_GPRS] = [
        ArchReg::Eax,
        ArchReg::Ebx,
        ArchReg::Ecx,
        ArchReg::Edx,
        ArchReg::Esi,
        ArchReg::Edi,
        ArchReg::Ebp,
        ArchReg::Esp,
    ];

    /// Dense index of this register in `[0, NUM_ARCH_REGS)`, suitable for
    /// indexing rename tables.
    pub fn index(self) -> usize {
        match self {
            ArchReg::Eax => 0,
            ArchReg::Ebx => 1,
            ArchReg::Ecx => 2,
            ArchReg::Edx => 3,
            ArchReg::Esi => 4,
            ArchReg::Edi => 5,
            ArchReg::Ebp => 6,
            ArchReg::Esp => 7,
            ArchReg::Eip => 8,
            ArchReg::Eflags => 9,
            ArchReg::Temp(t) => 10 + (t as usize % NUM_TEMPS),
        }
    }

    /// Inverse of [`ArchReg::index`].
    pub fn from_index(idx: usize) -> ArchReg {
        match idx {
            0 => ArchReg::Eax,
            1 => ArchReg::Ebx,
            2 => ArchReg::Ecx,
            3 => ArchReg::Edx,
            4 => ArchReg::Esi,
            5 => ArchReg::Edi,
            6 => ArchReg::Ebp,
            7 => ArchReg::Esp,
            8 => ArchReg::Eip,
            9 => ArchReg::Eflags,
            n => ArchReg::Temp(((n - 10) % NUM_TEMPS) as u8),
        }
    }

    /// Whether this is the flags register.
    pub fn is_flags(self) -> bool {
        matches!(self, ArchReg::Eflags)
    }

    /// Whether this register typically holds addresses (stack / base pointers).
    /// Address-holding registers are a strong hint for wide values; the
    /// workload generator uses this to produce realistic value distributions.
    pub fn is_pointer_like(self) -> bool {
        matches!(
            self,
            ArchReg::Esp | ArchReg::Ebp | ArchReg::Esi | ArchReg::Edi
        )
    }
}

impl std::fmt::Display for ArchReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchReg::Eax => write!(f, "eax"),
            ArchReg::Ebx => write!(f, "ebx"),
            ArchReg::Ecx => write!(f, "ecx"),
            ArchReg::Edx => write!(f, "edx"),
            ArchReg::Esi => write!(f, "esi"),
            ArchReg::Edi => write!(f, "edi"),
            ArchReg::Ebp => write!(f, "ebp"),
            ArchReg::Esp => write!(f, "esp"),
            ArchReg::Eip => write!(f, "eip"),
            ArchReg::Eflags => write!(f, "eflags"),
            ArchReg::Temp(t) => write!(f, "t{t}"),
        }
    }
}

/// A physical register identifier inside one backend's register file.
///
/// Physical registers are cluster-local: the wide backend and the helper
/// backend each own a register file (the paper's design does *not* replicate
/// the register file across clusters, unlike the related ICS'05 proposal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhysReg(pub u16);

impl PhysReg {
    /// Raw index into the owning register file.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for PhysReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for idx in 0..NUM_ARCH_REGS {
            assert_eq!(ArchReg::from_index(idx).index(), idx);
        }
    }

    #[test]
    fn gpr_indices_are_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for r in ArchReg::GPRS {
            assert!(r.index() < NUM_GPRS);
            assert!(seen.insert(r.index()));
        }
    }

    #[test]
    fn temp_wraps_modulo_num_temps() {
        assert_eq!(
            ArchReg::Temp(0).index(),
            ArchReg::Temp(NUM_TEMPS as u8).index()
        );
    }

    #[test]
    fn flags_detection() {
        assert!(ArchReg::Eflags.is_flags());
        assert!(!ArchReg::Eax.is_flags());
    }

    #[test]
    fn display_names() {
        assert_eq!(ArchReg::Eax.to_string(), "eax");
        assert_eq!(ArchReg::Temp(3).to_string(), "t3");
        assert_eq!(PhysReg(42).to_string(), "p42");
    }
}
