//! Memory access descriptors.

use crate::uop::MemSize;
use serde::{Deserialize, Serialize};

/// A dynamic memory access performed by a load or store µop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemAccess {
    /// Effective (virtual) byte address.
    pub addr: u32,
    /// Access size.
    pub size: MemSize,
    /// Whether the access is a store.
    pub is_store: bool,
}

impl MemAccess {
    /// A load access.
    pub fn load(addr: u32, size: MemSize) -> MemAccess {
        MemAccess {
            addr,
            size,
            is_store: false,
        }
    }

    /// A store access.
    pub fn store(addr: u32, size: MemSize) -> MemAccess {
        MemAccess {
            addr,
            size,
            is_store: true,
        }
    }

    /// Cache-line address for a given line size (must be a power of two).
    pub fn line_addr(&self, line_bytes: u32) -> u32 {
        debug_assert!(line_bytes.is_power_of_two());
        self.addr & !(line_bytes - 1)
    }

    /// Whether two accesses overlap in memory (byte granularity).
    pub fn overlaps(&self, other: &MemAccess) -> bool {
        let a0 = self.addr as u64;
        let a1 = a0 + self.size.bytes() as u64;
        let b0 = other.addr as u64;
        let b1 = b0 + other.size.bytes() as u64;
        a0 < b1 && b0 < a1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_address_masks_low_bits() {
        let a = MemAccess::load(0x1234_5678, MemSize::DWord);
        assert_eq!(a.line_addr(64), 0x1234_5640);
        assert_eq!(a.line_addr(32), 0x1234_5660);
    }

    #[test]
    fn overlap_detection() {
        let a = MemAccess::store(100, MemSize::DWord); // [100,104)
        let b = MemAccess::load(103, MemSize::Byte); // [103,104)
        let c = MemAccess::load(104, MemSize::DWord); // [104,108)
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn constructors_set_store_flag() {
        assert!(!MemAccess::load(0, MemSize::Byte).is_store);
        assert!(MemAccess::store(0, MemSize::Byte).is_store);
    }
}
