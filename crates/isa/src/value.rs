//! 32-bit data values and data-width introspection.
//!
//! The paper's helper cluster operates on *narrow* values: values that can be
//! represented with fewer bits than the full 32-bit machine width.  §2.1
//! detects narrow values with leading-zero / leading-one detectors — a value is
//! narrow if all of its upper bits are zeroes (small unsigned / positive
//! number) or all ones (small negative two's-complement number).

use serde::{Deserialize, Serialize};

/// A 32-bit machine data value.
///
/// The wrapper exists so that data-width questions ("is this representable in
/// 8 bits?") are answered in exactly one place, mirroring the leading-zero and
/// leading-one detector circuits of Figure 3 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Value(pub u32);

impl Value {
    /// The zero value.
    pub const ZERO: Value = Value(0);

    /// Construct a value from a raw 32-bit pattern.
    #[inline]
    pub const fn new(bits: u32) -> Self {
        Value(bits)
    }

    /// Construct from a signed integer (two's complement representation).
    #[inline]
    pub const fn from_i32(v: i32) -> Self {
        Value(v as u32)
    }

    /// Raw bit pattern.
    #[inline]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Value interpreted as signed two's complement.
    #[inline]
    pub const fn as_i32(self) -> i32 {
        self.0 as i32
    }

    /// Number of leading zero bits (the paper's consecutive-zero detector).
    #[inline]
    pub const fn leading_zeros(self) -> u32 {
        self.0.leading_zeros()
    }

    /// Number of leading one bits (the paper's consecutive-one detector).
    #[inline]
    pub const fn leading_ones(self) -> u32 {
        self.0.leading_ones()
    }

    /// The *effective width* of the value in bits as the paper's hardware
    /// detectors see it: `32 - max(leading_zeros, leading_ones)`, clamped to a
    /// minimum of 1.
    ///
    /// A value is considered representable in `w` bits when all bits above
    /// bit `w-1` are identical *and* equal to either all-zeros or all-ones —
    /// exactly what the consecutive-zero / consecutive-one detector circuits
    /// of Figure 3 report.  Examples: `0` and `-1` have width 1, `127` has
    /// width 7, `255` and `-256` have width 8, `256` has width 9.
    #[inline]
    pub const fn effective_width(self) -> u32 {
        let lz = self.0.leading_zeros();
        let lo = self.0.leading_ones();
        let redundant = if lz > lo { lz } else { lo };
        let w = 32 - redundant;
        if w == 0 {
            1
        } else {
            w
        }
    }

    /// Whether the value is narrow at a width of `bits`: all bits above
    /// bit `bits-1` are all-zero (small unsigned / positive value) or all-one
    /// (small negative value).
    ///
    /// This is the "narrow value" test of the paper when `bits == 8`: the
    /// upper 24 bits carry no information and the helper cluster can operate
    /// on the low byte alone.
    #[inline]
    pub const fn fits_in(self, bits: u32) -> bool {
        if bits >= 32 {
            return true;
        }
        let upper = self.0 >> bits;
        let mask = (1u32 << (32 - bits)) - 1;
        upper == 0 || upper == mask
    }

    /// Whether the value is narrow in the paper's sense (≤ 8 bits).
    #[inline]
    pub const fn is_narrow(self) -> bool {
        self.fits_in(crate::width::NARROW_BITS)
    }

    /// Whether the value fits in `bits` bits treated as *unsigned* (all upper
    /// bits zero).  Useful for addresses and zero-extended loads.
    #[inline]
    pub const fn fits_unsigned(self, bits: u32) -> bool {
        if bits >= 32 {
            return true;
        }
        self.0 >> bits == 0
    }

    /// The low 8 bits of the value (the part the helper cluster operates on).
    #[inline]
    pub const fn low_byte(self) -> u8 {
        (self.0 & 0xFF) as u8
    }

    /// The upper 24 bits of the value (the part kept in the wide cluster under
    /// the CR scheme, §3.5).
    #[inline]
    pub const fn upper_bits(self) -> u32 {
        self.0 >> 8
    }

    /// The bits above bit `bits-1` — the generalisation of
    /// [`Value::upper_bits`] to an arbitrary helper datapath width, used when
    /// the CR carry check runs on a 4- or 16-bit helper cluster.
    #[inline]
    pub const fn upper_bits_within(self, bits: u32) -> u32 {
        if bits >= 32 {
            0
        } else {
            self.0 >> bits
        }
    }

    /// Replace the low 8 bits, keeping the upper 24 bits.
    #[inline]
    pub const fn with_low_byte(self, b: u8) -> Value {
        Value((self.0 & 0xFFFF_FF00) | b as u32)
    }

    /// Wrapping addition, also reporting whether a carry propagated out of the
    /// low 8 bits — the condition the CR (carry-width prediction) scheme of
    /// §3.5 relies on.
    #[inline]
    pub fn add_with_byte_carry(self, rhs: Value) -> (Value, bool) {
        let sum = self.0.wrapping_add(rhs.0);
        let low_sum = (self.0 & 0xFF) + (rhs.0 & 0xFF);
        (Value(sum), low_sum > 0xFF)
    }

    /// Whether adding `rhs` to `self` leaves the upper 24 bits of the larger
    /// operand unchanged (i.e. the operation is effectively an 8-bit
    /// operation).  This is the exact condition illustrated in Figure 10.
    #[inline]
    pub fn add_preserves_upper_bits(self, rhs: Value) -> bool {
        let sum = self.0.wrapping_add(rhs.0);
        let (wide, _narrow) = if self.effective_width() >= rhs.effective_width() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        sum >> 8 == wide.0 >> 8
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value(v as u32)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl std::ops::Add for Value {
    type Output = Value;
    fn add(self, rhs: Value) -> Value {
        Value(self.0.wrapping_add(rhs.0))
    }
}

impl std::ops::Sub for Value {
    type Output = Value;
    fn sub(self, rhs: Value) -> Value {
        Value(self.0.wrapping_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_narrow() {
        assert!(Value::ZERO.is_narrow());
        assert_eq!(Value::ZERO.effective_width(), 1);
    }

    #[test]
    fn minus_one_is_narrow() {
        let v = Value::from_i32(-1);
        assert!(v.is_narrow());
        assert_eq!(v.effective_width(), 1);
    }

    #[test]
    fn boundary_widths() {
        // The detector semantics: upper bits all-zero or all-one.
        assert!(Value::from_i32(127).is_narrow());
        assert!(Value::from_i32(-128).is_narrow());
        assert!(Value::from_i32(255).is_narrow());
        assert!(Value::from_i32(-256).is_narrow());
        assert!(!Value::from_i32(256).is_narrow());
        assert!(!Value::from_i32(-257).is_narrow());
        assert_eq!(Value::from_i32(127).effective_width(), 7);
        assert_eq!(Value::from_i32(255).effective_width(), 8);
        assert_eq!(Value::from_i32(256).effective_width(), 9);
        assert_eq!(Value::from_i32(-256).effective_width(), 8);
        assert_eq!(Value::from_i32(-257).effective_width(), 9);
    }

    #[test]
    fn unsigned_byte_values_are_narrow() {
        // 255's upper 24 bits are all zero, so the leading-zero detector
        // classifies it as narrow even though it needs 9 bits signed.
        let v = Value::new(0xFF);
        assert!(v.fits_unsigned(8));
        assert!(v.fits_in(8));
    }

    #[test]
    fn full_width_values() {
        // The widest possible value under detector semantics needs 31 bits:
        // the most significant bit always starts a (length-one) run.
        let v = Value::new(0x8000_0000);
        assert_eq!(v.effective_width(), 31);
        assert!(v.fits_in(32));
        assert!(v.fits_in(31));
        assert!(!v.fits_in(30));
        assert!(!v.is_narrow());
    }

    #[test]
    fn low_byte_and_upper_bits_roundtrip() {
        let v = Value::new(0xFFFC_4A02);
        assert_eq!(v.low_byte(), 0x02);
        assert_eq!(v.upper_bits(), 0xFFFC4A);
        assert_eq!(v.with_low_byte(0x1E).bits(), 0xFFFC_4A1E);
    }

    #[test]
    fn figure_10_example_carry_not_propagated() {
        // Loadbyte R1, (R2+R3) with R2 = FFFC4A02, R3 = 0000001C.
        let r2 = Value::new(0xFFFC_4A02);
        let r3 = Value::new(0x0000_001C);
        let (sum, carry) = r2.add_with_byte_carry(r3);
        assert_eq!(sum.bits(), 0xFFFC_4A1E);
        assert!(!carry);
        assert!(r2.add_preserves_upper_bits(r3));
    }

    #[test]
    fn carry_propagation_detected() {
        let base = Value::new(0x0000_10F0);
        let off = Value::new(0x0000_0020);
        let (sum, carry) = base.add_with_byte_carry(off);
        assert_eq!(sum.bits(), 0x0000_1110);
        assert!(carry);
        assert!(!base.add_preserves_upper_bits(off));
    }

    #[test]
    fn leading_detectors() {
        assert_eq!(Value::new(0x0000_00FF).leading_zeros(), 24);
        assert_eq!(Value::new(0xFFFF_FF00).leading_ones(), 24);
    }

    #[test]
    fn arithmetic_wraps() {
        let a = Value::new(u32::MAX);
        let b = Value::new(1);
        assert_eq!((a + b).bits(), 0);
        assert_eq!((Value::new(0) - b).bits(), u32::MAX);
    }
}
