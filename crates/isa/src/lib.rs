//! # hc-isa
//!
//! IA-32-like micro-op (µop) ISA model used by the helper-cluster reproduction.
//!
//! The paper evaluates its steering policies on an Intel IA-32 trace-driven
//! simulator: the frontend translates IA-32 macro instructions into µops which
//! are then renamed, steered and executed in one of two backends (a 32-bit
//! "wide" cluster and an 8-bit "helper" cluster).  This crate models the pieces
//! that every other crate needs to agree on:
//!
//! * [`value::Value`] — 32-bit data values with *data-width* introspection
//!   (leading-zero / leading-one detection, §2.1 of the paper).
//! * [`reg`] — architectural and physical register identifiers.
//! * [`flags`] — the EFLAGS condition-code register produced by arithmetic µops
//!   and consumed by conditional branches (needed for the BR policy, §3.3).
//! * [`uop`] — the static µop description (opcode class, sources, destination,
//!   immediate, flag behaviour).
//! * [`dynuop`] — a dynamic µop instance as recorded in a trace: the static µop
//!   plus the runtime values it read and produced, its memory address and
//!   branch outcome.  Steering decisions are made *before* execution, but the
//!   trace-driven simulator (and the width predictors' update path) need the
//!   ground-truth values.
//! * [`width`] — data-width classification helpers (8-8-8, 8-32-32, … operand
//!   profiles used throughout §3).
//! * [`mem`] — memory access descriptors.
//! * [`codec`] — the compact binary encoding of dynamic µops used by on-disk
//!   trace files, versioned by [`ISA_ENCODING_VERSION`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod dynuop;
pub mod flags;
pub mod mem;
pub mod reg;
pub mod uop;
pub mod value;
pub mod width;

pub use codec::{
    decode_uops, encode_uop, encode_uops, CodecError, UopDecoder, ISA_ENCODING_VERSION,
};
pub use dynuop::DynUop;
pub use flags::Flags;
pub use mem::MemAccess;
pub use reg::{ArchReg, PhysReg};
pub use uop::{AluOp, BranchCond, Uop, UopKind};
pub use value::Value;
pub use width::{OperandProfile, WidthClass, NARROW_BITS};
