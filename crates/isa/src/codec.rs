//! Compact binary encoding of [`DynUop`] for on-disk µop traces.
//!
//! The encoding is variable length: a fixed four-byte prelude (kind tag plus
//! three presence bitmaps) followed by only the fields that are present, in a
//! fixed order.  Program counters and branch targets are LEB128 varints (µop
//! PCs are small and dense); 32-bit values are little-endian; registers are
//! their dense [`ArchReg::index`] byte; flags are the packed EFLAGS byte of
//! [`Flags::pack`].  A typical ALU µop with two sources encodes in ~20 bytes
//! against ~120 bytes of in-memory struct.
//!
//! Every reserved bit must decode as zero and every tag must be known —
//! decoding is strict so that trace-file corruption surfaces as a typed
//! [`CodecError`], never as a quietly different µop.  The layout is versioned
//! by [`ISA_ENCODING_VERSION`], which trace-file headers record; any change
//! to this module that alters bytes must bump it.

use crate::dynuop::DynUop;
use crate::flags::Flags;
use crate::mem::MemAccess;
use crate::reg::{ArchReg, NUM_ARCH_REGS};
use crate::uop::{AluOp, BranchCond, MemSize, Uop, UopKind, MAX_SRCS};
use crate::value::Value;

/// Version of the byte layout produced by [`encode_uop`].  Recorded in trace
/// file headers; bump on any change to the encoding.
pub const ISA_ENCODING_VERSION: u32 = 1;

/// A strict-decode failure.  Every variant means the bytes cannot have been
/// produced by [`encode_uop`] under the current [`ISA_ENCODING_VERSION`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The kind tag byte does not name a [`UopKind`].
    UnknownKindTag(u8),
    /// A reserved bit was set in the named field.
    ReservedBits(&'static str),
    /// The buffer ended mid-µop.
    ShortBuffer,
    /// A register index byte is outside `[0, NUM_ARCH_REGS)`.
    BadRegIndex(u8),
    /// A varint ran past 10 bytes (more than 64 bits of payload).
    BadVarint,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnknownKindTag(t) => write!(f, "unknown µop kind tag {t:#04x}"),
            CodecError::ReservedBits(field) => write!(f, "reserved bits set in {field}"),
            CodecError::ShortBuffer => write!(f, "buffer ended mid-µop"),
            CodecError::BadRegIndex(i) => write!(f, "register index {i} out of range"),
            CodecError::BadVarint => write!(f, "varint longer than 64 bits"),
        }
    }
}

impl std::error::Error for CodecError {}

const KIND_ALU_BASE: u8 = 0; // ..=14, AluOp in declaration order
const KIND_MUL: u8 = 15;
const KIND_DIV: u8 = 16;
const KIND_LOAD_BASE: u8 = 17; // ..=19, MemSize in declaration order
const KIND_STORE_BASE: u8 = 20; // ..=22
const KIND_BRANCH_BASE: u8 = 23; // ..=30, BranchCond in declaration order
const KIND_JUMP: u8 = 31;
const KIND_FP: u8 = 32;
const KIND_COPY: u8 = 33;
const KIND_NOP: u8 = 34;

const ALU_OPS: [AluOp; 15] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Sar,
    AluOp::Mov,
    AluOp::Cmp,
    AluOp::Test,
    AluOp::Inc,
    AluOp::Dec,
    AluOp::Neg,
    AluOp::Not,
];
const MEM_SIZES: [MemSize; 3] = [MemSize::Byte, MemSize::Word, MemSize::DWord];
const BRANCH_CONDS: [BranchCond; 8] = [
    BranchCond::Eq,
    BranchCond::Ne,
    BranchCond::Lt,
    BranchCond::Ge,
    BranchCond::Gt,
    BranchCond::Le,
    BranchCond::B,
    BranchCond::Ae,
];

fn kind_tag(kind: UopKind) -> u8 {
    match kind {
        UopKind::Alu(op) => KIND_ALU_BASE + ALU_OPS.iter().position(|&o| o == op).unwrap() as u8,
        UopKind::Mul => KIND_MUL,
        UopKind::Div => KIND_DIV,
        UopKind::Load(s) => KIND_LOAD_BASE + MEM_SIZES.iter().position(|&m| m == s).unwrap() as u8,
        UopKind::Store(s) => {
            KIND_STORE_BASE + MEM_SIZES.iter().position(|&m| m == s).unwrap() as u8
        }
        UopKind::CondBranch(c) => {
            KIND_BRANCH_BASE + BRANCH_CONDS.iter().position(|&b| b == c).unwrap() as u8
        }
        UopKind::Jump => KIND_JUMP,
        UopKind::Fp => KIND_FP,
        UopKind::Copy => KIND_COPY,
        UopKind::Nop => KIND_NOP,
    }
}

fn kind_from_tag(tag: u8) -> Result<UopKind, CodecError> {
    Ok(match tag {
        t if t < KIND_MUL => UopKind::Alu(ALU_OPS[t as usize]),
        KIND_MUL => UopKind::Mul,
        KIND_DIV => UopKind::Div,
        t if (KIND_LOAD_BASE..KIND_STORE_BASE).contains(&t) => {
            UopKind::Load(MEM_SIZES[(t - KIND_LOAD_BASE) as usize])
        }
        t if (KIND_STORE_BASE..KIND_BRANCH_BASE).contains(&t) => {
            UopKind::Store(MEM_SIZES[(t - KIND_STORE_BASE) as usize])
        }
        t if (KIND_BRANCH_BASE..KIND_JUMP).contains(&t) => {
            UopKind::CondBranch(BRANCH_CONDS[(t - KIND_BRANCH_BASE) as usize])
        }
        KIND_JUMP => UopKind::Jump,
        KIND_FP => UopKind::Fp,
        KIND_COPY => UopKind::Copy,
        KIND_NOP => UopKind::Nop,
        t => return Err(CodecError::UnknownKindTag(t)),
    })
}

fn mem_size_tag(size: MemSize) -> u8 {
    MEM_SIZES.iter().position(|&m| m == size).unwrap() as u8
}

// Presence byte 1: static-uop / dynamic scalar fields.
const P1_WRITES_FLAGS: u8 = 1 << 0;
const P1_READS_FLAGS: u8 = 1 << 1;
const P1_DEST: u8 = 1 << 2;
const P1_IMM: u8 = 1 << 3;
const P1_RESULT: u8 = 1 << 4;
const P1_FLAGS_OUT: u8 = 1 << 5;
const P1_FLAGS_IN: u8 = 1 << 6;
const P1_MEM: u8 = 1 << 7;

// Presence byte 2: per-slot source presence plus the branch outcome.
const P2_SRC_REG_SHIFT: u8 = 0; // bits 0..3
const P2_SRC_VAL_SHIFT: u8 = 3; // bits 3..6
const P2_TAKEN_PRESENT: u8 = 1 << 6;
const P2_TAKEN: u8 = 1 << 7;

// Presence byte 3: branch target; the rest is reserved.
const P3_TARGET: u8 = 1 << 0;
const P3_RESERVED: u8 = !P3_TARGET;

// The packed-EFLAGS byte of `Flags::pack` uses bits {0, 2, 3, 4, 5}.
const FLAGS_MASK: u8 = 0b0011_1101;

// Mem descriptor byte: size tag in bits 0..2, is_store in bit 2.
const MEM_STORE: u8 = 1 << 2;
const MEM_RESERVED: u8 = !0b0000_0111;

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append the encoding of `duop` to `out`.
pub fn encode_uop(out: &mut Vec<u8>, duop: &DynUop) {
    let uop = &duop.uop;
    let mut p1 = 0u8;
    let mut p2 = 0u8;
    let mut p3 = 0u8;
    if uop.writes_flags {
        p1 |= P1_WRITES_FLAGS;
    }
    if uop.reads_flags {
        p1 |= P1_READS_FLAGS;
    }
    if uop.dest.is_some() {
        p1 |= P1_DEST;
    }
    if uop.imm.is_some() {
        p1 |= P1_IMM;
    }
    if duop.result.is_some() {
        p1 |= P1_RESULT;
    }
    if duop.flags_out.is_some() {
        p1 |= P1_FLAGS_OUT;
    }
    if duop.flags_in.is_some() {
        p1 |= P1_FLAGS_IN;
    }
    if duop.mem.is_some() {
        p1 |= P1_MEM;
    }
    for slot in 0..MAX_SRCS {
        if uop.srcs[slot].is_some() {
            p2 |= 1 << (P2_SRC_REG_SHIFT + slot as u8);
        }
        if duop.src_vals[slot].is_some() {
            p2 |= 1 << (P2_SRC_VAL_SHIFT + slot as u8);
        }
    }
    if let Some(taken) = duop.taken {
        p2 |= P2_TAKEN_PRESENT;
        if taken {
            p2 |= P2_TAKEN;
        }
    }
    if duop.target.is_some() {
        p3 |= P3_TARGET;
    }

    out.push(kind_tag(uop.kind));
    out.push(p1);
    out.push(p2);
    out.push(p3);
    push_varint(out, uop.pc);
    for src in uop.srcs.iter().flatten() {
        out.push(src.index() as u8);
    }
    if let Some(dest) = uop.dest {
        out.push(dest.index() as u8);
    }
    if let Some(imm) = uop.imm {
        push_u32(out, imm.bits());
    }
    for val in duop.src_vals.iter().flatten() {
        push_u32(out, val.bits());
    }
    if let Some(result) = duop.result {
        push_u32(out, result.bits());
    }
    if let Some(flags) = duop.flags_out {
        out.push(flags.pack().bits() as u8);
    }
    if let Some(flags) = duop.flags_in {
        out.push(flags.pack().bits() as u8);
    }
    if let Some(mem) = duop.mem {
        push_u32(out, mem.addr);
        let mut byte = mem_size_tag(mem.size);
        if mem.is_store {
            byte |= MEM_STORE;
        }
        out.push(byte);
    }
    if let Some(target) = duop.target {
        push_varint(out, target);
    }
}

/// A strict decoder over a byte slice of encoded µops.
pub struct UopDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> UopDecoder<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> UopDecoder<'a> {
        UopDecoder { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Whether the buffer is exhausted.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn byte(&mut self) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.pos).ok_or(CodecError::ShortBuffer)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let end = self.pos.checked_add(4).ok_or(CodecError::ShortBuffer)?;
        let bytes = self.buf.get(self.pos..end).ok_or(CodecError::ShortBuffer)?;
        self.pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    fn varint(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        for i in 0..10 {
            let byte = self.byte()?;
            if i == 9 && byte > 1 {
                return Err(CodecError::BadVarint);
            }
            v |= ((byte & 0x7f) as u64) << (7 * i);
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(CodecError::BadVarint)
    }

    fn reg(&mut self) -> Result<ArchReg, CodecError> {
        let idx = self.byte()?;
        if (idx as usize) >= NUM_ARCH_REGS {
            return Err(CodecError::BadRegIndex(idx));
        }
        Ok(ArchReg::from_index(idx as usize))
    }

    fn flags(&mut self) -> Result<Flags, CodecError> {
        let byte = self.byte()?;
        if byte & !FLAGS_MASK != 0 {
            return Err(CodecError::ReservedBits("packed flags"));
        }
        Ok(Flags::unpack(Value::new(byte as u32)))
    }

    /// Decode the next µop.  `Ok(None)` at a clean end of buffer.
    pub fn next_uop(&mut self) -> Result<Option<DynUop>, CodecError> {
        if self.is_empty() {
            return Ok(None);
        }
        let tag = self.byte()?;
        let kind = kind_from_tag(tag)?;
        let p1 = self.byte()?;
        let p2 = self.byte()?;
        let p3 = self.byte()?;
        if p3 & P3_RESERVED != 0 {
            return Err(CodecError::ReservedBits("presence byte 3"));
        }
        if p2 & P2_TAKEN != 0 && p2 & P2_TAKEN_PRESENT == 0 {
            return Err(CodecError::ReservedBits("taken without taken-present"));
        }
        let pc = self.varint()?;
        let mut uop = Uop::new(pc, kind);
        uop.writes_flags = p1 & P1_WRITES_FLAGS != 0;
        uop.reads_flags = p1 & P1_READS_FLAGS != 0;
        for (slot, src) in uop.srcs.iter_mut().enumerate() {
            if p2 & (1 << (P2_SRC_REG_SHIFT + slot as u8)) != 0 {
                *src = Some(self.reg()?);
            }
        }
        if p1 & P1_DEST != 0 {
            uop.dest = Some(self.reg()?);
        }
        if p1 & P1_IMM != 0 {
            uop.imm = Some(Value::new(self.u32()?));
        }
        let mut duop = DynUop::from_uop(uop);
        for slot in 0..MAX_SRCS {
            if p2 & (1 << (P2_SRC_VAL_SHIFT + slot as u8)) != 0 {
                duop.src_vals[slot] = Some(Value::new(self.u32()?));
            }
        }
        if p1 & P1_RESULT != 0 {
            duop.result = Some(Value::new(self.u32()?));
        }
        if p1 & P1_FLAGS_OUT != 0 {
            duop.flags_out = Some(self.flags()?);
        }
        if p1 & P1_FLAGS_IN != 0 {
            duop.flags_in = Some(self.flags()?);
        }
        if p1 & P1_MEM != 0 {
            let addr = self.u32()?;
            let byte = self.byte()?;
            if byte & MEM_RESERVED != 0 {
                return Err(CodecError::ReservedBits("mem descriptor"));
            }
            let size = *MEM_SIZES
                .get((byte & 0b11) as usize)
                .ok_or(CodecError::ReservedBits("mem size tag"))?;
            duop.mem = Some(MemAccess {
                addr,
                size,
                is_store: byte & MEM_STORE != 0,
            });
        }
        if p2 & P2_TAKEN_PRESENT != 0 {
            duop.taken = Some(p2 & P2_TAKEN != 0);
        }
        if p3 & P3_TARGET != 0 {
            duop.target = Some(self.varint()?);
        }
        Ok(Some(duop))
    }
}

/// Encode a slice of µops into a fresh buffer.
pub fn encode_uops(uops: &[DynUop]) -> Vec<u8> {
    let mut out = Vec::with_capacity(uops.len() * 24);
    for duop in uops {
        encode_uop(&mut out, duop);
    }
    out
}

/// Decode an entire buffer of µops; the buffer must contain nothing else.
pub fn decode_uops(buf: &[u8]) -> Result<Vec<DynUop>, CodecError> {
    let mut decoder = UopDecoder::new(buf);
    let mut out = Vec::new();
    while let Some(duop) = decoder.next_uop()? {
        out.push(duop);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_uops() -> Vec<DynUop> {
        let alu = Uop::new(0x40_1000, UopKind::Alu(AluOp::Add))
            .with_src(ArchReg::Eax)
            .with_src(ArchReg::Ebx)
            .with_dest(ArchReg::Eax)
            .with_imm(Value::new(0x1234))
            .writing_flags();
        let mut d0 = DynUop::from_uop(alu);
        d0.src_vals[0] = Some(Value::new(5));
        d0.src_vals[1] = Some(Value::new(0xFFFF_FF00));
        d0.result = Some(Value::new(0xFFFF_FF05));
        d0.flags_out = Some(Flags {
            zf: false,
            sf: true,
            cf: true,
            of: false,
            pf: true,
        });

        let load = Uop::new(7, UopKind::Load(MemSize::Word))
            .with_src(ArchReg::Esp)
            .with_dest(ArchReg::Temp(3));
        let mut d1 = DynUop::from_uop(load);
        d1.src_vals[0] = Some(Value::new(0x7fff_0000));
        d1.result = Some(Value::new(42));
        d1.mem = Some(MemAccess::load(0x7fff_0000, MemSize::Word));

        let br = Uop::new(
            u64::from(u32::MAX) + 99,
            UopKind::CondBranch(BranchCond::Le),
        )
        .reading_flags();
        let mut d2 = DynUop::from_uop(br);
        d2.flags_in = Some(Flags::default());
        d2.taken = Some(true);
        d2.target = Some(0x123_4567_89ab);

        let nop = DynUop::from_uop(Uop::new(0, UopKind::Nop));
        vec![d0, d1, d2, nop]
    }

    #[test]
    fn round_trip_sample_uops() {
        let uops = sample_uops();
        let bytes = encode_uops(&uops);
        let back = decode_uops(&bytes).expect("decode");
        assert_eq!(back, uops);
    }

    #[test]
    fn every_kind_tag_round_trips() {
        let mut kinds: Vec<UopKind> = ALU_OPS.iter().map(|&op| UopKind::Alu(op)).collect();
        kinds.extend([UopKind::Mul, UopKind::Div]);
        kinds.extend(MEM_SIZES.iter().map(|&s| UopKind::Load(s)));
        kinds.extend(MEM_SIZES.iter().map(|&s| UopKind::Store(s)));
        kinds.extend(BRANCH_CONDS.iter().map(|&c| UopKind::CondBranch(c)));
        kinds.extend([UopKind::Jump, UopKind::Fp, UopKind::Copy, UopKind::Nop]);
        for (i, &kind) in kinds.iter().enumerate() {
            assert_eq!(kind_tag(kind), i as u8, "tags are dense and ordered");
            assert_eq!(kind_from_tag(i as u8), Ok(kind));
            let duop = DynUop::from_uop(Uop::new(i as u64, kind));
            let bytes = encode_uops(&[duop]);
            assert_eq!(decode_uops(&bytes).expect("decode"), vec![duop]);
        }
        assert!(kind_from_tag(KIND_NOP + 1).is_err());
    }

    #[test]
    fn truncated_buffer_is_a_typed_error() {
        let bytes = encode_uops(&sample_uops());
        for cut in 1..bytes.len() {
            match decode_uops(&bytes[..cut]) {
                Ok(uops) => {
                    // A cut on a µop boundary decodes a clean prefix.
                    assert!(uops.len() < 4);
                }
                Err(e) => assert!(
                    matches!(
                        e,
                        CodecError::ShortBuffer
                            | CodecError::UnknownKindTag(_)
                            | CodecError::ReservedBits(_)
                            | CodecError::BadRegIndex(_)
                            | CodecError::BadVarint
                    ),
                    "unexpected error {e:?}"
                ),
            }
        }
    }

    #[test]
    fn reserved_bits_rejected() {
        let mut bytes = encode_uops(&[DynUop::from_uop(Uop::new(0, UopKind::Nop))]);
        bytes[3] |= 0x80; // presence byte 3 reserved bit
        assert_eq!(
            decode_uops(&bytes),
            Err(CodecError::ReservedBits("presence byte 3"))
        );
    }

    #[test]
    fn bad_register_index_rejected() {
        let uop = Uop::new(0, UopKind::Alu(AluOp::Mov)).with_src(ArchReg::Eax);
        let mut bytes = encode_uops(&[DynUop::from_uop(uop)]);
        let reg_pos = bytes.len() - 1;
        bytes[reg_pos] = NUM_ARCH_REGS as u8;
        assert_eq!(
            decode_uops(&bytes),
            Err(CodecError::BadRegIndex(NUM_ARCH_REGS as u8))
        );
    }
}
