//! Dynamic µop instances — the unit stored in traces.
//!
//! The paper's evaluation is trace driven: each dynamic instruction carries
//! the ground-truth values it read and produced, so the simulator can (a)
//! resolve operand widths exactly at "writeback" time to train / verify the
//! width predictors, and (b) detect fatal width mispredictions that require a
//! flush.

use crate::flags::Flags;
use crate::mem::MemAccess;
use crate::uop::{Uop, MAX_SRCS};
use crate::value::Value;
use crate::width::OperandProfile;
use serde::{Deserialize, Serialize};

/// A dynamic µop: the static µop plus its runtime behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynUop {
    /// Static description.
    pub uop: Uop,
    /// Values of the register sources, parallel to `uop.srcs`.
    pub src_vals: [Option<Value>; MAX_SRCS],
    /// Value produced into the destination register, if any.
    pub result: Option<Value>,
    /// Flags produced, if the µop writes flags.
    pub flags_out: Option<Flags>,
    /// Flags value read, if the µop reads flags.
    pub flags_in: Option<Flags>,
    /// Memory access performed, if any.
    pub mem: Option<MemAccess>,
    /// For branches: whether the branch was taken.
    pub taken: Option<bool>,
    /// For branches: the target µop PC when taken.
    pub target: Option<u64>,
}

impl DynUop {
    /// Wrap a static µop with no runtime information (useful for constructing
    /// copies, splits and test fixtures).
    pub fn from_uop(uop: Uop) -> DynUop {
        DynUop {
            uop,
            src_vals: [None; MAX_SRCS],
            result: None,
            flags_out: None,
            flags_in: None,
            mem: None,
            taken: None,
            target: None,
        }
    }

    /// Values of the register sources that are present.
    pub fn source_values(&self) -> Vec<Value> {
        self.source_values_iter().collect()
    }

    /// Iterator over the register source values that are present, in slot
    /// order — the allocation-free form of [`DynUop::source_values`].
    pub fn source_values_iter(&self) -> impl Iterator<Item = Value> + '_ {
        self.src_vals.iter().flatten().copied()
    }

    /// Ground-truth operand-width profile of this dynamic instance.
    pub fn profile(&self) -> OperandProfile {
        OperandProfile::classify(&self.source_values(), self.result)
    }

    /// Whether every register source value is narrow (immediates have
    /// statically known widths and are checked separately).
    pub fn all_sources_narrow(&self) -> bool {
        self.all_sources_narrow_within(crate::width::NARROW_BITS)
    }

    /// [`DynUop::all_sources_narrow`] against an arbitrary helper datapath
    /// width in bits.
    pub fn all_sources_narrow_within(&self, bits: u32) -> bool {
        self.src_vals.iter().flatten().all(|v| v.fits_in(bits))
    }

    /// Whether the produced result (if any) is narrow.  µops without a result
    /// are vacuously narrow-result.
    pub fn result_narrow(&self) -> bool {
        self.result_narrow_within(crate::width::NARROW_BITS)
    }

    /// [`DynUop::result_narrow`] against an arbitrary helper datapath width.
    pub fn result_narrow_within(&self, bits: u32) -> bool {
        self.result.map(|v| v.fits_in(bits)).unwrap_or(true)
    }

    /// Whether the immediate (if any) is narrow.
    pub fn imm_narrow(&self) -> bool {
        self.imm_narrow_within(crate::width::NARROW_BITS)
    }

    /// [`DynUop::imm_narrow`] against an arbitrary helper datapath width.
    pub fn imm_narrow_within(&self, bits: u32) -> bool {
        self.uop.imm.map(|v| v.fits_in(bits)).unwrap_or(true)
    }

    /// The ground truth for the 8-8-8 steering condition of §3.2: all source
    /// operands, the immediate and the output need values of 8 bits or fewer.
    pub fn is_all_narrow(&self) -> bool {
        self.is_all_narrow_within(crate::width::NARROW_BITS)
    }

    /// [`DynUop::is_all_narrow`] against an arbitrary helper datapath width:
    /// the w-w-w steering condition of a w-bit helper cluster.
    pub fn is_all_narrow_within(&self, bits: u32) -> bool {
        self.all_sources_narrow_within(bits)
            && self.result_narrow_within(bits)
            && self.imm_narrow_within(bits)
    }

    /// Ground truth for the CR condition of §3.5: exactly one wide source, a
    /// wide result, and the operation did not change the upper 24 bits of the
    /// wide source (no carry propagated past bit 8).
    pub fn is_carry_free_8_32_32(&self) -> bool {
        self.is_carry_free_within(crate::width::NARROW_BITS)
    }

    /// [`DynUop::is_carry_free_8_32_32`] generalised to an arbitrary helper
    /// datapath width: the w-32-32 carry-free combination of a w-bit helper.
    pub fn is_carry_free_within(&self, bits: u32) -> bool {
        let result = match self.result {
            Some(r) if !r.fits_in(bits) => r,
            _ => return false,
        };
        let mut wide: Option<Value> = None;
        let mut wide_count = 0usize;
        let mut has_narrow_src = false;
        for v in self.source_values_iter() {
            if v.fits_in(bits) {
                has_narrow_src = true;
            } else {
                wide_count += 1;
                wide = Some(v);
            }
        }
        let has_narrow_side =
            has_narrow_src || self.uop.imm.map(|v| v.fits_in(bits)).unwrap_or(false);
        wide_count == 1
            && has_narrow_side
            && wide.map(|w| w.upper_bits_within(bits)) == Some(result.upper_bits_within(bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::ArchReg;
    use crate::uop::{AluOp, MemSize, UopKind};

    fn add_uop() -> Uop {
        Uop::new(0x100, UopKind::Alu(AluOp::Add))
            .with_src(ArchReg::Eax)
            .with_src(ArchReg::Ebx)
            .with_dest(ArchReg::Eax)
            .writing_flags()
    }

    #[test]
    fn all_narrow_ground_truth() {
        let mut d = DynUop::from_uop(add_uop());
        d.src_vals[0] = Some(Value::new(5));
        d.src_vals[1] = Some(Value::new(7));
        d.result = Some(Value::new(12));
        assert!(d.is_all_narrow());
        assert_eq!(d.profile(), OperandProfile::AllNarrow);
    }

    #[test]
    fn wide_result_breaks_all_narrow() {
        let mut d = DynUop::from_uop(add_uop());
        d.src_vals[0] = Some(Value::new(200));
        d.src_vals[1] = Some(Value::new(200));
        d.result = Some(Value::new(400));
        assert!(!d.is_all_narrow());
    }

    #[test]
    fn wide_immediate_breaks_all_narrow() {
        let u = Uop::new(0, UopKind::Alu(AluOp::Add))
            .with_src(ArchReg::Eax)
            .with_dest(ArchReg::Eax)
            .with_imm(Value::new(0x1000));
        let mut d = DynUop::from_uop(u);
        d.src_vals[0] = Some(Value::new(1));
        d.result = Some(Value::new(1));
        assert!(!d.is_all_narrow());
    }

    #[test]
    fn carry_free_detection_matches_figure_10() {
        let u = Uop::new(0, UopKind::Load(MemSize::Byte))
            .with_src(ArchReg::Ebx)
            .with_src(ArchReg::Ecx)
            .with_dest(ArchReg::Eax);
        let mut d = DynUop::from_uop(u);
        d.src_vals[0] = Some(Value::new(0xFFFC_4A02));
        d.src_vals[1] = Some(Value::new(0x1C));
        d.result = Some(Value::new(0xFFFC_4A1E));
        assert!(d.is_carry_free_8_32_32());
    }

    #[test]
    fn carry_free_requires_single_wide_source() {
        let u = Uop::new(0, UopKind::Alu(AluOp::Add))
            .with_src(ArchReg::Eax)
            .with_src(ArchReg::Ebx)
            .with_dest(ArchReg::Ecx);
        let mut d = DynUop::from_uop(u);
        d.src_vals[0] = Some(Value::new(0x1_0000));
        d.src_vals[1] = Some(Value::new(0x2_0000));
        d.result = Some(Value::new(0x3_0000));
        assert!(!d.is_carry_free_8_32_32());
    }

    #[test]
    fn narrow_result_is_not_carry_free_case() {
        let u = Uop::new(0, UopKind::Alu(AluOp::And))
            .with_src(ArchReg::Eax)
            .with_dest(ArchReg::Eax)
            .with_imm(Value::new(0xFF));
        let mut d = DynUop::from_uop(u);
        d.src_vals[0] = Some(Value::new(0x1234_5678));
        d.result = Some(Value::new(0x78));
        assert!(!d.is_carry_free_8_32_32());
    }

    #[test]
    fn no_result_uops_are_vacuously_narrow_result() {
        let u = Uop::new(0, UopKind::Store(MemSize::Byte))
            .with_src(ArchReg::Eax)
            .with_src(ArchReg::Ebx);
        let mut d = DynUop::from_uop(u);
        d.src_vals[0] = Some(Value::new(3));
        d.src_vals[1] = Some(Value::new(4));
        assert!(d.result_narrow());
        assert!(d.is_all_narrow());
    }
}
