//! The minimal HTTP/1.1 subset the campaign service speaks.
//!
//! Plain endpoints (`/healthz`, `/metrics`, `/shutdown`, rejections) are
//! `Content-Length`-framed and **keep the connection alive** by default, so
//! a client can run several exchanges over one TCP connection.  The
//! campaign stream is the exception: it has no predictable length, so its
//! response is `Connection: close` and the body runs to EOF (no chunked
//! transfer encoding to implement on either side).  Bodies are framed by
//! `Content-Length` on requests; header blocks and bodies are size-capped
//! so a hostile peer cannot balloon the daemon.

use crate::ServeError;
use std::io::{BufRead, Write};

/// Hard cap on a request's header block (request line + headers).
pub const MAX_HEAD_BYTES: usize = 64 * 1024;

/// Hard cap on a request body.  The largest legitimate payload — a full
/// 409-trace Table 2 scenario campaign spec — is well under 1 MiB; 16 MiB
/// leaves room for generated suites without letting a peer exhaust memory.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request path (query strings are not part of this protocol).
    pub path: String,
    /// Header name/value pairs, in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the request was HTTP/1.1 (persistent by default) rather
    /// than HTTP/1.0 (close by default).
    pub http11: bool,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection may serve another request after this one:
    /// HTTP/1.1 unless the client said `Connection: close`, HTTP/1.0 only
    /// if it said `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        let connection = self.header("connection").unwrap_or("");
        let has = |token: &str| {
            connection
                .split(',')
                .any(|t| t.trim().eq_ignore_ascii_case(token))
        };
        if has("close") {
            false
        } else {
            self.http11 || has("keep-alive")
        }
    }
}

/// Read one size-capped CRLF line (the terminator is stripped).
fn read_line<R: BufRead>(reader: &mut R, budget: &mut usize) -> Result<String, ServeError> {
    let mut line = String::new();
    let n = reader.read_line(&mut line)?;
    if n == 0 {
        return Err(ServeError::Protocol(
            "connection closed mid-header".to_string(),
        ));
    }
    *budget = budget.checked_sub(n).ok_or_else(|| {
        ServeError::Protocol(format!("header block exceeds {MAX_HEAD_BYTES} bytes"))
    })?;
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Parse a header block (everything after the start line, up to and
/// including the blank line) into lowercased name/value pairs.
fn read_headers<R: BufRead>(
    reader: &mut R,
    budget: &mut usize,
) -> Result<Vec<(String, String)>, ServeError> {
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, budget)?;
        if line.is_empty() {
            return Ok(headers);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ServeError::Protocol(format!("malformed header `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
}

/// Read a body of `Content-Length` bytes (0 when the header is absent).
fn read_body<R: BufRead>(
    reader: &mut R,
    headers: &[(String, String)],
) -> Result<Vec<u8>, ServeError> {
    // Every Content-Length header must agree.  Taking the first (or any
    // single) value of a conflicting set is the classic request-smuggling
    // shape — two parsers framing the same bytes differently — so a request
    // carrying differing values is refused outright.  RFC 9110 §8.6 allows
    // repeated *identical* values, and those are accepted.
    let mut length = None;
    for (_, v) in headers.iter().filter(|(k, _)| k == "content-length") {
        let parsed = v
            .parse::<usize>()
            .map_err(|_| ServeError::Protocol(format!("unparseable Content-Length `{v}`")))?;
        match length {
            None => length = Some(parsed),
            Some(seen) if seen == parsed => {}
            Some(seen) => {
                return Err(ServeError::Protocol(format!(
                    "conflicting Content-Length headers ({seen} vs {parsed})"
                )))
            }
        }
    }
    let length = length.unwrap_or(0);
    if length > MAX_BODY_BYTES {
        return Err(ServeError::Protocol(format!(
            "body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte cap"
        )));
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    Ok(body)
}

/// Read the next request off a persistent connection.  `Ok(None)` means
/// the connection is simply done — the peer closed it between requests, or
/// sent nothing within the socket's read timeout — as opposed to an actual
/// protocol error mid-request.
pub fn read_next_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, ServeError> {
    let mut budget = MAX_HEAD_BYTES;
    let mut start = String::new();
    match reader.read_line(&mut start) {
        Ok(0) => return Ok(None), // clean close between requests
        Ok(n) => {
            budget = budget.checked_sub(n).ok_or_else(|| {
                ServeError::Protocol(format!("header block exceeds {MAX_HEAD_BYTES} bytes"))
            })?;
        }
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            return Ok(None); // idle timeout: hang up on a silent peer
        }
        Err(e) => return Err(e.into()),
    }
    while start.ends_with('\n') || start.ends_with('\r') {
        start.pop();
    }
    parse_request_after_start(reader, &start, budget).map(Some)
}

/// Read and parse one request (head + body) from a connection, treating a
/// closed connection as an error (the single-exchange client paths).
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, ServeError> {
    read_next_request(reader)?
        .ok_or_else(|| ServeError::Protocol("connection closed mid-header".to_string()))
}

/// Parse the remainder of a request whose start line is already in hand.
fn parse_request_after_start<R: BufRead>(
    reader: &mut R,
    start: &str,
    mut budget: usize,
) -> Result<Request, ServeError> {
    let mut parts = start.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ServeError::Protocol(format!(
            "malformed request line `{start}`"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ServeError::Protocol(format!(
            "unsupported protocol `{version}`"
        )));
    }
    let headers = read_headers(reader, &mut budget)?;
    let body = read_body(reader, &headers)?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
        http11: version == "HTTP/1.1",
    })
}

/// Read and parse a response's status line and header block (the body, if
/// any, stays in the reader).  Returns the status code and the headers.
pub fn read_response_head<R: BufRead>(
    reader: &mut R,
) -> Result<(u16, Vec<(String, String)>), ServeError> {
    let mut budget = MAX_HEAD_BYTES;
    let start = read_line(reader, &mut budget)?;
    let mut parts = start.split_whitespace();
    let (Some(version), Some(status)) = (parts.next(), parts.next()) else {
        return Err(ServeError::Protocol(format!(
            "malformed status line `{start}`"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ServeError::Protocol(format!(
            "unsupported protocol `{version}`"
        )));
    }
    let status = status
        .parse::<u16>()
        .map_err(|_| ServeError::Protocol(format!("unparseable status `{status}`")))?;
    let headers = read_headers(reader, &mut budget)?;
    Ok((status, headers))
}

/// Write one complete request with an optional JSON body.  `keep_alive`
/// decides whether the client intends further requests on this connection.
pub fn write_request<W: Write>(
    writer: &mut W,
    method: &str,
    path: &str,
    body: &[u8],
    keep_alive: bool,
) -> Result<(), ServeError> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: hc-serve\r\nConnection: {connection}\r\n"
    )?;
    if body.is_empty() {
        write!(writer, "\r\n")?;
    } else {
        write!(
            writer,
            "Content-Type: application/json\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )?;
        writer.write_all(body)?;
    }
    writer.flush()?;
    Ok(())
}

/// Write one complete response with a known body.  `keep_alive` must echo
/// what the server decided for the connection, so the client knows whether
/// to reuse it.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> Result<(), ServeError> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        writer,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    )?;
    writer.write_all(body)?;
    writer.flush()?;
    Ok(())
}

/// Commit the head of a streaming (unknown-length) NDJSON response; the
/// caller then writes frames and closes the connection to end the body.
pub fn write_stream_head<W: Write>(writer: &mut W) -> Result<(), ServeError> {
    write!(
        writer,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )?;
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_round_trips() {
        let mut wire = Vec::new();
        write_request(&mut wire, "POST", "/campaign", br#"{"x":1}"#, false).expect("write");
        let req = read_request(&mut BufReader::new(wire.as_slice())).expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/campaign");
        assert_eq!(req.header("content-type"), Some("application/json"));
        assert_eq!(req.header("Content-Type"), Some("application/json"));
        assert_eq!(req.body, br#"{"x":1}"#);
        assert!(!req.keep_alive(), "explicit close wins");
    }

    #[test]
    fn bodyless_request_round_trips() {
        let mut wire = Vec::new();
        write_request(&mut wire, "GET", "/healthz", b"", true).expect("write");
        let req = read_request(&mut BufReader::new(wire.as_slice())).expect("parse");
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.keep_alive());
    }

    #[test]
    fn response_head_round_trips() {
        let mut wire = Vec::new();
        write_response(&mut wire, 404, "Not Found", "application/json", b"{}", true)
            .expect("write");
        let (status, headers) =
            read_response_head(&mut BufReader::new(wire.as_slice())).expect("parse");
        assert_eq!(status, 404);
        assert!(headers
            .iter()
            .any(|(k, v)| k == "content-length" && v == "2"));
        assert!(headers
            .iter()
            .any(|(k, v)| k == "connection" && v == "keep-alive"));
    }

    #[test]
    fn persistent_connections_carry_requests_back_to_back() {
        let mut wire = Vec::new();
        write_request(&mut wire, "GET", "/metrics", b"", true).expect("write 1");
        write_request(&mut wire, "POST", "/shutdown", b"", false).expect("write 2");
        let mut reader = BufReader::new(wire.as_slice());
        let first = read_next_request(&mut reader)
            .expect("parse 1")
            .expect("present");
        assert_eq!(
            (first.path.as_str(), first.keep_alive()),
            ("/metrics", true)
        );
        let second = read_next_request(&mut reader)
            .expect("parse 2")
            .expect("present");
        assert_eq!(
            (second.path.as_str(), second.keep_alive()),
            ("/shutdown", false)
        );
        assert!(
            read_next_request(&mut reader).expect("clean EOF").is_none(),
            "end of wire reads as a clean close, not an error"
        );
    }

    #[test]
    fn http10_defaults_to_close() {
        let wire = "GET /healthz HTTP/1.0\r\n\r\n";
        let req = read_request(&mut BufReader::new(wire.as_bytes())).expect("parse");
        assert!(!req.keep_alive());
        let wire = "GET /healthz HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n";
        let req = read_request(&mut BufReader::new(wire.as_bytes())).expect("parse");
        assert!(req.keep_alive(), "explicit 1.0 keep-alive is honoured");
    }

    #[test]
    fn oversized_bodies_are_refused() {
        let wire = format!(
            "POST /campaign HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let err = read_request(&mut BufReader::new(wire.as_bytes())).expect_err("must refuse");
        assert!(matches!(err, ServeError::Protocol(_)));
    }

    #[test]
    fn conflicting_content_lengths_are_refused() {
        let wire = "POST /campaign HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n{}x";
        let err = read_request(&mut BufReader::new(wire.as_bytes())).expect_err("must refuse");
        match err {
            ServeError::Protocol(msg) => assert!(msg.contains("conflicting"), "{msg}"),
            other => panic!("expected a protocol error, got {other}"),
        }
    }

    #[test]
    fn repeated_identical_content_lengths_are_accepted() {
        let wire = "POST /campaign HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\n{}";
        let req = read_request(&mut BufReader::new(wire.as_bytes())).expect("identical repeats");
        assert_eq!(req.body, b"{}");
    }

    #[test]
    fn malformed_request_lines_are_refused() {
        for wire in ["nonsense\r\n\r\n", "GET /x SPDY/3\r\n\r\n"] {
            let err = read_request(&mut BufReader::new(wire.as_bytes())).expect_err("must refuse");
            assert!(matches!(err, ServeError::Protocol(_)), "{wire}");
        }
    }
}
