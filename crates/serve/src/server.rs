//! The daemon: accept loop, per-connection handlers, metrics, and the
//! drain-on-shutdown lifecycle.

use crate::http::{self, Request};
use crate::{protocol, ServeError};
use hc_core::cache::{CacheStats, CellCache};
use hc_core::campaign::{CampaignRunner, CampaignSpec};
use serde::Value;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long a persistent connection may sit idle between requests before
/// the daemon hangs up, unless [`ServeOptions::idle_timeout`] overrides it.
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(5);

/// How to stand the daemon up.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Address to bind (`host:port`; port `0` picks an ephemeral port —
    /// read it back from [`Server::local_addr`]).
    pub addr: String,
    /// Directory of the shared [`CellCache`] every request runs against.
    /// `None` disables caching — campaigns still run, but repeat traffic
    /// re-simulates and in-flight dedupe is off (the singleflight table
    /// lives in the cache).
    pub cache_dir: Option<PathBuf>,
    /// Drain and exit after this many campaign submissions have settled
    /// (completed or failed) — the signal-free way to bound a daemon's
    /// lifetime in tests and CI.
    pub max_requests: Option<u64>,
    /// Idle cutoff for persistent connections; `None` means
    /// [`DEFAULT_IDLE_TIMEOUT`].  A connection that sends no request within
    /// this window is closed, so parked clients cannot pin handler threads
    /// (or stall the drain-on-shutdown join) forever.
    pub idle_timeout: Option<Duration>,
}

/// Request/cache/latency counters behind `GET /metrics`.
#[derive(Debug, Default)]
struct Metrics {
    /// TCP connections accepted and handed to a handler.
    connections_total: AtomicU64,
    /// Every HTTP request that reached the router (several per connection
    /// under keep-alive).
    requests_total: AtomicU64,
    /// Campaign submissions admitted (spec parsed and validated).
    campaigns_accepted: AtomicU64,
    /// Admitted campaigns that streamed a final report.
    campaigns_completed: AtomicU64,
    /// Submissions rejected before streaming (parse/validation/draining)
    /// plus admitted campaigns that failed mid-stream.
    campaigns_rejected: AtomicU64,
    /// Cell frames streamed across all campaigns.
    cells_streamed: AtomicU64,
    /// Summed wall time of settled campaign requests, in nanoseconds.
    request_nanos_total: AtomicU64,
    /// Slowest settled campaign request, in nanoseconds.
    request_nanos_max: AtomicU64,
    /// Most recently settled campaign request, in nanoseconds.
    request_nanos_last: AtomicU64,
}

impl Metrics {
    fn record_campaign_nanos(&self, nanos: u64) {
        self.request_nanos_total.fetch_add(nanos, Ordering::Relaxed);
        self.request_nanos_max.fetch_max(nanos, Ordering::Relaxed);
        self.request_nanos_last.store(nanos, Ordering::Relaxed);
    }
}

/// State shared by the accept loop and every connection handler.
struct ServerState {
    local_addr: SocketAddr,
    cache: Option<Arc<CellCache>>,
    max_requests: Option<u64>,
    idle_timeout: Duration,
    shutdown: AtomicBool,
    metrics: Metrics,
}

impl ServerState {
    /// Campaign submissions that have settled (completed or failed
    /// mid-stream).
    fn campaigns_settled(&self) -> u64 {
        self.metrics.campaigns_completed.load(Ordering::Relaxed)
            + self.metrics.campaigns_rejected.load(Ordering::Relaxed)
    }

    /// Flip the daemon into draining mode (idempotent) and poke the accept
    /// loop awake so it stops taking new connections.
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // The accept loop blocks in `accept`; a throwaway loopback
            // connection wakes it so it can observe the flag.
            let _ = TcpStream::connect(self.local_addr);
        }
    }
}

/// The campaign service daemon.
///
/// [`Server::bind`] opens the listener (and the shared cache);
/// [`Server::serve`] runs the accept loop until a drain is triggered —
/// by `POST /shutdown` or by [`ServeOptions::max_requests`] — then waits
/// for every in-flight connection to finish before returning, so cache
/// writes and streamed reports are never cut off mid-write.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Bind the listener and open the shared cell cache.
    pub fn bind(options: ServeOptions) -> Result<Server, ServeError> {
        let cache = options
            .cache_dir
            .map(CellCache::open)
            .transpose()?
            .map(Arc::new);
        let listener = TcpListener::bind(&options.addr)?;
        let local_addr = listener.local_addr()?;
        Ok(Server {
            listener,
            state: Arc::new(ServerState {
                local_addr,
                cache,
                max_requests: options.max_requests,
                idle_timeout: options.idle_timeout.unwrap_or(DEFAULT_IDLE_TIMEOUT),
                shutdown: AtomicBool::new(false),
                metrics: Metrics::default(),
            }),
        })
    }

    /// The bound address (resolves port `0` to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.local_addr
    }

    /// The shared cell cache, if one was configured.
    pub fn cache(&self) -> Option<&Arc<CellCache>> {
        self.state.cache.as_ref()
    }

    /// Run the daemon: accept connections (one handler thread each) until a
    /// drain is triggered, then join every handler — in-flight campaigns
    /// finish streaming and the cache stays tmp+rename clean — and return.
    pub fn serve(self) -> Result<(), ServeError> {
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.state.shutdown.load(Ordering::SeqCst) {
                // The wake-up poke (or a connection that lost the race with
                // the drain).  New work is refused from here on.
                drop(stream);
                break;
            }
            // Completed handlers are reaped opportunistically so a
            // long-lived daemon does not accumulate join handles.
            handlers.retain(|h| !h.is_finished());
            let state = Arc::clone(&self.state);
            handlers.push(std::thread::spawn(move || handle_connection(stream, state)));
        }
        for handler in handlers {
            let _ = handler.join();
        }
        Ok(())
    }
}

/// Reply with an error envelope; write failures are ignored (the peer is
/// gone — nothing to tell it).
fn reject(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    kind: &str,
    message: &str,
    keep_alive: bool,
) {
    let body = protocol::error_envelope(kind, message);
    let _ = http::write_response(
        stream,
        status,
        reason,
        "application/json",
        body.as_bytes(),
        keep_alive,
    );
}

/// Serve one connection: a loop of requests for as long as both sides want
/// to keep it alive.  Plain endpoints answer in place and loop; a campaign
/// takes the connection over (its stream is close-framed) and ends it.  A
/// peer that goes quiet for the idle timeout — or is still parked when the
/// daemon starts draining — is hung up on, so keep-alive never pins a
/// handler thread past its usefulness.
fn handle_connection(stream: TcpStream, state: Arc<ServerState>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(state.idle_timeout));
    state
        .metrics
        .connections_total
        .fetch_add(1, Ordering::Relaxed);
    let Ok(clone) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(clone);
    let mut stream = stream;
    loop {
        let request = match http::read_next_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => return, // clean close or idle timeout
            Err(e) => {
                reject(
                    &mut stream,
                    400,
                    "Bad Request",
                    "bad_request",
                    &e.to_string(),
                    false,
                );
                return;
            }
        };
        state.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
        let keep_alive = request.keep_alive();
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/campaign") => {
                // The campaign stream runs to EOF; the connection is spent.
                handle_campaign(stream, &request, &state);
                return;
            }
            ("GET", "/healthz") => {
                let body = serde::json::to_string(&Value::Map(vec![
                    ("status".to_string(), Value::Str("ok".to_string())),
                    (
                        "draining".to_string(),
                        Value::Bool(state.shutdown.load(Ordering::SeqCst)),
                    ),
                ])) + "\n";
                let _ = http::write_response(
                    &mut stream,
                    200,
                    "OK",
                    "application/json",
                    body.as_bytes(),
                    keep_alive,
                );
            }
            ("GET", "/metrics") => {
                let body = serde::json::to_string_pretty(&metrics_value(&state)) + "\n";
                let _ = http::write_response(
                    &mut stream,
                    200,
                    "OK",
                    "application/json",
                    body.as_bytes(),
                    keep_alive,
                );
            }
            ("POST", "/shutdown") => {
                // The drain is about to tear the listener down; this
                // response is the connection's last either way.
                let body = serde::json::to_string(&Value::Map(vec![(
                    "status".to_string(),
                    Value::Str("draining".to_string()),
                )])) + "\n";
                let _ = http::write_response(
                    &mut stream,
                    200,
                    "OK",
                    "application/json",
                    body.as_bytes(),
                    false,
                );
                state.begin_shutdown();
                return;
            }
            ("POST" | "GET", "/campaign" | "/healthz" | "/metrics" | "/shutdown") => {
                reject(
                    &mut stream,
                    405,
                    "Method Not Allowed",
                    "method_not_allowed",
                    &format!("{} does not accept {}", request.path, request.method),
                    keep_alive,
                );
            }
            _ => reject(
                &mut stream,
                404,
                "Not Found",
                "not_found",
                &format!("no such endpoint: {}", request.path),
                keep_alive,
            ),
        }
        if !keep_alive || state.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Admit, run and stream one campaign.
fn handle_campaign(mut stream: TcpStream, request: &Request, state: &Arc<ServerState>) {
    let start = Instant::now();
    if state.shutdown.load(Ordering::SeqCst) {
        state
            .metrics
            .campaigns_rejected
            .fetch_add(1, Ordering::Relaxed);
        reject(
            &mut stream,
            503,
            "Service Unavailable",
            "draining",
            "the daemon is draining; resubmit elsewhere",
            false,
        );
        return;
    }
    let spec = std::str::from_utf8(&request.body)
        .map_err(|e| e.to_string())
        .and_then(|text| CampaignSpec::from_json(text).map_err(|e| e.to_string()))
        .and_then(|spec| spec.validate().map_err(|e| e.to_string()).map(|()| spec));
    let spec = match spec {
        Ok(spec) => spec,
        Err(message) => {
            state
                .metrics
                .campaigns_rejected
                .fetch_add(1, Ordering::Relaxed);
            reject(
                &mut stream,
                400,
                "Bad Request",
                "invalid_spec",
                &message,
                false,
            );
            return;
        }
    };
    state
        .metrics
        .campaigns_accepted
        .fetch_add(1, Ordering::Relaxed);

    // The response head is committed before the campaign runs; everything
    // after this point is in-band (frames, then the report or an error
    // frame).  The writer is shared with the progress hook, which fires
    // from worker threads — frames are serialized by the mutex, each
    // written whole, so lines never interleave mid-frame.
    let writer = Arc::new(Mutex::new(BufWriter::new(stream)));
    {
        let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
        if http::write_stream_head(&mut *w).is_err() {
            return; // peer vanished before we started
        }
        let frame = protocol::accepted_frame(&spec.name, spec.cell_count());
        let _ = w.write_all(frame.as_bytes());
        let _ = w.flush();
    }

    let hook_writer = Arc::clone(&writer);
    let hook_state = Arc::clone(state);
    let mut runner = CampaignRunner::new().with_progress(move |progress| {
        hook_state
            .metrics
            .cells_streamed
            .fetch_add(1, Ordering::Relaxed);
        let frame = protocol::cell_frame(progress);
        let mut w = hook_writer.lock().unwrap_or_else(|e| e.into_inner());
        // A disconnected client must not abort the campaign: its cells are
        // still going into the shared cache for everyone else.
        let _ = w.write_all(frame.as_bytes());
        let _ = w.flush();
    });
    if let Some(cache) = &state.cache {
        runner = runner.with_cache(Arc::clone(cache));
    }

    let outcome = runner.run(&spec);
    // Settle the counters *before* the terminal frame goes out: a client
    // that has read its report must already see it reflected in /metrics.
    match &outcome {
        Ok(_) => state
            .metrics
            .campaigns_completed
            .fetch_add(1, Ordering::Relaxed),
        Err(_) => state
            .metrics
            .campaigns_rejected
            .fetch_add(1, Ordering::Relaxed),
    };
    let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    state.metrics.record_campaign_nanos(nanos);
    {
        let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
        match &outcome {
            Ok(report) => {
                let json = report.to_json();
                let _ = w.write_all(protocol::report_frame(json.len()).as_bytes());
                let _ = w.write_all(json.as_bytes());
                let _ = w.write_all(b"\n");
            }
            Err(e) => {
                let frame = protocol::error_frame("campaign_failed", &e.to_string());
                let _ = w.write_all(frame.as_bytes());
            }
        }
        let _ = w.flush();
    }
    if let Some(max) = state.max_requests {
        if state.campaigns_settled() >= max {
            state.begin_shutdown();
        }
    }
}

/// Render a [`CacheStats`] snapshot as a JSON map.
fn cache_stats_value(stats: &CacheStats) -> Value {
    Value::Map(vec![
        ("hits".to_string(), Value::UInt(stats.hits)),
        ("misses".to_string(), Value::UInt(stats.misses)),
        ("inserts".to_string(), Value::UInt(stats.inserts)),
        ("evictions".to_string(), Value::UInt(stats.evictions)),
        ("dedupe_leads".to_string(), Value::UInt(stats.dedupe_leads)),
        ("dedupe_joins".to_string(), Value::UInt(stats.dedupe_joins)),
        ("entries".to_string(), Value::UInt(stats.entries)),
        ("bytes".to_string(), Value::UInt(stats.bytes)),
    ])
}

/// The `GET /metrics` document.
fn metrics_value(state: &ServerState) -> Value {
    let m = &state.metrics;
    let accepted = m.campaigns_accepted.load(Ordering::Relaxed);
    let settled = state.campaigns_settled();
    Value::Map(vec![
        (
            "requests".to_string(),
            Value::Map(vec![
                (
                    "connections".to_string(),
                    Value::UInt(m.connections_total.load(Ordering::Relaxed)),
                ),
                (
                    "total".to_string(),
                    Value::UInt(m.requests_total.load(Ordering::Relaxed)),
                ),
                ("campaigns_accepted".to_string(), Value::UInt(accepted)),
                (
                    "campaigns_completed".to_string(),
                    Value::UInt(m.campaigns_completed.load(Ordering::Relaxed)),
                ),
                (
                    "campaigns_rejected".to_string(),
                    Value::UInt(m.campaigns_rejected.load(Ordering::Relaxed)),
                ),
                (
                    "campaigns_in_flight".to_string(),
                    Value::UInt(accepted.saturating_sub(settled)),
                ),
            ]),
        ),
        (
            "cells_streamed".to_string(),
            Value::UInt(m.cells_streamed.load(Ordering::Relaxed)),
        ),
        (
            "request_nanos".to_string(),
            Value::Map(vec![
                (
                    "total".to_string(),
                    Value::UInt(m.request_nanos_total.load(Ordering::Relaxed)),
                ),
                (
                    "max".to_string(),
                    Value::UInt(m.request_nanos_max.load(Ordering::Relaxed)),
                ),
                (
                    "last".to_string(),
                    Value::UInt(m.request_nanos_last.load(Ordering::Relaxed)),
                ),
            ]),
        ),
        (
            "cache".to_string(),
            match &state.cache {
                Some(cache) => cache_stats_value(&cache.stats()),
                None => Value::Null,
            },
        ),
        (
            "draining".to_string(),
            Value::Bool(state.shutdown.load(Ordering::SeqCst)),
        ),
    ])
}
