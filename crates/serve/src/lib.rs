//! # hc-serve
//!
//! The long-lived campaign service: a std-only daemon (thread per
//! connection over [`std::net::TcpListener`], minimal HTTP/1.1 — no tokio,
//! matching the workspace's offline compat-crate constraint) that turns the
//! batch campaign engine into shared infrastructure.  Submit a
//! [`CampaignSpec`](hc_core::campaign::CampaignSpec) as JSON and the daemon
//! validates it with the engine's typed errors, runs it on the process-wide
//! worker pool against one shared
//! [`CellCache`](hc_core::cache::CellCache), streams per-cell progress back
//! as NDJSON frames, and finishes the stream with the final schema-v3
//! [`CampaignReport`](hc_core::campaign::CampaignReport) — **byte-identical**
//! to what the offline `reproduce campaign --json` path emits for the same
//! spec.
//!
//! Because every request shares one cache, repeat traffic is O(changed
//! cells) *across users*, and concurrent requests whose cells hash to the
//! same content-addressed key coalesce onto a single simulation via the
//! cache's keyed singleflight table — N identical in-flight submissions
//! cost one grid (see `hc_core::cache`).
//!
//! ## Endpoints
//!
//! | Method & path     | Body                | Response                                            |
//! |-------------------|---------------------|-----------------------------------------------------|
//! | `POST /campaign`  | `CampaignSpec` JSON | NDJSON event frames, then the final report          |
//! | `GET /metrics`    | —                   | request/cache/dedupe counters as JSON               |
//! | `GET /healthz`    | —                   | `{"status": "ok", ...}`                             |
//! | `POST /shutdown`  | —                   | `{"status": "draining"}`; daemon drains and exits   |
//!
//! The NDJSON stream grammar, the error envelope and the drain semantics
//! are specified in `DESIGN.md` ("Campaign service"); [`protocol`] holds
//! the frame constructors and parsers both sides share.
//!
//! ## Quick start (in process)
//!
//! ```no_run
//! use hc_serve::{client, Server, ServeOptions};
//!
//! let server = Server::bind(ServeOptions {
//!     addr: "127.0.0.1:0".to_string(),
//!     ..ServeOptions::default()
//! })
//! .expect("bind");
//! let addr = server.local_addr().to_string();
//! let daemon = std::thread::spawn(move || server.serve());
//!
//! let spec_json = r#"{ /* CampaignSpec */ }"#;
//! let report = client::submit(&addr, spec_json, |_frame| {}).expect("campaign");
//! println!("{report}");
//! client::shutdown(&addr).expect("drain");
//! daemon.join().unwrap().expect("clean exit");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hc_core::campaign::CampaignError;
use std::fmt;

pub mod client;
pub mod http;
pub mod protocol;
pub mod server;

pub use client::Connection;
pub use server::{ServeOptions, Server, DEFAULT_IDLE_TIMEOUT};

/// Everything that can go wrong speaking to (or inside) the campaign
/// service.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A socket could not be bound, connected, read or written.
    Io(String),
    /// The peer sent bytes that are not the HTTP/1.1 or NDJSON subset this
    /// service speaks.
    Protocol(String),
    /// The server rejected the request before streaming began (the typed
    /// error envelope of a non-200 response).
    Rejected {
        /// HTTP status code of the rejection.
        status: u16,
        /// Machine-readable error kind (e.g. `invalid_spec`, `draining`).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
    /// The campaign failed mid-stream, after the response head was already
    /// committed (the in-band `error` frame).
    Stream {
        /// Machine-readable error kind.
        kind: String,
        /// Human-readable detail.
        message: String,
    },
    /// The campaign engine itself refused the work (spec validation, cache
    /// directory refusal, …).
    Campaign(CampaignError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Protocol(e) => write!(f, "protocol error: {e}"),
            ServeError::Rejected {
                status,
                kind,
                message,
            } => write!(f, "request rejected ({status} {kind}): {message}"),
            ServeError::Stream { kind, message } => {
                write!(f, "campaign failed mid-stream ({kind}): {message}")
            }
            ServeError::Campaign(e) => write!(f, "campaign error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Campaign(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CampaignError> for ServeError {
    fn from(e: CampaignError) -> ServeError {
        ServeError::Campaign(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e.to_string())
    }
}
