//! The campaign-stream wire protocol both sides share.
//!
//! A successful `POST /campaign` response body is a sequence of **NDJSON
//! event frames** — one compact JSON object per `\n`-terminated line —
//! followed by the raw bytes of the final report:
//!
//! ```text
//! {"event":"accepted","name":"spec-grid","total_cells":84}
//! {"event":"cell","completed":1,"total":84,"policy":"8_8_8","trace":"gzip","scenario":"default"}
//! …one `cell` frame per finished cell (ordering between workers is not guaranteed)…
//! {"event":"report","bytes":123456}
//! <exactly 123456 bytes: the CampaignReport JSON, byte-identical to `reproduce campaign --json`>
//! \n
//! ```
//!
//! A campaign that fails *after* the stream head was committed ends with an
//! in-band terminal frame instead of a `report` frame:
//!
//! ```text
//! {"event":"error","kind":"campaign_failed","message":"…"}
//! ```
//!
//! Requests rejected *before* streaming (unparseable spec, validation
//! failure, draining daemon, unknown path) get a plain JSON **error
//! envelope** with a matching HTTP status instead:
//!
//! ```text
//! {"error":{"kind":"invalid_spec","message":"campaign names no policies"}}
//! ```

use crate::ServeError;
use hc_core::campaign::CampaignProgress;
use serde::Value;

/// `event` value of the stream's opening frame.
pub const EVENT_ACCEPTED: &str = "accepted";
/// `event` value of a per-cell progress frame.
pub const EVENT_CELL: &str = "cell";
/// `event` value of the frame announcing the final report's byte count.
pub const EVENT_REPORT: &str = "report";
/// `event` value of the in-band terminal error frame.
pub const EVENT_ERROR: &str = "error";

fn frame(entries: Vec<(&str, Value)>) -> String {
    let mut line = serde::json::to_string(&Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    ));
    line.push('\n');
    line
}

/// The stream's opening frame: the validated campaign was admitted.
pub fn accepted_frame(name: &str, total_cells: usize) -> String {
    frame(vec![
        ("event", Value::Str(EVENT_ACCEPTED.to_string())),
        ("name", Value::Str(name.to_string())),
        ("total_cells", Value::UInt(total_cells as u64)),
    ])
}

/// One per-cell progress frame (the streaming face of
/// [`CampaignProgress`]).
pub fn cell_frame(progress: &CampaignProgress) -> String {
    frame(vec![
        ("event", Value::Str(EVENT_CELL.to_string())),
        ("completed", Value::UInt(progress.completed_cells as u64)),
        ("total", Value::UInt(progress.total_cells as u64)),
        ("policy", Value::Str(progress.policy.clone())),
        ("trace", Value::Str(progress.trace.clone())),
        ("scenario", Value::Str(progress.scenario.clone())),
    ])
}

/// The frame announcing that exactly `bytes` bytes of report JSON follow.
pub fn report_frame(bytes: usize) -> String {
    frame(vec![
        ("event", Value::Str(EVENT_REPORT.to_string())),
        ("bytes", Value::UInt(bytes as u64)),
    ])
}

/// The in-band terminal frame of a campaign that failed mid-stream.
pub fn error_frame(kind: &str, message: &str) -> String {
    frame(vec![
        ("event", Value::Str(EVENT_ERROR.to_string())),
        ("kind", Value::Str(kind.to_string())),
        ("message", Value::Str(message.to_string())),
    ])
}

/// The pre-stream rejection envelope (`{"error": {"kind", "message"}}`).
pub fn error_envelope(kind: &str, message: &str) -> String {
    let mut body = serde::json::to_string(&Value::Map(vec![(
        "error".to_string(),
        Value::Map(vec![
            ("kind".to_string(), Value::Str(kind.to_string())),
            ("message".to_string(), Value::Str(message.to_string())),
        ]),
    )]));
    body.push('\n');
    body
}

/// Parse an error envelope back into its `(kind, message)` pair; malformed
/// envelopes degrade to an `unknown` kind carrying the raw body.
pub fn parse_error_envelope(body: &str) -> (String, String) {
    let fallback = || ("unknown".to_string(), body.trim().to_string());
    let Ok(value) = serde::json::parse(body.trim()) else {
        return fallback();
    };
    let Some(error) = value.get("error") else {
        return fallback();
    };
    match (
        error.get("kind").and_then(Value::as_str),
        error.get("message").and_then(Value::as_str),
    ) {
        (Some(kind), Some(message)) => (kind.to_string(), message.to_string()),
        _ => fallback(),
    }
}

/// Parse one NDJSON frame line; the `event` discriminator must be present.
pub fn parse_frame(line: &str) -> Result<Value, ServeError> {
    let value = serde::json::parse(line.trim_end())
        .map_err(|e| ServeError::Protocol(format!("unparseable stream frame: {e}")))?;
    if value.get("event").and_then(Value::as_str).is_none() {
        return Err(ServeError::Protocol(format!(
            "stream frame without an event discriminator: {line}"
        )));
    }
    Ok(value)
}

/// The `event` discriminator of a parsed frame.
pub fn frame_event(frame: &Value) -> &str {
    frame.get("event").and_then(Value::as_str).unwrap_or("")
}

/// Extract a `u64` field from a parsed frame.
pub fn frame_uint(frame: &Value, key: &str) -> Result<u64, ServeError> {
    match frame.get(key) {
        Some(Value::UInt(n)) => Ok(*n),
        _ => Err(ServeError::Protocol(format!(
            "stream frame is missing numeric field `{key}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_single_lines_and_parse_back() {
        let progress = CampaignProgress {
            completed_cells: 3,
            total_cells: 84,
            policy: "8_8_8".to_string(),
            trace: "gzip".to_string(),
            scenario: "default".to_string(),
        };
        for line in [
            accepted_frame("grid", 84),
            cell_frame(&progress),
            report_frame(123),
            error_frame("campaign_failed", "boom"),
        ] {
            assert!(line.ends_with('\n'));
            assert_eq!(line.matches('\n').count(), 1, "one line per frame: {line}");
            let frame = parse_frame(&line).expect("parses");
            assert!(!frame_event(&frame).is_empty());
        }
        let cell = parse_frame(&cell_frame(&progress)).unwrap();
        assert_eq!(frame_event(&cell), EVENT_CELL);
        assert_eq!(frame_uint(&cell, "total").unwrap(), 84);
    }

    #[test]
    fn error_envelopes_round_trip() {
        let body = error_envelope("invalid_spec", "campaign names no policies");
        let (kind, message) = parse_error_envelope(&body);
        assert_eq!(kind, "invalid_spec");
        assert_eq!(message, "campaign names no policies");
        let (kind, message) = parse_error_envelope("not json at all");
        assert_eq!(kind, "unknown");
        assert_eq!(message, "not json at all");
    }

    #[test]
    fn frames_without_events_are_refused() {
        assert!(parse_frame(r#"{"x": 1}"#).is_err());
        assert!(parse_frame("garbage").is_err());
    }
}
