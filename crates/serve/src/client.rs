//! The submit side: a blocking client for the campaign service.
//!
//! [`submit`] streams a campaign and hands every progress frame to a
//! caller-supplied observer; the returned report string is byte-identical
//! to the offline `reproduce campaign --json` output for the same spec.
//! [`Connection`] holds one persistent (keep-alive) connection for the
//! plain JSON endpoints, so a client running several exchanges — say
//! `/metrics` then `/shutdown` — pays for one TCP handshake, not one per
//! request.

use crate::http;
use crate::{protocol, ServeError};
use serde::Value;
use std::io::{BufReader, Read};
use std::net::TcpStream;

/// Connect, send one request, and return a buffered reader over the
/// response along with its status and headers.
fn exchange(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<(BufReader<TcpStream>, u16), ServeError> {
    let mut stream = TcpStream::connect(addr)?;
    http::write_request(&mut stream, method, path, body, false)?;
    let mut reader = BufReader::new(stream);
    let (status, _headers) = http::read_response_head(&mut reader)?;
    Ok((reader, status))
}

/// Read the remainder of a `Connection: close` body to EOF as UTF-8.
fn read_to_end(reader: &mut BufReader<TcpStream>) -> Result<String, ServeError> {
    let mut body = String::new();
    reader.read_to_string(&mut body)?;
    Ok(body)
}

/// One persistent connection to the daemon's plain JSON endpoints.
///
/// Every exchange is `Content-Length`-framed, so the connection survives it
/// and the next request reuses the same socket.  The daemon may still hang
/// up between exchanges (idle timeout, drain): that surfaces as an error on
/// the *next* call, and the caller reconnects — [`Connection`] does not
/// retry on its own.
pub struct Connection {
    reader: BufReader<TcpStream>,
}

impl Connection {
    /// Open a persistent connection to `addr`.
    pub fn connect(addr: &str) -> Result<Connection, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Connection {
            reader: BufReader::new(stream),
        })
    }

    /// One keep-alive exchange: write the request, read the framed
    /// response.  Returns the status and the body.
    fn exchange(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<(u16, String), ServeError> {
        http::write_request(self.reader.get_mut(), method, path, body, true)?;
        let (status, headers) = http::read_response_head(&mut self.reader)?;
        let length = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .ok_or_else(|| {
                ServeError::Protocol("keep-alive response carries no Content-Length".to_string())
            })?;
        if length > http::MAX_BODY_BYTES {
            return Err(ServeError::Protocol(format!(
                "response body of {length} bytes exceeds the {}-byte cap",
                http::MAX_BODY_BYTES
            )));
        }
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body)
            .map_err(|e| ServeError::Protocol(format!("response is not UTF-8: {e}")))?;
        Ok((status, body))
    }

    /// Fetch a plain JSON endpoint (`/healthz`, `/metrics`) over this
    /// connection.
    pub fn get(&mut self, path: &str) -> Result<String, ServeError> {
        let (status, body) = self.exchange("GET", path, b"")?;
        if status != 200 {
            let (kind, message) = protocol::parse_error_envelope(&body);
            return Err(ServeError::Rejected {
                status,
                kind,
                message,
            });
        }
        Ok(body)
    }

    /// Ask the daemon to drain, over this connection.  The daemon closes
    /// the connection after this response, so it should be the last call.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        let (status, body) = self.exchange("POST", "/shutdown", b"")?;
        if status != 200 {
            let (kind, message) = protocol::parse_error_envelope(&body);
            return Err(ServeError::Rejected {
                status,
                kind,
                message,
            });
        }
        Ok(())
    }
}

/// Submit a campaign spec (JSON text) and stream the response.
///
/// Every NDJSON event frame (`accepted`, `cell`) is handed to `on_frame`
/// as it arrives; the final report's raw JSON is returned once the
/// `report` frame lands.  Pre-stream rejections surface as
/// [`ServeError::Rejected`], in-band failures as [`ServeError::Stream`].
pub fn submit(
    addr: &str,
    spec_json: &str,
    mut on_frame: impl FnMut(&Value),
) -> Result<String, ServeError> {
    let (mut reader, status) = exchange(addr, "POST", "/campaign", spec_json.as_bytes())?;
    if status != 200 {
        let body = read_to_end(&mut reader)?;
        let (kind, message) = protocol::parse_error_envelope(&body);
        return Err(ServeError::Rejected {
            status,
            kind,
            message,
        });
    }
    loop {
        let mut line = String::new();
        use std::io::BufRead;
        if reader.read_line(&mut line)? == 0 {
            return Err(ServeError::Protocol(
                "stream ended before a report or error frame".to_string(),
            ));
        }
        let frame = protocol::parse_frame(&line)?;
        match protocol::frame_event(&frame) {
            protocol::EVENT_REPORT => {
                let bytes = protocol::frame_uint(&frame, "bytes")?;
                let mut report = vec![0u8; usize::try_from(bytes).unwrap_or(usize::MAX)];
                reader.read_exact(&mut report)?;
                return String::from_utf8(report)
                    .map_err(|e| ServeError::Protocol(format!("report is not UTF-8: {e}")));
            }
            protocol::EVENT_ERROR => {
                let field = |key: &str| {
                    frame
                        .get(key)
                        .and_then(Value::as_str)
                        .unwrap_or("unknown")
                        .to_string()
                };
                return Err(ServeError::Stream {
                    kind: field("kind"),
                    message: field("message"),
                });
            }
            _ => on_frame(&frame),
        }
    }
}

/// Fetch a plain JSON endpoint (`/healthz`, `/metrics`) and return its
/// body.
pub fn get(addr: &str, path: &str) -> Result<String, ServeError> {
    let (mut reader, status) = exchange(addr, "GET", path, b"")?;
    let body = read_to_end(&mut reader)?;
    if status != 200 {
        let (kind, message) = protocol::parse_error_envelope(&body);
        return Err(ServeError::Rejected {
            status,
            kind,
            message,
        });
    }
    Ok(body)
}

/// Ask the daemon to drain: in-flight campaigns finish streaming, then the
/// accept loop exits.
pub fn shutdown(addr: &str) -> Result<(), ServeError> {
    let (mut reader, status) = exchange(addr, "POST", "/shutdown", b"")?;
    let body = read_to_end(&mut reader)?;
    if status != 200 {
        let (kind, message) = protocol::parse_error_envelope(&body);
        return Err(ServeError::Rejected {
            status,
            kind,
            message,
        });
    }
    Ok(())
}
