//! The submit side: a blocking client for the campaign service.
//!
//! [`submit`] streams a campaign and hands every progress frame to a
//! caller-supplied observer; the returned report string is byte-identical
//! to the offline `reproduce campaign --json` output for the same spec.

use crate::http;
use crate::{protocol, ServeError};
use serde::Value;
use std::io::{BufReader, Read};
use std::net::TcpStream;

/// Connect, send one request, and return a buffered reader over the
/// response along with its status and headers.
fn exchange(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<(BufReader<TcpStream>, u16), ServeError> {
    let mut stream = TcpStream::connect(addr)?;
    http::write_request(&mut stream, method, path, body)?;
    let mut reader = BufReader::new(stream);
    let (status, _headers) = http::read_response_head(&mut reader)?;
    Ok((reader, status))
}

/// Read the remainder of a `Connection: close` body to EOF as UTF-8.
fn read_to_end(reader: &mut BufReader<TcpStream>) -> Result<String, ServeError> {
    let mut body = String::new();
    reader.read_to_string(&mut body)?;
    Ok(body)
}

/// Submit a campaign spec (JSON text) and stream the response.
///
/// Every NDJSON event frame (`accepted`, `cell`) is handed to `on_frame`
/// as it arrives; the final report's raw JSON is returned once the
/// `report` frame lands.  Pre-stream rejections surface as
/// [`ServeError::Rejected`], in-band failures as [`ServeError::Stream`].
pub fn submit(
    addr: &str,
    spec_json: &str,
    mut on_frame: impl FnMut(&Value),
) -> Result<String, ServeError> {
    let (mut reader, status) = exchange(addr, "POST", "/campaign", spec_json.as_bytes())?;
    if status != 200 {
        let body = read_to_end(&mut reader)?;
        let (kind, message) = protocol::parse_error_envelope(&body);
        return Err(ServeError::Rejected {
            status,
            kind,
            message,
        });
    }
    loop {
        let mut line = String::new();
        use std::io::BufRead;
        if reader.read_line(&mut line)? == 0 {
            return Err(ServeError::Protocol(
                "stream ended before a report or error frame".to_string(),
            ));
        }
        let frame = protocol::parse_frame(&line)?;
        match protocol::frame_event(&frame) {
            protocol::EVENT_REPORT => {
                let bytes = protocol::frame_uint(&frame, "bytes")?;
                let mut report = vec![0u8; usize::try_from(bytes).unwrap_or(usize::MAX)];
                reader.read_exact(&mut report)?;
                return String::from_utf8(report)
                    .map_err(|e| ServeError::Protocol(format!("report is not UTF-8: {e}")));
            }
            protocol::EVENT_ERROR => {
                let field = |key: &str| {
                    frame
                        .get(key)
                        .and_then(Value::as_str)
                        .unwrap_or("unknown")
                        .to_string()
                };
                return Err(ServeError::Stream {
                    kind: field("kind"),
                    message: field("message"),
                });
            }
            _ => on_frame(&frame),
        }
    }
}

/// Fetch a plain JSON endpoint (`/healthz`, `/metrics`) and return its
/// body.
pub fn get(addr: &str, path: &str) -> Result<String, ServeError> {
    let (mut reader, status) = exchange(addr, "GET", path, b"")?;
    let body = read_to_end(&mut reader)?;
    if status != 200 {
        let (kind, message) = protocol::parse_error_envelope(&body);
        return Err(ServeError::Rejected {
            status,
            kind,
            message,
        });
    }
    Ok(body)
}

/// Ask the daemon to drain: in-flight campaigns finish streaming, then the
/// accept loop exits.
pub fn shutdown(addr: &str) -> Result<(), ServeError> {
    let (mut reader, status) = exchange(addr, "POST", "/shutdown", b"")?;
    let body = read_to_end(&mut reader)?;
    if status != 200 {
        let (kind, message) = protocol::parse_error_envelope(&body);
        return Err(ServeError::Rejected {
            status,
            kind,
            message,
        });
    }
    Ok(())
}
