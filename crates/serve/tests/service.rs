//! In-process integration tests for the campaign service: one real
//! daemon on an ephemeral loopback port per test, driven through the
//! real client.

use hc_core::campaign::{CampaignBuilder, CampaignRunner, CampaignSpec};
use hc_core::policy::PolicyKind;
use hc_serve::{client, protocol, ServeOptions, Server};
use hc_trace::SpecBenchmark;
use serde::Value;
use std::path::PathBuf;
use std::sync::{Arc, Barrier};

fn small_spec(name: &str) -> CampaignSpec {
    CampaignBuilder::new(name)
        .policies([PolicyKind::Ir, PolicyKind::P888])
        .spec(SpecBenchmark::Gzip)
        .spec(SpecBenchmark::Mcf)
        .trace_len(600)
        .build()
        .expect("valid spec")
}

/// A bound server on a fresh temp-dir cache; returns the daemon handle,
/// its address, and the cache directory (caller-owned).
fn start(
    tag: &str,
    max_requests: Option<u64>,
) -> (
    std::thread::JoinHandle<Result<(), hc_serve::ServeError>>,
    String,
    PathBuf,
) {
    let dir = std::env::temp_dir().join(format!("hc-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::bind(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        cache_dir: Some(dir.clone()),
        max_requests,
        ..ServeOptions::default()
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.serve());
    (daemon, addr, dir)
}

fn metric(body: &str, path: &[&str]) -> u64 {
    let mut value = serde::json::parse(body.trim()).expect("metrics parse");
    for key in path {
        value = value.get(key).cloned().unwrap_or(Value::Null);
    }
    match value {
        Value::UInt(n) => n,
        other => panic!("metric {path:?} is not a uint: {other:?}"),
    }
}

#[test]
fn served_reports_match_offline_bytes_and_repeat_submits_hit_the_cache() {
    let (daemon, addr, dir) = start("roundtrip", None);
    let spec = small_spec("served-roundtrip");

    let mut events = Vec::new();
    let first = client::submit(&addr, &spec.to_json(), |frame| {
        events.push(protocol::frame_event(frame).to_string());
    })
    .expect("first submit");

    // The stream announced the campaign and every cell before the report.
    assert_eq!(events.first().map(String::as_str), Some("accepted"));
    assert_eq!(
        events.iter().filter(|e| *e == "cell").count(),
        spec.cell_count(),
        "one cell frame per grid cell"
    );

    // Byte-identical to the offline engine on the same spec.
    let offline = CampaignRunner::new().run(&spec).expect("offline").to_json();
    assert_eq!(first, offline);

    // A repeat submission replays from the shared cache — same bytes, and
    // /metrics proves the cells came from cache hits, not re-simulation.
    let second = client::submit(&addr, &spec.to_json(), |_| {}).expect("second submit");
    assert_eq!(second, offline);
    let metrics = client::get(&addr, "/metrics").expect("metrics");
    assert!(metric(&metrics, &["cache", "hits"]) > 0, "{metrics}");
    assert_eq!(
        metric(&metrics, &["cache", "dedupe_leads"]),
        6, // 4 cells + 2 baselines
        "repeat traffic must not simulate again: {metrics}"
    );
    assert_eq!(metric(&metrics, &["requests", "campaigns_completed"]), 2);

    let health = client::get(&addr, "/healthz").expect("healthz");
    assert!(health.contains("\"ok\""));

    client::shutdown(&addr).expect("drain");
    daemon.join().unwrap().expect("clean exit");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn rejections_use_typed_envelopes_and_do_not_kill_the_daemon() {
    let (daemon, addr, dir) = start("reject", None);

    // Unparseable spec → 400 with the invalid_spec kind.
    let err = client::submit(&addr, "{not json", |_| {}).expect_err("must reject");
    match err {
        hc_serve::ServeError::Rejected { status, kind, .. } => {
            assert_eq!(status, 400);
            assert_eq!(kind, "invalid_spec");
        }
        other => panic!("expected Rejected, got {other:?}"),
    }

    // A valid document that fails spec validation is refused the same way.
    let empty = CampaignBuilder::new("no-policies")
        .spec(SpecBenchmark::Gzip)
        .build();
    assert!(empty.is_err(), "builder already refuses empty grids");
    let err = client::submit(
        &addr,
        r#"{"schema_version": 1, "name": "x", "policies": [], "traces": [], "trace_len": 100, "warmup_runs": 0, "include_baseline": true}"#,
        |_| {},
    )
    .expect_err("must reject");
    assert!(matches!(
        err,
        hc_serve::ServeError::Rejected { status: 400, .. }
    ));

    // Unknown endpoint → 404 envelope.
    let err = client::get(&addr, "/nonsense").expect_err("must 404");
    assert!(matches!(
        err,
        hc_serve::ServeError::Rejected { status: 404, .. }
    ));

    // The daemon survived all of it.
    let report = client::submit(&addr, &small_spec("after-rejects").to_json(), |_| {})
        .expect("daemon still serves");
    assert!(report.contains("after-rejects"));

    client::shutdown(&addr).expect("drain");
    daemon.join().unwrap().expect("clean exit");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn max_requests_drains_the_daemon_after_the_last_campaign() {
    let (daemon, addr, dir) = start("maxreq", Some(2));
    let spec = small_spec("bounded");
    client::submit(&addr, &spec.to_json(), |_| {}).expect("first");
    client::submit(&addr, &spec.to_json(), |_| {}).expect("second");
    // The daemon initiated its own drain after the 2nd settled campaign;
    // serve() returns without any /shutdown call.
    daemon.join().unwrap().expect("self-drain");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn persistent_connections_serve_many_requests_then_time_out() {
    let dir = std::env::temp_dir().join(format!("hc-serve-keepalive-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::bind(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        cache_dir: Some(dir.clone()),
        // Short idle cutoff so the timeout half of the test stays fast.
        idle_timeout: Some(std::time::Duration::from_millis(200)),
        ..ServeOptions::default()
    })
    .expect("bind");
    let addr = server.local_addr().to_string();
    let daemon = std::thread::spawn(move || server.serve());

    // Several exchanges over ONE connection…
    let mut conn = client::Connection::connect(&addr).expect("connect");
    for _ in 0..3 {
        let health = conn.get("/healthz").expect("healthz over keep-alive");
        assert!(health.contains("\"ok\""));
    }
    let metrics = conn.get("/metrics").expect("metrics over keep-alive");
    assert_eq!(
        metric(&metrics, &["requests", "connections"]),
        1,
        "all requests so far shared one connection: {metrics}"
    );
    assert_eq!(metric(&metrics, &["requests", "total"]), 4);

    // …and a parked connection is hung up on after the idle timeout, which
    // must read as a clean close on the next use, not a wedged daemon.
    std::thread::sleep(std::time::Duration::from_millis(600));
    assert!(
        conn.get("/healthz").is_err(),
        "the daemon hung up on the idle connection"
    );

    // A fresh connection can run /metrics and then /shutdown back-to-back.
    let mut conn = client::Connection::connect(&addr).expect("reconnect");
    conn.get("/metrics").expect("metrics");
    conn.shutdown().expect("shutdown over the same connection");
    daemon.join().unwrap().expect("clean exit");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn concurrent_submissions_coalesce_onto_one_simulation_per_cell() {
    let (daemon, addr, dir) = start("dedupe", None);
    let spec = small_spec("served-dedupe");
    let spec_json = spec.to_json();

    let clients = 4;
    let barrier = Arc::new(Barrier::new(clients));
    let reports: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let addr = addr.clone();
                let spec_json = spec_json.clone();
                scope.spawn(move || {
                    barrier.wait();
                    client::submit(&addr, &spec_json, |_| {}).expect("submit")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for report in &reports[1..] {
        assert_eq!(report, &reports[0], "racing clients must agree");
    }

    // 4 cells + 2 baselines = 6 unique keys → exactly 6 simulations across
    // all four concurrent submissions; every other lookup was a cache hit
    // or a coalesced singleflight join.
    let metrics = client::get(&addr, "/metrics").expect("metrics");
    assert_eq!(
        metric(&metrics, &["cache", "dedupe_leads"]),
        6,
        "one simulation per unique cell key: {metrics}"
    );
    assert_eq!(
        metric(&metrics, &["cache", "misses"]),
        metric(&metrics, &["cache", "dedupe_leads"]) + metric(&metrics, &["cache", "dedupe_joins"]),
        "every miss either led or joined: {metrics}"
    );

    client::shutdown(&addr).expect("drain");
    daemon.join().unwrap().expect("clean exit");
    let _ = std::fs::remove_dir_all(dir);
}
