//! # hc-core
//!
//! The paper's contribution: **data-width aware instruction selection
//! policies** for a processor augmented with an 8-bit helper cluster, plus the
//! experiment / suite / figure-reproduction machinery built on top of the
//! `hc-sim` cycle simulator.
//!
//! * [`policy`] — the composable steering stack (8_8_8, BR, LR, CR, CP, IR,
//!   IR-ND) and the [`policy::PolicyKind`] catalogue.
//! * [`campaign`] — declarative policy × trace grids with shared baselines,
//!   typed errors and a versioned results schema; the engine everything else
//!   runs on.  Grids *stream*: traces are synthesized per worker and dropped
//!   per row, so suite size does not bound memory.
//! * [`shard`] — deterministic partitions of a campaign with mergeable
//!   [`ShardReport`]s and checkpoint/resume, for the 409-trace Table 2 suite
//!   and beyond; partitions are planned by a cost model (LPT bin packing
//!   over observed cell timings) when a cell cache is attached.
//! * [`fanout`] — multi-process shard fan-out over one checkpoint
//!   directory: lease-file claims with heartbeat renewal and staleness
//!   reclaim, cost-steered work-stealing, and a merge coordinator whose
//!   report is byte-identical to the single-process run.
//! * [`cache`] — the content-addressed, on-disk [`CellCache`]: repeated
//!   campaigns replay cached cells instead of re-simulating, with
//!   byte-identical reports either way.  Concurrent misses on the same key
//!   coalesce onto one simulation (keyed singleflight), and LRU/age GC
//!   keeps long-lived caches bounded.
//! * [`experiment`] — run one trace under one policy against the monolithic
//!   baseline (adapter over [`campaign`]).
//! * [`suite`] — run the SPEC stand-ins or the Table 2 categories in parallel
//!   (adapter over [`campaign`]).
//! * [`figures`] — regenerate every figure and table of the evaluation section.
//! * [`report`] — Markdown / CSV rendering of figures and campaign reports.
//!
//! ```
//! use hc_core::campaign::{CampaignBuilder, CampaignRunner};
//! use hc_core::policy::PolicyKind;
//! use hc_trace::SpecBenchmark;
//!
//! let spec = CampaignBuilder::new("demo")
//!     .policy(PolicyKind::P888)
//!     .spec(SpecBenchmark::Gzip)
//!     .trace_len(2_000)
//!     .build()
//!     .expect("valid campaign");
//! let report = CampaignRunner::new().run(&spec).expect("campaign runs");
//! let speedup = report.mean_speedup("8_8_8").expect("policy in grid");
//! println!("8_8_8: {:.1}% vs the monolithic baseline", (speedup - 1.0) * 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod campaign;
pub mod experiment;
pub mod fanout;
pub mod figures;
pub mod policy;
pub mod report;
pub mod scenario;
pub mod shard;
pub mod suite;

pub use cache::{
    CacheActivity, CacheStats, CachedCell, CellCache, CellClaim, CellJoin, CellKey, CellLead,
    CostModel, GcOutcome, GcPolicy, PackOutcome, CACHE_LAYOUT_VERSION, CACHE_SCHEMA_VERSION,
};
pub use campaign::{
    CampaignBuilder, CampaignError, CampaignProgress, CampaignReport, CampaignRunner, CampaignSpec,
    TraceSelector, CAMPAIGN_SCHEMA_VERSION, CAMPAIGN_SPEC_SCHEMA_VERSION,
    LEGACY_CAMPAIGN_SCHEMA_VERSION, LEGACY_CAMPAIGN_SPEC_SCHEMA_VERSION,
};
pub use experiment::{Experiment, ExperimentResult};
pub use fanout::{
    lease_file_name, FanoutWorker, MergeCoordinator, MergeOutcome, MergeWait, ShardLease,
    WorkerOutcome,
};
pub use figures::{Figure, FigureRow};
pub use policy::{PolicyKind, PolicyPool, SteeringFeatures, SteeringStack};
pub use scenario::{ScenarioError, ScenarioSpec, DEFAULT_SCENARIO_NAME};
pub use shard::{
    CampaignShard, ShardPlan, ShardReport, ShardStrategy, ShardedCampaignRunner, ShardedRunOutcome,
    LEGACY_SHARD_SCHEMA_VERSION, SCENARIO_SHARD_SCHEMA_VERSION, SHARD_SCHEMA_VERSION,
};
pub use suite::{SuiteResult, SuiteRunner};
