//! # hc-core
//!
//! The paper's contribution: **data-width aware instruction selection
//! policies** for a processor augmented with an 8-bit helper cluster, plus the
//! experiment / suite / figure-reproduction machinery built on top of the
//! `hc-sim` cycle simulator.
//!
//! * [`policy`] — the composable steering stack (8_8_8, BR, LR, CR, CP, IR,
//!   IR-ND) and the [`policy::PolicyKind`] catalogue.
//! * [`experiment`] — run one trace under one policy against the monolithic
//!   baseline.
//! * [`suite`] — run the SPEC stand-ins or the Table 2 categories in parallel.
//! * [`figures`] — regenerate every figure and table of the evaluation section.
//! * [`report`] — Markdown / CSV rendering of the reproduced figures.
//!
//! ```
//! use hc_core::experiment::Experiment;
//! use hc_core::policy::PolicyKind;
//! use hc_trace::SpecBenchmark;
//!
//! let trace = SpecBenchmark::Gzip.trace(2_000);
//! let result = Experiment::default().run(&trace, PolicyKind::P888);
//! println!("{}: {:.1}% faster than the monolithic baseline",
//!          result.policy, result.performance_increase_pct());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod figures;
pub mod policy;
pub mod report;
pub mod suite;

pub use experiment::{Experiment, ExperimentResult};
pub use figures::{Figure, FigureRow};
pub use policy::{PolicyKind, SteeringFeatures, SteeringStack};
pub use suite::{SuiteResult, SuiteRunner};
