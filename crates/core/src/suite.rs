//! Running whole workload suites (the 12 SPEC traces, the Table 2 categories)
//! and aggregating the results.
//!
//! Since the campaign redesign [`SuiteRunner`] is a thin adapter over the
//! [`crate::campaign`] grid engine, and since the sharded-suite redesign it
//! **streams**: profile and selector suites synthesize each trace inside the
//! worker that simulates it and drop it when the row finishes, so running
//! the full 409-profile Table 2 suite holds O(worker threads) traces in
//! memory, not 409.  Each trace's monolithic baseline is still simulated
//! exactly once.

use crate::campaign::{resolve_batch, run_grid, run_grid_streaming, RowTrace, ScenarioExperiment};
use crate::experiment::{Experiment, ExperimentResult};
use crate::policy::PolicyKind;
use hc_trace::{SpecBenchmark, Trace, WorkloadProfile};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::BTreeMap;

/// Aggregated results over a suite of traces for one policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteResult {
    /// Policy evaluated.
    pub policy: String,
    /// Per-trace results, in suite order.
    pub per_trace: Vec<ExperimentResult>,
}

impl SuiteResult {
    /// Arithmetic-mean speedup over the suite.
    pub fn mean_speedup(&self) -> f64 {
        if self.per_trace.is_empty() {
            return 1.0;
        }
        self.per_trace.iter().map(|r| r.speedup()).sum::<f64>() / self.per_trace.len() as f64
    }

    /// Mean performance increase in percent.
    pub fn mean_performance_increase_pct(&self) -> f64 {
        (self.mean_speedup() - 1.0) * 100.0
    }

    /// Mean speedup per workload category (the trace's `category` label;
    /// traces without one are grouped under `"uncategorized"`).
    pub fn mean_speedup_by_category(&self) -> BTreeMap<String, f64> {
        let mut sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
        for r in &self.per_trace {
            let cat = r
                .category
                .clone()
                .unwrap_or_else(|| "uncategorized".to_string());
            let e = sums.entry(cat).or_insert((0.0, 0));
            e.0 += r.speedup();
            e.1 += 1;
        }
        sums.into_iter()
            .map(|(k, (s, n))| (k, s / n as f64))
            .collect()
    }

    /// Per-application speedups sorted ascending — the S-curve of Figure 14.
    /// Sorted with [`f64::total_cmp`] (a true total order), matching the
    /// degenerate-cell policy of `CampaignReport::speedup_curve`: zero-cycle
    /// runs measure 0.0 and sort first, and no input can destabilise the
    /// sort.
    pub fn speedup_curve(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.per_trace.iter().map(|r| r.speedup()).collect();
        v.sort_by(f64::total_cmp);
        v
    }
}

/// Runs suites of workload profiles under an [`Experiment`].
#[derive(Debug, Clone, Default)]
pub struct SuiteRunner {
    experiment: Experiment,
}

impl SuiteRunner {
    /// Create a suite runner with the given experiment configuration.
    pub fn new(experiment: Experiment) -> SuiteRunner {
        SuiteRunner { experiment }
    }

    /// Run one policy over a set of already-generated traces, sharing one
    /// baseline simulation per trace.
    pub fn run_traces(&self, traces: &[Trace], kind: PolicyKind) -> SuiteResult {
        let grid = run_grid(&self.experiment, traces, &[kind], 0, true, None);
        SuiteResult {
            policy: kind.name().to_string(),
            per_trace: grid.into_experiment_results(),
        }
    }

    /// Run one policy over a list of workload profiles.  Each profile's
    /// trace is synthesized inside the worker that simulates it and dropped
    /// when its row finishes — the suite streams instead of materializing
    /// every trace up front.
    pub fn run_profiles(&self, profiles: &[WorkloadProfile], kind: PolicyKind) -> SuiteResult {
        let grid = run_grid_streaming(
            std::slice::from_ref(&ScenarioExperiment::legacy(self.experiment.clone())),
            profiles,
            |p| Ok(RowTrace::Materialized(Cow::Owned(p.generate()))),
            &[kind],
            0,
            true,
            None,
            None,
            resolve_batch(None, 1, &[kind], true),
        )
        .expect("materialized rows cannot fail");
        SuiteResult {
            policy: kind.name().to_string(),
            per_trace: grid.into_experiment_results(),
        }
    }

    /// Run one policy over the 12 SPEC Int 2000 stand-in traces (streamed
    /// like [`SuiteRunner::run_profiles`]).
    pub fn run_spec(&self, trace_len: usize, kind: PolicyKind) -> SuiteResult {
        let grid = run_grid_streaming(
            std::slice::from_ref(&ScenarioExperiment::legacy(self.experiment.clone())),
            &SpecBenchmark::ALL,
            |b| Ok(RowTrace::Materialized(Cow::Owned(b.trace(trace_len)))),
            &[kind],
            0,
            true,
            None,
            None,
            resolve_batch(None, 1, &[kind], true),
        )
        .expect("materialized rows cannot fail");
        SuiteResult {
            policy: kind.name().to_string(),
            per_trace: grid.into_experiment_results(),
        }
    }

    /// Run one policy over the first `apps_per_category` applications of
    /// every Table 2 category, streaming trace synthesis.  Passing
    /// `usize::MAX` runs the paper's full 409-trace §3.8 suite.
    pub fn run_categories(
        &self,
        apps_per_category: usize,
        trace_len: usize,
        kind: PolicyKind,
    ) -> SuiteResult {
        let profiles: Vec<WorkloadProfile> =
            hc_trace::suite_profiles(Some(apps_per_category), trace_len).collect();
        self.run_profiles(&profiles, kind)
    }

    /// The underlying experiment.
    pub fn experiment(&self) -> &Experiment {
        &self.experiment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_trace::reduced_suite;

    #[test]
    fn spec_suite_runs_all_benchmarks() {
        let runner = SuiteRunner::default();
        let r = runner.run_spec(1_500, PolicyKind::P888);
        assert_eq!(r.per_trace.len(), 12);
        assert!(r.mean_speedup() > 0.5);
        assert_eq!(r.policy, "8_8_8");
    }

    #[test]
    fn profile_suite_groups_by_category() {
        let runner = SuiteRunner::default();
        let profiles = reduced_suite(1, 1_200);
        let r = runner.run_profiles(&profiles, PolicyKind::Ir);
        assert_eq!(r.per_trace.len(), 7);
        let by_cat = r.mean_speedup_by_category();
        assert_eq!(by_cat.len(), 7, "one entry per category: {by_cat:?}");
        // The groups are the actual Table 2 category labels, not prefixes of
        // the trace names.
        for cat in ["enc", "sfp", "kernels", "mm", "office", "prod", "ws"] {
            assert!(by_cat.contains_key(cat), "{cat} missing from {by_cat:?}");
        }
    }

    #[test]
    fn uncategorized_traces_group_under_a_stable_key() {
        let runner = SuiteRunner::default();
        let r = runner.run_spec(800, PolicyKind::P888);
        let by_cat = r.mean_speedup_by_category();
        assert_eq!(by_cat.len(), 1, "SPEC stand-ins carry no category label");
        assert!(by_cat.contains_key("uncategorized"));
    }

    #[test]
    fn category_suite_matches_materialized_profiles() {
        // The streaming category path must equal running the same profiles
        // through the classic profile path.
        let runner = SuiteRunner::default();
        let streamed = runner.run_categories(1, 1_000, PolicyKind::Ir);
        let materialized = runner.run_profiles(&reduced_suite(1, 1_000), PolicyKind::Ir);
        assert_eq!(streamed, materialized);
        assert_eq!(streamed.per_trace.len(), 7);
    }

    #[test]
    fn speedup_curve_is_sorted() {
        let runner = SuiteRunner::default();
        let profiles = reduced_suite(2, 1_000);
        let r = runner.run_profiles(&profiles, PolicyKind::P888);
        let curve = r.speedup_curve();
        assert_eq!(curve.len(), 14);
        assert!(curve.windows(2).all(|w| w[0] <= w[1]));
    }
}
