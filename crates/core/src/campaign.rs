//! Declarative evaluation campaigns: policy × trace grids with shared
//! baselines, typed errors and a stable, versioned results schema.
//!
//! A [`CampaignSpec`] describes *what* to evaluate — a set of
//! [`PolicyKind`]s crossed with a set of [`TraceSelector`]s plus the
//! simulator configuration and warmup / length knobs — and is fully
//! serde-round-trippable, so campaigns can be stored, diffed and replayed.
//! A [`CampaignRunner`] executes the grid:
//!
//! * each trace's **monolithic baseline is simulated exactly once** and
//!   shared across every policy (an N-policy sweep is ~2× cheaper than N
//!   independent [`Experiment::run`] calls);
//! * traces fan out in parallel over the rayon-style thread pool;
//! * a progress hook observes cell completions as they happen;
//! * the result is a versioned [`CampaignReport`] with JSON and CSV
//!   renderings (see [`crate::report`]).
//!
//! [`Experiment`], [`crate::suite::SuiteRunner`] and [`crate::figures`] are
//! thin adapters over this engine.
//!
//! ```
//! use hc_core::campaign::{CampaignBuilder, CampaignRunner};
//! use hc_core::policy::PolicyKind;
//! use hc_trace::SpecBenchmark;
//!
//! let spec = CampaignBuilder::new("quick")
//!     .policy(PolicyKind::P888)
//!     .policy(PolicyKind::Ir)
//!     .spec(SpecBenchmark::Gzip)
//!     .trace_len(2_000)
//!     .build()
//!     .unwrap();
//! let report = CampaignRunner::new().run(&spec).unwrap();
//! assert_eq!(report.baseline_runs, 1); // one trace -> one baseline, shared
//! assert_eq!(report.cells.len(), 2);
//! ```

use crate::cache::{CellCache, CellClaim, CellJoin, CellKey, CellLead};
use crate::experiment::{Experiment, ExperimentResult};
use crate::policy::{PolicyKind, PolicyPool};
use crate::scenario::{ScenarioError, ScenarioSpec, DEFAULT_SCENARIO_NAME};
use hc_power::{Ed2Comparison, PowerModel, PowerParams};
use hc_predictors::PredictorConfig;
use hc_sim::{BatchJob, ConfigError, SimConfig, SimStats, Simulator, SteeringPolicy};
use hc_trace::{
    read_header, FileSource, PhaseSchedule, PhasedSource, SpecBenchmark, Trace, TraceSource,
    WorkloadCategory, WorkloadProfile,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Version of the [`CampaignSpec`] wire schema.  Bumped whenever a
/// serialized *spec* field changes meaning; decoders reject mismatched
/// versions with a typed error instead of misreading data.
///
/// * v1 — policy × trace grid against a single `config` machine.
/// * v2 — `config` replaced by a `scenarios` list ([`ScenarioSpec`] overlays:
///   machine + predictors + power).
///
/// A spec whose only scenario is the legacy overlay (default name, paper
/// predictors, default power — any machine) still **encodes as v1**, so every
/// pre-scenario spec, shard checkpoint and golden snapshot stays byte-stable;
/// v2 is emitted exactly when the scenario axis is actually used.  Decoders
/// accept both.
pub const CAMPAIGN_SPEC_SCHEMA_VERSION: u32 = 2;

/// The legacy spec wire version still emitted for single-default-scenario
/// campaigns (see [`CAMPAIGN_SPEC_SCHEMA_VERSION`]).
pub const LEGACY_CAMPAIGN_SPEC_SCHEMA_VERSION: u32 = 1;

/// Version of the [`CampaignReport`] wire schema.  Bumped whenever a
/// serialized *report* field changes meaning; decoders reject mismatched
/// versions with a typed error instead of misreading data.
///
/// * v1 — initial schema.
/// * v2 — [`CampaignReport`] gained `trace_generations` (trace-synthesis
///   memoization instrumentation, mirroring `baseline_runs`).
/// * v3 — scenario axes: the embedded spec may carry `scenarios` (spec v2)
///   and every cell / baseline carries its `scenario` key.
///
/// Mirroring the spec versioning, a report over a single-default-scenario
/// campaign still **encodes as v2** — cells carry no `scenario` field and
/// the embedded spec encodes as v1 — keeping the golden snapshots and every
/// pre-scenario consumer byte-stable.  Decoders accept v2 and v3.
pub const CAMPAIGN_SCHEMA_VERSION: u32 = 3;

/// The legacy report wire version still emitted for single-default-scenario
/// campaigns (see [`CAMPAIGN_SCHEMA_VERSION`]).
pub const LEGACY_CAMPAIGN_SCHEMA_VERSION: u32 = 2;

/// Everything that can go wrong assembling, decoding or running a campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The simulator configuration was rejected.
    Config(ConfigError),
    /// The spec names no policies.
    NoPolicies,
    /// The spec names no traces.
    NoTraces,
    /// The spec asks for zero-length traces.
    ZeroTraceLength,
    /// The spec disables baselines but asks for the `baseline` policy
    /// column, whose cells *are* baseline runs — a contradiction.
    BaselinePolicyWithoutBaseline,
    /// Two trace selectors generate the same trace name; report cells are
    /// keyed by name, so duplicates would silently join to the wrong
    /// baseline.
    DuplicateTraceLabel(String),
    /// The same policy appears twice; report cells are keyed by policy
    /// name, so duplicates would double-count in every aggregate.
    DuplicatePolicy(String),
    /// The spec names no scenarios (a spec always carries at least the
    /// default overlay; an explicitly empty list is a construction bug).
    NoScenarios,
    /// Two scenarios share a name; cells are keyed by it.
    DuplicateScenario(String),
    /// A scenario's predictor or power axis was rejected by its owning
    /// crate's validator (machine rejections keep surfacing as
    /// [`CampaignError::Config`]).
    Scenario {
        /// The offending scenario's name.
        name: String,
        /// What its owning crate objected to.
        error: ScenarioError,
    },
    /// A serialized spec/report was produced by an incompatible schema.
    UnsupportedSchemaVersion {
        /// Version found in the document.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// A serialized spec/report could not be decoded.
    Decode(String),
    /// A sharded run was asked for zero shards.
    ZeroShardCount,
    /// A shard names an index outside its own shard count.
    ShardIndexOutOfRange {
        /// Shard index found.
        index: usize,
        /// Shard count the shard claims to belong to.
        count: usize,
    },
    /// [`CampaignReport::merge`] was handed no shards.
    NoShards,
    /// Shards being merged disagree on the spec or shard count — they do not
    /// come from one partition of one campaign.
    ShardSetMismatch(String),
    /// Two shards being merged both carry the same trace row.
    ShardOverlap {
        /// Index (into the spec's trace list) claimed twice.
        trace_index: usize,
    },
    /// The shards being merged do not cover every trace row of the spec.
    IncompleteShardSet {
        /// First uncovered index into the spec's trace list.
        missing_trace_index: usize,
    },
    /// A shard's payload is internally inconsistent (wrong cell/baseline
    /// counts for its claimed rows) — typically a corrupt checkpoint file.
    MalformedShard {
        /// The shard's index.
        index: usize,
        /// What was wrong.
        reason: String,
    },
    /// A checkpoint directory could not be read, written or trusted.
    Checkpoint(String),
    /// The distributed fan-out coordination layer (lease files, manifest
    /// adoption, merge watching — see [`crate::fanout`]) failed in a way
    /// that is not attributable to any single shard payload.
    Fanout(String),
    /// A cell-cache directory could not be opened, trusted or written
    /// (see [`crate::cache::CellCache::open`]).
    Cache(String),
    /// A trace source — a recorded `.uoptrace` file or a phase schedule —
    /// could not be opened, validated or streamed.
    Trace(String),
    /// A figure asked a report for a (policy, trace) cell the report does
    /// not contain — the shape a truncated or partially-merged report takes.
    MissingCell {
        /// Policy of the absent cell.
        policy: String,
        /// Trace of the absent cell.
        trace: String,
    },
    /// A figure needed a trace's baseline but the report carries none —
    /// either baselines were disabled or the report is malformed.
    MissingBaseline {
        /// Trace whose baseline is absent.
        trace: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Config(e) => write!(f, "invalid simulator configuration: {e}"),
            CampaignError::NoPolicies => write!(f, "campaign names no policies"),
            CampaignError::NoTraces => write!(f, "campaign names no traces"),
            CampaignError::ZeroTraceLength => write!(f, "campaign trace length must be non-zero"),
            CampaignError::BaselinePolicyWithoutBaseline => write!(
                f,
                "campaign disables baselines but includes the baseline policy"
            ),
            CampaignError::DuplicateTraceLabel(label) => {
                write!(f, "campaign names the trace `{label}` more than once")
            }
            CampaignError::DuplicatePolicy(name) => {
                write!(f, "campaign names the policy `{name}` more than once")
            }
            CampaignError::NoScenarios => write!(f, "campaign names no scenarios"),
            CampaignError::DuplicateScenario(name) => {
                write!(f, "campaign names the scenario `{name}` more than once")
            }
            CampaignError::Scenario { name, error } => {
                write!(f, "invalid scenario `{name}`: {error}")
            }
            CampaignError::UnsupportedSchemaVersion { found, supported } => write!(
                f,
                "unsupported campaign schema version {found} (this build supports {supported})"
            ),
            CampaignError::Decode(msg) => write!(f, "malformed campaign document: {msg}"),
            CampaignError::ZeroShardCount => write!(f, "campaign shard count must be non-zero"),
            CampaignError::ShardIndexOutOfRange { index, count } => {
                write!(f, "shard index {index} out of range for {count} shards")
            }
            CampaignError::NoShards => write!(f, "no shard reports to merge"),
            CampaignError::ShardSetMismatch(msg) => {
                write!(f, "shards do not belong to one campaign partition: {msg}")
            }
            CampaignError::ShardOverlap { trace_index } => {
                write!(
                    f,
                    "trace row {trace_index} is claimed by more than one shard"
                )
            }
            CampaignError::IncompleteShardSet {
                missing_trace_index,
            } => write!(
                f,
                "shard set does not cover trace row {missing_trace_index}"
            ),
            CampaignError::MalformedShard { index, reason } => {
                write!(f, "shard {index} is malformed: {reason}")
            }
            CampaignError::Checkpoint(msg) => write!(f, "campaign checkpoint error: {msg}"),
            CampaignError::Fanout(msg) => write!(f, "distributed fan-out error: {msg}"),
            CampaignError::Cache(msg) => write!(f, "cell cache error: {msg}"),
            CampaignError::Trace(msg) => write!(f, "trace source error: {msg}"),
            CampaignError::MissingCell { policy, trace } => {
                write!(
                    f,
                    "report has no cell for policy `{policy}` × trace `{trace}`"
                )
            }
            CampaignError::MissingBaseline { trace } => {
                write!(f, "report has no baseline for trace `{trace}`")
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Config(e) => Some(e),
            CampaignError::Scenario { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<ConfigError> for CampaignError {
    fn from(e: ConfigError) -> CampaignError {
        CampaignError::Config(e)
    }
}

impl From<hc_trace::TraceError> for CampaignError {
    fn from(e: hc_trace::TraceError) -> CampaignError {
        CampaignError::Trace(e.to_string())
    }
}

/// How a campaign names one workload trace, declaratively.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceSelector {
    /// One of the 12 SPEC Int 2000 stand-ins.
    Spec(SpecBenchmark),
    /// The `app`-th application profile of a Table 2 workload category.
    CategoryApp {
        /// Workload category.
        category: WorkloadCategory,
        /// Application index within the category (0-based).
        app: usize,
    },
    /// An explicit workload profile.
    Profile(WorkloadProfile),
    /// A recorded `.uoptrace` file (see [`hc_trace::format`]).  The row
    /// streams from disk instead of being synthesized, its name and category
    /// travel inside the file, and its cache identity is the file's content
    /// digest — never its path.  The spec's `trace_len` does not apply; the
    /// file supplies exactly the µops that were recorded.
    File {
        /// Path to the `.uoptrace` file.
        path: String,
    },
    /// A phase-structured workload: an ordered composition of
    /// [`WorkloadProfile`] segments (see [`PhaseSchedule`]), streamed one
    /// phase at a time.  The schedule's per-phase µop budgets replace the
    /// spec's `trace_len`.
    Phased {
        /// The schedule to synthesize.
        schedule: PhaseSchedule,
    },
}

impl TraceSelector {
    /// The trace name this selector will generate.
    ///
    /// For a `File` row the name travels inside the recording, so this reads
    /// the file's tiny fixed header (a few hundred bytes); an unreadable
    /// file falls back to a path-derived placeholder here and then fails
    /// with a typed [`CampaignError::Trace`] when the campaign actually
    /// opens it.
    pub fn label(&self, trace_len: usize) -> String {
        match self {
            TraceSelector::Spec(b) => b.name().to_string(),
            TraceSelector::CategoryApp { category, app } => {
                category.app_profile(*app, trace_len).name
            }
            TraceSelector::Profile(p) => p.name.clone(),
            TraceSelector::File { path } => read_header(Path::new(path))
                .map(|h| h.name)
                .unwrap_or_else(|_| format!("file:{path}")),
            TraceSelector::Phased { schedule } => schedule.name.clone(),
        }
    }

    /// Generate the trace at the given dynamic length.
    ///
    /// # Panics
    ///
    /// Panics if a `File` row's recording cannot be read — campaign
    /// execution never takes this path for `File` rows (it streams them via
    /// the fallible [`FileSource`] route); this method is the eager adapter
    /// for callers that need a materialized [`Trace`].
    pub fn generate(&self, trace_len: usize) -> Trace {
        match self {
            TraceSelector::Spec(b) => b.trace(trace_len),
            TraceSelector::CategoryApp { category, app } => {
                category.app_profile(*app, trace_len).generate()
            }
            TraceSelector::Profile(p) => p.clone().with_trace_len(trace_len).generate(),
            TraceSelector::File { path } => match hc_trace::load_trace(Path::new(path)) {
                Ok(trace) => trace,
                Err(e) => panic!("cannot load trace file `{path}`: {e}"),
            },
            TraceSelector::Phased { schedule } => schedule.materialize(),
        }
    }

    /// The serialized trace identity cell-cache keys embed for this row.
    ///
    /// Synthesized selectors key cells by their own serde document exactly
    /// as before, so existing cache entries stay valid.  A `File` row keys
    /// by the recording's *content* — digest, µop count and encoding version
    /// from its header — never its path: moving or renaming a recording
    /// keeps its cached cells, while changing its µops invalidates them.
    pub fn cache_doc(&self) -> Result<serde::Value, CampaignError> {
        match self {
            TraceSelector::File { path } => {
                let header = read_header(Path::new(path))
                    .map_err(|e| CampaignError::Trace(format!("{path}: {e}")))?;
                Ok(serde::Value::Map(vec![(
                    "File".to_string(),
                    serde::Value::Map(vec![
                        (
                            "digest".to_string(),
                            serde::Value::Str(format!("{:016x}", header.content_digest)),
                        ),
                        ("uops".to_string(), serde::Value::UInt(header.uop_count)),
                        (
                            "isa_encoding".to_string(),
                            serde::Value::UInt(u64::from(header.isa_encoding_version)),
                        ),
                    ]),
                )]))
            }
            other => Ok(Serialize::to_value(other)),
        }
    }
}

/// Resolve the serialized cache identity of every spec row up front, so the
/// grid's per-row projection is infallible and each `File` header is read
/// once per campaign instead of once per cell.
pub(crate) fn resolve_row_docs(
    traces: &[TraceSelector],
) -> Result<Vec<serde::Value>, CampaignError> {
    traces.iter().map(TraceSelector::cache_doc).collect()
}

/// One grid row's µop supply: a materialized trace (synthesized selectors
/// and the borrowed-trace adapter paths) or a streaming [`TraceSource`]
/// (`File` and `Phased` rows), which the engine feeds to the simulator a
/// bounded window at a time.
pub(crate) enum RowTrace<'a> {
    Materialized(Cow<'a, Trace>),
    Streamed(Box<dyn TraceSource + Send>),
}

/// Open one selector's µop supply.
pub(crate) fn make_row_trace(
    selector: &TraceSelector,
    trace_len: usize,
) -> Result<RowTrace<'static>, CampaignError> {
    Ok(match selector {
        TraceSelector::File { path } => RowTrace::Streamed(Box::new(
            FileSource::open(Path::new(path))
                .map_err(|e| CampaignError::Trace(format!("{path}: {e}")))?,
        )),
        TraceSelector::Phased { schedule } => {
            RowTrace::Streamed(Box::new(PhasedSource::new(schedule.clone())))
        }
        synthesized => RowTrace::Materialized(Cow::Owned(synthesized.generate(trace_len))),
    })
}

/// A declarative policy × trace × scenario evaluation grid.
///
/// Serde-round-trippable: `serde::json::to_string` / `from_str` (or
/// [`CampaignSpec::to_json`] / [`CampaignSpec::from_json`], which also check
/// the schema version) reproduce the spec exactly.  A spec whose only
/// scenario is the legacy overlay serializes in the v1 wire shape (a
/// `config` field instead of `scenarios`), so pre-scenario documents keep
/// round-tripping byte-for-byte; see [`CAMPAIGN_SPEC_SCHEMA_VERSION`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Schema version this spec was written with (1 for single-default-
    /// scenario specs, 2 once the scenario axis is used).
    pub schema_version: u32,
    /// Campaign name, echoed into the report.
    pub name: String,
    /// Policies to evaluate (the grid's first axis).
    pub policies: Vec<PolicyKind>,
    /// Traces to evaluate on (the grid's second axis).
    pub traces: Vec<TraceSelector>,
    /// Dynamic µops per generated trace.
    pub trace_len: usize,
    /// Unmeasured priming runs per cell before the measured run: the policy
    /// instance (and its predictors) stays warm across them.  `0` reproduces
    /// [`Experiment::run`] exactly.
    pub warmup_runs: usize,
    /// Whether to simulate the monolithic baseline for every (trace,
    /// scenario) pair (needed for speedups; disable for stat-only sweeps to
    /// halve the work).
    pub include_baseline: bool,
    /// Machines under test (the grid's third axis).  Every scenario's
    /// baseline uses that scenario's machine with the helper cluster
    /// removed.
    pub scenarios: Vec<ScenarioSpec>,
}

/// The wire version a scenario list canonically encodes as: v1 while the
/// scenario axis is unused (one legacy overlay), v2 otherwise.
pub(crate) fn spec_wire_version(scenarios: &[ScenarioSpec]) -> u32 {
    match scenarios {
        [only] if only.is_legacy_overlay() => LEGACY_CAMPAIGN_SPEC_SCHEMA_VERSION,
        _ => CAMPAIGN_SPEC_SCHEMA_VERSION,
    }
}

/// The report wire version for a spec: legacy v2 for legacy (v1) specs,
/// v3 once the scenario axis is used.
pub(crate) fn report_wire_version(spec: &CampaignSpec) -> u32 {
    if spec.is_single_default_scenario() {
        LEGACY_CAMPAIGN_SCHEMA_VERSION
    } else {
        CAMPAIGN_SCHEMA_VERSION
    }
}

impl CampaignSpec {
    /// The wire version this spec serializes as.  Normally the canonical
    /// version of its scenario list, but a spec that *declares* v2 (e.g. a
    /// decoded v2 document whose scenario list happens to be the single
    /// default overlay — a shape v2 permits) keeps v2, so decode → encode
    /// is the identity for every accepted document.
    pub fn wire_version(&self) -> u32 {
        if self.schema_version == CAMPAIGN_SPEC_SCHEMA_VERSION {
            CAMPAIGN_SPEC_SCHEMA_VERSION
        } else {
            spec_wire_version(&self.scenarios)
        }
    }

    /// Whether this spec runs on the legacy single-default-scenario path —
    /// the case that keeps every wire format (spec, report, shard, cells)
    /// byte-identical to the pre-scenario engine.  A spec that explicitly
    /// declares the v2 schema opts out even with a single default overlay.
    pub fn is_single_default_scenario(&self) -> bool {
        self.wire_version() == LEGACY_CAMPAIGN_SPEC_SCHEMA_VERSION
    }

    /// The machine of the spec's first scenario — the single machine of
    /// every pre-scenario campaign, kept as a convenience accessor.
    ///
    /// # Panics
    ///
    /// Panics if the spec names no scenarios (invalid; [`CampaignSpec::validate`]
    /// rejects it).
    pub fn primary_machine(&self) -> &SimConfig {
        &self
            .scenarios
            .first()
            .expect("validated specs have at least one scenario")
            .machine
    }

    /// Validate the spec, returning the first problem found.
    pub fn validate(&self) -> Result<(), CampaignError> {
        // Accepted versions: the canonical encoding of this scenario list,
        // or an explicit v2 declaration (v2 is a superset — any scenario
        // list is expressible in it).  Rejected: v1 claimed for a list that
        // needs v2, or unknown versions.
        let canonical = spec_wire_version(&self.scenarios);
        if self.schema_version != canonical && self.schema_version != CAMPAIGN_SPEC_SCHEMA_VERSION {
            return Err(CampaignError::UnsupportedSchemaVersion {
                found: self.schema_version,
                supported: CAMPAIGN_SPEC_SCHEMA_VERSION,
            });
        }
        if self.policies.is_empty() {
            return Err(CampaignError::NoPolicies);
        }
        if self.traces.is_empty() {
            return Err(CampaignError::NoTraces);
        }
        if self.trace_len == 0 {
            return Err(CampaignError::ZeroTraceLength);
        }
        if !self.include_baseline && self.policies.contains(&PolicyKind::Baseline) {
            return Err(CampaignError::BaselinePolicyWithoutBaseline);
        }
        let mut policies = std::collections::BTreeSet::new();
        for kind in &self.policies {
            if !policies.insert(kind.name()) {
                return Err(CampaignError::DuplicatePolicy(kind.name().to_string()));
            }
        }
        let mut labels = std::collections::BTreeSet::new();
        for selector in &self.traces {
            if let TraceSelector::Phased { schedule } = selector {
                if schedule.phases.is_empty() {
                    return Err(CampaignError::Trace(format!(
                        "phase schedule `{}` has no phases",
                        schedule.name
                    )));
                }
                if schedule.phases.iter().any(|p| p.uops == 0) {
                    return Err(CampaignError::Trace(format!(
                        "phase schedule `{}` has a zero-length phase",
                        schedule.name
                    )));
                }
            }
            let label = selector.label(self.trace_len);
            if !labels.insert(label.clone()) {
                return Err(CampaignError::DuplicateTraceLabel(label));
            }
        }
        if self.scenarios.is_empty() {
            return Err(CampaignError::NoScenarios);
        }
        let mut scenario_names = std::collections::BTreeSet::new();
        for scenario in &self.scenarios {
            if !scenario_names.insert(scenario.name.clone()) {
                return Err(CampaignError::DuplicateScenario(scenario.name.clone()));
            }
            scenario.validate().map_err(|error| match error {
                // Machine rejections keep their pre-scenario shape so
                // existing error handling (and its source chain) still works.
                ScenarioError::Machine(e) => CampaignError::Config(e),
                other => CampaignError::Scenario {
                    name: scenario.name.clone(),
                    error: other,
                },
            })?;
        }
        Ok(())
    }

    /// Number of policy × trace × scenario cells in the grid.
    pub fn cell_count(&self) -> usize {
        self.policies.len() * self.traces.len() * self.scenarios.len()
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Decode from JSON (v1 or v2), checking the schema version first.
    pub fn from_json(text: &str) -> Result<CampaignSpec, CampaignError> {
        let value = decode_versioned(
            text,
            &[
                LEGACY_CAMPAIGN_SPEC_SCHEMA_VERSION,
                CAMPAIGN_SPEC_SCHEMA_VERSION,
            ],
        )?;
        Deserialize::from_value(&value).map_err(|e| CampaignError::Decode(e.to_string()))
    }
}

impl Serialize for CampaignSpec {
    fn to_value(&self) -> serde::Value {
        let version = self.wire_version();
        let mut fields = vec![
            (
                "schema_version".to_string(),
                serde::Value::UInt(version as u64),
            ),
            ("name".to_string(), Serialize::to_value(&self.name)),
            ("policies".to_string(), Serialize::to_value(&self.policies)),
            ("traces".to_string(), Serialize::to_value(&self.traces)),
            (
                "trace_len".to_string(),
                Serialize::to_value(&self.trace_len),
            ),
            (
                "warmup_runs".to_string(),
                Serialize::to_value(&self.warmup_runs),
            ),
            (
                "include_baseline".to_string(),
                Serialize::to_value(&self.include_baseline),
            ),
        ];
        if version == LEGACY_CAMPAIGN_SPEC_SCHEMA_VERSION {
            // The v1 wire shape: the single legacy scenario's machine as the
            // `config` field, byte-identical to pre-scenario specs.
            fields.push((
                "config".to_string(),
                Serialize::to_value(&self.scenarios[0].machine),
            ));
        } else {
            fields.push((
                "scenarios".to_string(),
                Serialize::to_value(&self.scenarios),
            ));
        }
        serde::Value::Map(fields)
    }
}

impl Deserialize for CampaignSpec {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for struct CampaignSpec"))?;
        let schema_version: u32 = serde::de_field(m, "schema_version")?;
        let scenarios = match schema_version {
            LEGACY_CAMPAIGN_SPEC_SCHEMA_VERSION => {
                let config: SimConfig = serde::de_field(m, "config")?;
                vec![ScenarioSpec::overlay_of(config)]
            }
            CAMPAIGN_SPEC_SCHEMA_VERSION => serde::de_field(m, "scenarios")?,
            other => {
                return Err(serde::Error::custom(format!(
                    "unsupported campaign spec schema version {other}"
                )))
            }
        };
        Ok(CampaignSpec {
            schema_version,
            name: serde::de_field(m, "name")?,
            policies: serde::de_field(m, "policies")?,
            traces: serde::de_field(m, "traces")?,
            trace_len: serde::de_field(m, "trace_len")?,
            warmup_runs: serde::de_field(m, "warmup_runs")?,
            include_baseline: serde::de_field(m, "include_baseline")?,
            scenarios,
        })
    }
}

/// Parse JSON and verify its `schema_version` field against the `supported`
/// versions before full decoding.  A mismatch reports the newest supported
/// version.
pub(crate) fn decode_versioned(
    text: &str,
    supported: &[u32],
) -> Result<serde::Value, CampaignError> {
    let value = serde::json::parse(text).map_err(|e| CampaignError::Decode(e.to_string()))?;
    let found = match value.get("schema_version") {
        Some(serde::Value::UInt(n)) => *n as u32,
        _ => return Err(CampaignError::Decode("missing schema_version".to_string())),
    };
    if !supported.contains(&found) {
        return Err(CampaignError::UnsupportedSchemaVersion {
            found,
            supported: *supported.iter().max().expect("non-empty version list"),
        });
    }
    Ok(value)
}

/// Fluent constructor for [`CampaignSpec`].
#[derive(Debug, Clone)]
pub struct CampaignBuilder {
    spec: CampaignSpec,
    /// Base machine the implicit default scenario — and every sensitivity
    /// preset — derives from.
    machine: SimConfig,
    /// Requested scenario axis, expanded against the final base machine at
    /// [`CampaignBuilder::build`] so `.config(..)` works in any call order;
    /// empty means "the single default overlay of `machine`" (the legacy
    /// campaign shape).
    scenarios: Vec<ScenarioRequest>,
}

/// One deferred scenario-axis request; presets expand at build time so they
/// see the builder's *final* base machine regardless of call order.
#[derive(Debug, Clone)]
enum ScenarioRequest {
    Explicit(Box<ScenarioSpec>),
    HelperGeometry,
    WidthPredictor,
}

impl ScenarioRequest {
    fn expand(self, machine: &SimConfig, out: &mut Vec<ScenarioSpec>) {
        match self {
            ScenarioRequest::Explicit(scenario) => out.push(*scenario),
            ScenarioRequest::HelperGeometry => {
                for width_bits in [4u32, 8, 16] {
                    for ratio in [1u32, 2, 4] {
                        out.push(
                            ScenarioSpec::named(format!("hw{width_bits}_cr{ratio}x")).with_machine(
                                SimConfig {
                                    helper_width_bits: width_bits,
                                    helper_clock_ratio: ratio,
                                    ..machine.clone()
                                },
                            ),
                        );
                    }
                }
            }
            ScenarioRequest::WidthPredictor => {
                for entries in [256usize, 512, 1024, 2048, 4096] {
                    out.push(
                        ScenarioSpec::named(format!("wp{entries}"))
                            .with_machine(machine.clone())
                            .with_predictors(hc_predictors::PredictorConfig::with_all_entries(
                                entries,
                            )),
                    );
                }
            }
        }
    }
}

impl CampaignBuilder {
    /// Start a campaign with the paper-baseline machine as its single
    /// (default) scenario, no policies and no traces.
    pub fn new(name: impl Into<String>) -> CampaignBuilder {
        CampaignBuilder {
            spec: CampaignSpec {
                schema_version: LEGACY_CAMPAIGN_SPEC_SCHEMA_VERSION,
                name: name.into(),
                policies: Vec::new(),
                traces: Vec::new(),
                trace_len: 10_000,
                warmup_runs: 0,
                include_baseline: true,
                scenarios: Vec::new(),
            },
            machine: SimConfig::paper_baseline(),
            scenarios: Vec::new(),
        }
    }

    /// Add one policy column.
    pub fn policy(mut self, kind: PolicyKind) -> Self {
        self.spec.policies.push(kind);
        self
    }

    /// Add several policy columns.
    pub fn policies(mut self, kinds: impl IntoIterator<Item = PolicyKind>) -> Self {
        self.spec.policies.extend(kinds);
        self
    }

    /// Add the paper's seven helper-cluster policies (everything except the
    /// monolithic baseline), in the order the paper introduces them.
    pub fn paper_policies(self) -> Self {
        self.policies(
            PolicyKind::ALL
                .into_iter()
                .filter(|&k| k != PolicyKind::Baseline),
        )
    }

    /// Add one trace row.
    pub fn trace(mut self, selector: TraceSelector) -> Self {
        self.spec.traces.push(selector);
        self
    }

    /// Add one SPEC stand-in trace row.
    pub fn spec(self, benchmark: SpecBenchmark) -> Self {
        self.trace(TraceSelector::Spec(benchmark))
    }

    /// Add a recorded `.uoptrace` file as a trace row (streamed from disk).
    pub fn trace_file(self, path: impl Into<String>) -> Self {
        self.trace(TraceSelector::File { path: path.into() })
    }

    /// Add a phase-structured workload as a trace row (streamed one phase
    /// at a time).
    pub fn phased(self, schedule: PhaseSchedule) -> Self {
        self.trace(TraceSelector::Phased { schedule })
    }

    /// Add all 12 SPEC Int 2000 stand-in rows.
    pub fn spec_suite(mut self) -> Self {
        self.spec
            .traces
            .extend(SpecBenchmark::ALL.iter().map(|&b| TraceSelector::Spec(b)));
        self
    }

    /// Add the `app`-th application of a Table 2 category as a row.
    pub fn category_app(self, category: WorkloadCategory, app: usize) -> Self {
        self.trace(TraceSelector::CategoryApp { category, app })
    }

    /// Add up to `apps_per_category` applications from every Table 2 category,
    /// in category-then-app order.  The rows are *selectors* — each trace is
    /// synthesized on the fly inside a worker when the campaign runs, so even
    /// very large suites never sit in memory all at once.
    pub fn category_suite(mut self, apps_per_category: usize) -> Self {
        for cat in WorkloadCategory::ALL {
            for app in 0..apps_per_category.min(cat.trace_count()) {
                self = self.category_app(cat, app);
            }
        }
        self
    }

    /// Add every application of every Table 2 category — the paper's full
    /// 409-trace §3.8 suite — as selector rows.
    pub fn full_table2_suite(self) -> Self {
        self.category_suite(usize::MAX)
    }

    /// Add an explicit workload profile as a row.
    pub fn profile(self, profile: WorkloadProfile) -> Self {
        self.trace(TraceSelector::Profile(profile))
    }

    /// Set the dynamic µop count per generated trace.
    pub fn trace_len(mut self, len: usize) -> Self {
        self.spec.trace_len = len;
        self
    }

    /// Set the number of unmeasured predictor-priming runs per cell.
    pub fn warmup_runs(mut self, runs: usize) -> Self {
        self.spec.warmup_runs = runs;
        self
    }

    /// Skip the monolithic baseline simulations (stat-only sweeps).
    pub fn without_baseline(mut self) -> Self {
        self.spec.include_baseline = false;
        self
    }

    /// Use a custom helper-cluster simulator configuration as the base
    /// machine: it becomes the default scenario's machine, and every
    /// sensitivity preset derives its machines from it.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.machine = config;
        self
    }

    /// Add one explicit scenario (machine + predictors + power overlay).
    /// The first scenario request replaces the implicit default; add
    /// [`ScenarioSpec::paper_default`] yourself to keep the paper design
    /// point as a comparison column.
    pub fn scenario(mut self, scenario: ScenarioSpec) -> Self {
        self.scenarios
            .push(ScenarioRequest::Explicit(Box::new(scenario)));
        self
    }

    /// Add several explicit scenarios.
    pub fn scenarios(mut self, scenarios: impl IntoIterator<Item = ScenarioSpec>) -> Self {
        self.scenarios.extend(
            scenarios
                .into_iter()
                .map(|s| ScenarioRequest::Explicit(Box::new(s))),
        );
        self
    }

    /// The §2 helper-geometry sensitivity plane: helper datapath width
    /// {4, 8, 16} bits × helper clock ratio {1×, 2×, 4×}, nine scenarios
    /// derived from the base machine and named `hw{width}_cr{ratio}x`.  The
    /// paper's design point is `hw8_cr2x`.  Expansion happens at
    /// [`CampaignBuilder::build`], so a later `.config(..)` still applies.
    pub fn sensitivity_helper_geometry(mut self) -> Self {
        self.scenarios.push(ScenarioRequest::HelperGeometry);
        self
    }

    /// The §3.2 width-predictor sizing sensitivity: table entries
    /// {256, 512, 1024, 2048, 4096} (carry and copy tables scale along, as
    /// in the paper's complexity study), scenarios named `wp{entries}` over
    /// the base machine.  The paper's design point is `wp256`.  Expansion
    /// happens at [`CampaignBuilder::build`], so a later `.config(..)`
    /// still applies.
    pub fn sensitivity_width_predictor(mut self) -> Self {
        self.scenarios.push(ScenarioRequest::WidthPredictor);
        self
    }

    /// Validate and produce the spec.  Scenario requests expand here,
    /// against the final base machine.
    pub fn build(mut self) -> Result<CampaignSpec, CampaignError> {
        self.spec.scenarios = if self.scenarios.is_empty() {
            vec![ScenarioSpec::overlay_of(self.machine)]
        } else {
            let mut scenarios = Vec::new();
            for request in self.scenarios {
                request.expand(&self.machine, &mut scenarios);
            }
            scenarios
        };
        self.spec.schema_version = spec_wire_version(&self.spec.scenarios);
        self.spec.validate()?;
        Ok(self.spec)
    }
}

/// A completed-cell notification delivered to the progress hook.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignProgress {
    /// Cells finished so far (including this one).
    pub completed_cells: usize,
    /// Total cells in the grid.
    pub total_cells: usize,
    /// Policy of the cell that just finished.
    pub policy: String,
    /// Trace of the cell that just finished.
    pub trace: String,
    /// Scenario of the cell that just finished (`"default"` on the legacy
    /// single-scenario path).
    pub scenario: String,
}

/// Shared progress-hook type: called once per finished cell, possibly from
/// worker threads.
pub type ProgressHook = Arc<dyn Fn(&CampaignProgress) + Send + Sync>;

/// One policy × trace × scenario measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// Policy name (stable report key, from [`PolicyKind::name`]).
    pub policy: String,
    /// Trace name.
    pub trace: String,
    /// Workload category of the trace, if any.
    pub category: Option<String>,
    /// Scenario name this cell was measured under; `None` on the legacy
    /// single-default-scenario path (and omitted from the serialized form,
    /// keeping pre-scenario documents byte-identical).
    pub scenario: Option<String>,
    /// Measured statistics of the policy run.
    pub stats: SimStats,
}

/// One (trace, scenario) monolithic-baseline measurement (shared by every
/// cell of that trace under that scenario).
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRun {
    /// Trace name.
    pub trace: String,
    /// Workload category of the trace, if any.
    pub category: Option<String>,
    /// Scenario name; `None` on the legacy single-default-scenario path
    /// (omitted from the serialized form).
    pub scenario: Option<String>,
    /// Baseline statistics.
    pub stats: SimStats,
}

/// Serialize trace/category/[scenario]/stats-shaped rows: the `scenario`
/// key appears only when set, so legacy documents stay byte-identical.
fn row_to_value(
    policy: Option<&String>,
    trace: &String,
    category: &Option<String>,
    scenario: &Option<String>,
    stats: &SimStats,
) -> serde::Value {
    let mut fields = Vec::with_capacity(5);
    if let Some(policy) = policy {
        fields.push(("policy".to_string(), Serialize::to_value(policy)));
    }
    fields.push(("trace".to_string(), Serialize::to_value(trace)));
    fields.push(("category".to_string(), Serialize::to_value(category)));
    if scenario.is_some() {
        fields.push(("scenario".to_string(), Serialize::to_value(scenario)));
    }
    fields.push(("stats".to_string(), Serialize::to_value(stats)));
    serde::Value::Map(fields)
}

/// Decode an optional `scenario` key (absent on legacy documents).
fn scenario_from_map(m: &[(String, serde::Value)]) -> Result<Option<String>, serde::Error> {
    match m.iter().find(|(k, _)| k == "scenario") {
        Some((_, v)) => Deserialize::from_value(v),
        None => Ok(None),
    }
}

impl Serialize for CampaignCell {
    fn to_value(&self) -> serde::Value {
        row_to_value(
            Some(&self.policy),
            &self.trace,
            &self.category,
            &self.scenario,
            &self.stats,
        )
    }
}

impl Deserialize for CampaignCell {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for struct CampaignCell"))?;
        Ok(CampaignCell {
            policy: serde::de_field(m, "policy")?,
            trace: serde::de_field(m, "trace")?,
            category: serde::de_field(m, "category")?,
            scenario: scenario_from_map(m)?,
            stats: serde::de_field(m, "stats")?,
        })
    }
}

impl Serialize for BaselineRun {
    fn to_value(&self) -> serde::Value {
        row_to_value(
            None,
            &self.trace,
            &self.category,
            &self.scenario,
            &self.stats,
        )
    }
}

impl Deserialize for BaselineRun {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for struct BaselineRun"))?;
        Ok(BaselineRun {
            trace: serde::de_field(m, "trace")?,
            category: serde::de_field(m, "category")?,
            scenario: scenario_from_map(m)?,
            stats: serde::de_field(m, "stats")?,
        })
    }
}

/// The versioned output of a campaign run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Schema version of this report (legacy v2 for single-default-scenario
    /// campaigns, v3 once the scenario axis is used).
    pub schema_version: u32,
    /// Campaign name (from the spec).
    pub name: String,
    /// The spec that produced this report, embedded for replayability.
    pub spec: CampaignSpec,
    /// One baseline run per (trace, scenario), trace-major in spec order
    /// (empty when the spec disabled baselines).
    pub baselines: Vec<BaselineRun>,
    /// All policy × trace × scenario cells, trace-major then scenario-major
    /// in spec order.
    pub cells: Vec<CampaignCell>,
    /// Number of monolithic baseline results materialized — the memoization
    /// instrumentation: always ≤ traces × scenarios, never
    /// policies × traces × scenarios.  Counted whether each baseline was
    /// simulated or restored from a [`CellCache`] (restoring still
    /// materializes one baseline per (trace, scenario)), so reports stay
    /// byte-identical between cold and warm cache runs; cache hit/miss
    /// accounting lives in [`CellCache::activity`], not in the report.
    pub baseline_runs: usize,
    /// Number of [`TraceSelector::generate`] calls actually performed — the
    /// trace-memoization instrumentation mirroring `baseline_runs`: each
    /// grid row is synthesized exactly once and shared across every policy
    /// column, every warmup run *and every scenario*, so this is always the
    /// number of traces.
    pub trace_generations: usize,
}

impl CampaignReport {
    /// The baseline statistics for a trace, if baselines were run.  On
    /// multi-scenario reports this returns the *first* scenario's baseline;
    /// use [`CampaignReport::baseline_for_scenario`] to pick one.
    pub fn baseline_for(&self, trace: &str) -> Option<&SimStats> {
        self.baselines
            .iter()
            .find(|b| b.trace == trace)
            .map(|b| &b.stats)
    }

    /// The baseline statistics for a (trace, scenario) pair; `None` as the
    /// scenario selects the legacy default-scenario baselines.
    pub fn baseline_for_scenario(&self, trace: &str, scenario: Option<&str>) -> Option<&SimStats> {
        self.baselines
            .iter()
            .find(|b| b.trace == trace && b.scenario.as_deref() == scenario)
            .map(|b| &b.stats)
    }

    /// The cell for a (policy, trace) pair.  On multi-scenario reports this
    /// returns the first scenario's cell; use
    /// [`CampaignReport::cell_for_scenario`] to pick one.
    pub fn cell(&self, policy: &str, trace: &str) -> Option<&CampaignCell> {
        self.cells
            .iter()
            .find(|c| c.policy == policy && c.trace == trace)
    }

    /// The cell for a (policy, trace, scenario) triple.
    pub fn cell_for_scenario(
        &self,
        policy: &str,
        trace: &str,
        scenario: Option<&str>,
    ) -> Option<&CampaignCell> {
        self.cells
            .iter()
            .find(|c| c.policy == policy && c.trace == trace && c.scenario.as_deref() == scenario)
    }

    /// Display keys of every scenario in this report, in spec order
    /// (`["default"]` for legacy single-scenario campaigns).
    pub fn scenario_keys(&self) -> Vec<String> {
        if self.spec.is_single_default_scenario() {
            vec![DEFAULT_SCENARIO_NAME.to_string()]
        } else {
            self.spec.scenarios.iter().map(|s| s.name.clone()).collect()
        }
    }

    /// The cell's own-scenario baseline: the join every aggregate uses, so
    /// each measurement is compared against the monolithic machine *of its
    /// scenario*, never against another machine's baseline.
    fn baseline_for_cell(&self, cell: &CampaignCell) -> Option<&SimStats> {
        self.baseline_for_scenario(&cell.trace, cell.scenario.as_deref())
    }

    fn join_cell(&self, cell: &CampaignCell) -> Option<ExperimentResult> {
        let baseline = self.baseline_for_cell(cell)?;
        Some(ExperimentResult {
            policy: cell.policy.clone(),
            trace: cell.trace.clone(),
            category: cell.category.clone(),
            stats: cell.stats.clone(),
            baseline: baseline.clone(),
        })
    }

    /// Join every cell with its trace baseline into classic
    /// [`ExperimentResult`]s (cells without a baseline are skipped).
    pub fn experiment_results(&self) -> Vec<ExperimentResult> {
        self.cells
            .iter()
            .filter_map(|c| self.join_cell(c))
            .collect()
    }

    /// [`ExperimentResult`]s for one policy, in trace order.  Filters before
    /// joining, so only the requested policy's cells are cloned.
    pub fn results_for_policy(&self, policy: &str) -> Vec<ExperimentResult> {
        self.cells
            .iter()
            .filter(|c| c.policy == policy)
            .filter_map(|c| self.join_cell(c))
            .collect()
    }

    /// Mean speedup of one policy per workload category (cells without a
    /// category label group under `"uncategorized"`) — the aggregation behind
    /// the paper's Figure 14 (left).
    pub fn mean_speedup_by_category(&self, policy: &str) -> BTreeMap<String, f64> {
        let mut sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
        for cell in self.cells.iter().filter(|c| c.policy == policy) {
            let Some(baseline) = self.baseline_for_cell(cell) else {
                continue;
            };
            let cat = cell
                .category
                .clone()
                .unwrap_or_else(|| "uncategorized".to_string());
            let e = sums.entry(cat).or_insert((0.0, 0));
            e.0 += cell.stats.speedup_over(baseline);
            e.1 += 1;
        }
        sums.into_iter()
            .map(|(k, (s, n))| (k, s / n as f64))
            .collect()
    }

    /// One policy's per-trace speedups sorted ascending — the S-curve of
    /// Figure 14 (right).  Each cell is compared against its own scenario's
    /// baseline; multi-scenario curves pool every scenario's points.
    ///
    /// **Degenerate-cell policy:** the sort uses [`f64::total_cmp`], so the
    /// curve is a deterministic total order for *any* input — the old
    /// `partial_cmp(..).unwrap_or(Equal)` comparator was not a valid
    /// ordering in the presence of NaN and could leave NaNs interleaved
    /// mid-curve (where they silently corrupt the median/percentile
    /// summaries read off the curve).  Zero-cycle cells (empty runs) measure
    /// a speedup of `0.0` (see `SimStats::speedup_over`) and sort to the
    /// front; NaNs cannot be produced by the engine, but a hand-built
    /// report's negative NaNs sort first and positive NaNs last, never in
    /// the middle.
    pub fn speedup_curve(&self, policy: &str) -> Vec<f64> {
        let mut curve: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.policy == policy)
            .filter_map(|c| self.baseline_for_cell(c).map(|b| c.stats.speedup_over(b)))
            .collect();
        curve.sort_by(f64::total_cmp);
        curve
    }

    /// Arithmetic-mean speedup of one policy over the grid's traces (and
    /// scenarios).  Computed in place — no result vectors are materialized.
    pub fn mean_speedup(&self, policy: &str) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for cell in self.cells.iter().filter(|c| c.policy == policy) {
            if let Some(baseline) = self.baseline_for_cell(cell) {
                sum += cell.stats.speedup_over(baseline);
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Mean speedup of one policy per scenario — the sensitivity-study
    /// aggregation: each scenario's cells against that scenario's baselines.
    /// Legacy cells group under `"default"`.
    pub fn speedup_by_scenario(&self, policy: &str) -> BTreeMap<String, f64> {
        let mut sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
        for cell in self.cells.iter().filter(|c| c.policy == policy) {
            let Some(baseline) = self.baseline_for_cell(cell) else {
                continue;
            };
            let key = cell
                .scenario
                .clone()
                .unwrap_or_else(|| DEFAULT_SCENARIO_NAME.to_string());
            let e = sums.entry(key).or_insert((0.0, 0));
            e.0 += cell.stats.speedup_over(baseline);
            e.1 += 1;
        }
        sums.into_iter()
            .map(|(k, (s, n))| (k, s / n as f64))
            .collect()
    }

    /// The power parameters a scenario key's energy accounting uses.
    fn scenario_power(&self, key: &str) -> PowerParams {
        self.spec
            .scenarios
            .iter()
            .find(|s| s.name == key)
            .map(|s| s.power)
            .unwrap_or_default()
    }

    /// Mean energy-delay² improvement (fraction; positive = the helper
    /// machine wins) of one policy per scenario, each scenario evaluated
    /// under **its own** [`PowerParams`] — the §3.7 ED² comparison as a
    /// sensitivity axis.
    pub fn ed2_by_scenario(&self, policy: &str) -> BTreeMap<String, f64> {
        let mut sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
        for cell in self.cells.iter().filter(|c| c.policy == policy) {
            let Some(baseline) = self.baseline_for_cell(cell) else {
                continue;
            };
            let key = cell
                .scenario
                .clone()
                .unwrap_or_else(|| DEFAULT_SCENARIO_NAME.to_string());
            let model = PowerModel::new(self.scenario_power(&key));
            let cmp = Ed2Comparison::compare(&model, baseline, &cell.stats);
            let e = sums.entry(key).or_insert((0.0, 0));
            e.0 += cmp.improvement;
            e.1 += 1;
        }
        sums.into_iter()
            .map(|(k, (s, n))| (k, s / n as f64))
            .collect()
    }

    /// Serialize to pretty JSON (stable, versioned schema).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Decode from JSON (legacy v2 or scenario-aware v3), checking the
    /// schema version first.
    pub fn from_json(text: &str) -> Result<CampaignReport, CampaignError> {
        let value = decode_versioned(
            text,
            &[LEGACY_CAMPAIGN_SCHEMA_VERSION, CAMPAIGN_SCHEMA_VERSION],
        )?;
        Deserialize::from_value(&value).map_err(|e| CampaignError::Decode(e.to_string()))
    }

    /// Render as CSV (see [`crate::report::campaign_to_csv`]).
    pub fn to_csv(&self) -> String {
        crate::report::campaign_to_csv(self)
    }
}

/// Executes [`CampaignSpec`]s.
#[derive(Clone, Default)]
pub struct CampaignRunner {
    progress: Option<ProgressHook>,
    cache: Option<Arc<CellCache>>,
    batch: Option<usize>,
}

impl fmt::Debug for CampaignRunner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignRunner")
            .field("progress", &self.progress.is_some())
            .field(
                "cache",
                &self.cache.as_ref().map(|c| c.root().to_path_buf()),
            )
            .field("batch", &self.batch)
            .finish()
    }
}

impl CampaignRunner {
    /// A runner with no progress hook.
    pub fn new() -> CampaignRunner {
        CampaignRunner::default()
    }

    /// Attach a progress hook, called once per finished cell (possibly from
    /// worker threads).
    ///
    /// Hook delivery is isolated from the campaign: a hook that **panics**
    /// is disabled for the rest of the run (its panic is caught per call)
    /// and the campaign completes normally — observation must never poison
    /// the runner.
    pub fn with_progress(
        mut self,
        hook: impl Fn(&CampaignProgress) + Send + Sync + 'static,
    ) -> CampaignRunner {
        self.progress = Some(Arc::new(hook));
        self
    }

    /// Memoize every simulated cell (and baseline) through a
    /// [`CellCache`]: cells whose key is already cached are restored from
    /// disk instead of re-simulated, and fresh simulations are inserted.
    /// The produced report is **byte-identical** with or without the cache.
    pub fn with_cache(mut self, cache: Arc<CellCache>) -> CampaignRunner {
        self.cache = Some(cache);
        self
    }

    /// Set the number of simulator lanes each worker steps in lockstep
    /// (see [`hc_sim::BatchContext`]).  `1` forces the scalar engine;
    /// without this call the width is sized automatically from the grid
    /// shape.  Reports are **byte-identical at every batch width** — lanes
    /// never interact — so this is purely a throughput knob.
    pub fn with_batch(mut self, lanes: usize) -> CampaignRunner {
        self.batch = Some(lanes);
        self
    }

    /// Validate and execute a campaign.
    ///
    /// The grid **streams**: each worker synthesizes one row's trace from its
    /// selector, runs every scenario × policy column against it, and drops it
    /// before picking up the next row — at no point do more than O(worker
    /// threads) traces exist in memory, so the full 409-trace Table 2 suite
    /// runs in the same footprint as a 12-trace grid.  Each row's trace is
    /// generated exactly once and shared by every scenario and policy
    /// column; the `trace_generations` counter proves the memoization held.
    /// Baselines are memoized per (trace, scenario): an N-policy sweep over
    /// S scenarios simulates `traces × S` baselines, never
    /// `traces × S × N`.
    pub fn run(&self, spec: &CampaignSpec) -> Result<CampaignReport, CampaignError> {
        spec.validate()?;
        let scenarios = scenario_experiments(spec)?;
        // Rows run as indices into the spec's trace list so their cache
        // identities (content-addressed for `File` rows) resolve once, up
        // front and fallibly, instead of per cell inside the grid.
        let row_docs = resolve_row_docs(&spec.traces)?;
        let rows: Vec<usize> = (0..spec.traces.len()).collect();
        let generation_count = AtomicUsize::new(0);
        let row_doc = |&i: &usize| row_docs[i].clone();
        let grid_cache = self
            .cache
            .as_deref()
            .map(|cache| GridCache::new(cache, spec, &row_doc));
        let grid = run_grid_streaming(
            &scenarios,
            &rows,
            |&i| {
                generation_count.fetch_add(1, Ordering::Relaxed);
                make_row_trace(&spec.traces[i], spec.trace_len)
            },
            &spec.policies,
            spec.warmup_runs,
            spec.include_baseline,
            self.progress.as_ref(),
            grid_cache.as_ref(),
            resolve_batch(
                self.batch,
                scenarios.len(),
                &spec.policies,
                spec.include_baseline,
            ),
        )?;
        let baseline_runs = grid.baseline_runs;
        let (baselines, cells) = grid.into_flat_parts();
        Ok(CampaignReport {
            schema_version: report_wire_version(spec),
            name: spec.name.clone(),
            spec: spec.clone(),
            baselines,
            cells,
            baseline_runs,
            trace_generations: generation_count.load(Ordering::Relaxed),
        })
    }
}

/// One scenario's ready-to-run machinery: its report key and the validated
/// [`Experiment`] (helper + baseline simulators, predictor sizing).
pub(crate) struct ScenarioExperiment {
    /// Report key for this scenario's cells and baselines; `None` on the
    /// legacy single-default-scenario path, which keeps cells byte-identical
    /// to pre-scenario reports.
    pub(crate) key: Option<String>,
    pub(crate) experiment: Experiment,
}

impl ScenarioExperiment {
    /// Wrap one bare experiment as the anonymous legacy scenario — the shape
    /// every pre-scenario adapter path ([`Experiment::run_many`],
    /// `SuiteRunner`) runs through.
    pub(crate) fn legacy(experiment: Experiment) -> ScenarioExperiment {
        ScenarioExperiment {
            key: None,
            experiment,
        }
    }

    /// Progress-hook display key.
    fn progress_key(&self) -> &str {
        self.key.as_deref().unwrap_or(DEFAULT_SCENARIO_NAME)
    }
}

/// Build one [`ScenarioExperiment`] per spec scenario.  On the legacy
/// single-default-scenario path cells stay untagged.
pub(crate) fn scenario_experiments(
    spec: &CampaignSpec,
) -> Result<Vec<ScenarioExperiment>, CampaignError> {
    let tag_cells = !spec.is_single_default_scenario();
    spec.scenarios
        .iter()
        .map(|scenario| {
            Ok(ScenarioExperiment {
                key: tag_cells.then(|| scenario.name.clone()),
                experiment: Experiment::try_new_with(
                    scenario.machine.clone(),
                    scenario.predictors,
                )?,
            })
        })
        .collect()
}

/// The raw output of [`run_grid`]: one entry per trace × scenario, keeping
/// each (trace, scenario)'s baseline next to its cells so joins are
/// positional — correct even when two traces share a name (the adapter paths
/// accept arbitrary trace lists; only [`CampaignSpec::validate`] enforces
/// unique labels).
pub(crate) struct Grid {
    /// Outer: one entry per row (trace); inner: one entry per scenario, each
    /// holding the scenario's baseline (if run) and its policy cells.
    per_trace: Vec<GridRow>,
    pub baseline_runs: usize,
}

/// One grid row's output: per scenario, the scenario's baseline (if run)
/// and its policy cells.
type GridRow = Vec<(Option<BaselineRun>, Vec<CampaignCell>)>;

impl Grid {
    /// Flatten into the report's baseline and cell lists (trace-major, then
    /// scenario-major — which degenerates to the exact pre-scenario order on
    /// single-scenario grids).
    pub(crate) fn into_flat_parts(self) -> (Vec<BaselineRun>, Vec<CampaignCell>) {
        let mut baselines = Vec::with_capacity(self.per_trace.len());
        let mut cells = Vec::new();
        for row in self.per_trace {
            for (baseline, scenario_cells) in row {
                if let Some(b) = baseline {
                    baselines.push(b);
                }
                cells.extend(scenario_cells);
            }
        }
        (baselines, cells)
    }

    /// Join each (trace, scenario)'s cells with *its own* baseline into
    /// [`ExperimentResult`]s, preserving cell order.
    pub fn into_experiment_results(self) -> Vec<ExperimentResult> {
        let mut results = Vec::new();
        for row in self.per_trace {
            for (baseline, scenario_cells) in row {
                let Some(baseline) = baseline else { continue };
                for c in scenario_cells {
                    results.push(ExperimentResult {
                        policy: c.policy,
                        trace: c.trace,
                        category: c.category,
                        stats: c.stats,
                        baseline: baseline.stats.clone(),
                    });
                }
            }
        }
        results
    }
}

/// The shared single-machine grid engine behind [`Experiment::run_many`]
/// and [`crate::suite::SuiteRunner`], over already-materialized traces.
pub(crate) fn run_grid(
    experiment: &Experiment,
    traces: &[Trace],
    policies: &[PolicyKind],
    warmup_runs: usize,
    include_baseline: bool,
    progress: Option<&ProgressHook>,
) -> Grid {
    run_grid_streaming(
        std::slice::from_ref(&ScenarioExperiment::legacy(experiment.clone())),
        traces,
        |t| Ok(RowTrace::Materialized(Cow::Borrowed(t))),
        policies,
        warmup_runs,
        include_baseline,
        progress,
        // Materialized-trace adapter paths carry no declarative trace
        // identity to key a cache on, so they never cache.
        None,
        resolve_batch(None, 1, policies, include_baseline),
    )
    .expect("materialized rows cannot fail")
}

/// Maximum lane width the automatic batch sizing picks.  Wider batches keep
/// amortizing per-cycle dispatch overhead, but on the benchmarked reference
/// machine the uops/sec curve is flat past four lanes while per-worker
/// memory keeps growing (each lane owns a full window slab + event wheel),
/// so auto stops here; explicit `--batch N` overrides are uncapped.
const MAX_AUTO_BATCH: usize = 4;

/// Resolve a requested batch width: an explicit request is clamped to at
/// least one lane, and `None` ("auto") sizes the batch to the number of
/// *simulated* columns per row — every scenario's baseline plus its
/// non-baseline policy cells (the `baseline` policy column clones the
/// scenario baseline and never occupies a lane) — capped at
/// [`MAX_AUTO_BATCH`].  Reports are byte-identical at every width, so this
/// only chooses a throughput/memory trade-off.
pub(crate) fn resolve_batch(
    requested: Option<usize>,
    scenario_count: usize,
    policies: &[PolicyKind],
    include_baseline: bool,
) -> usize {
    if let Some(lanes) = requested {
        return lanes.max(1);
    }
    let baseline_needed = include_baseline || policies.contains(&PolicyKind::Baseline);
    let sim_columns = policies
        .iter()
        .filter(|&&k| k != PolicyKind::Baseline)
        .count()
        + usize::from(baseline_needed);
    (scenario_count.max(1) * sim_columns).clamp(1, MAX_AUTO_BATCH)
}

/// The cache binding of one streaming-grid invocation: the [`CellCache`]
/// plus everything needed to derive each cell's content-addressed key —
/// the serialized scenario axis (precomputed once, aligned with the
/// `scenarios` slice) and a projection from a row to its serialized trace
/// identity.
pub(crate) struct GridCache<'a, R: ?Sized> {
    cache: &'a CellCache,
    trace_len: usize,
    warmup_runs: usize,
    scenario_docs: Vec<serde::Value>,
    row_doc: &'a (dyn Fn(&R) -> serde::Value + Sync),
}

impl<'a, R: ?Sized> GridCache<'a, R> {
    /// Bind `cache` to one campaign's key space.
    pub(crate) fn new(
        cache: &'a CellCache,
        spec: &CampaignSpec,
        row_doc: &'a (dyn Fn(&R) -> serde::Value + Sync),
    ) -> GridCache<'a, R> {
        GridCache {
            cache,
            trace_len: spec.trace_len,
            warmup_runs: spec.warmup_runs,
            scenario_docs: spec.scenarios.iter().map(Serialize::to_value).collect(),
            row_doc,
        }
    }
}

/// Restore a cell from the cache or simulate it, recording the fresh run's
/// wall-clock cost into the cache for the cost-model planner.  Misses go
/// through the cache's keyed singleflight
/// ([`CellCache::get_or_compute`]), so concurrent campaigns — e.g. N
/// requests in flight inside one `hc_serve` daemon — that need the same
/// cell coalesce onto a single simulation.
fn run_cached(cache: &CellCache, key: &CellKey, simulate: impl FnOnce() -> SimStats) -> SimStats {
    cache.get_or_compute(key, simulate)
}

/// Deliver one progress event, isolating the engine from a panicking user
/// hook: the panic is caught and the hook is disabled for the rest of the
/// run, so observation can never abort (or poison state shared with) the
/// campaign.  `AssertUnwindSafe` is sound here because the engine never
/// touches hook-owned state afterwards — the hook is simply not called
/// again.
fn deliver_progress(hook: &ProgressHook, disabled: &AtomicBool, progress: &CampaignProgress) {
    if disabled.load(Ordering::Relaxed) {
        return;
    }
    if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| hook(progress))).is_err() {
        disabled.store(true, Ordering::Relaxed);
    }
}

/// The streaming grid engine: rows fan out in parallel and each worker
/// *materializes one row's trace at a time* via `make_trace`, runs every
/// scenario × policy column against it, then drops it.  Peak memory is
/// O(worker threads) traces regardless of row count — this is what lets the
/// full 409-trace Table 2 suite run as one campaign.  Each (trace,
/// scenario)'s baseline is simulated at most once and shared across
/// policies; the trace itself is synthesized once and shared across
/// *scenarios* too.
///
/// `make_trace` returns a [`Cow`] so borrowed-trace callers ([`run_grid`])
/// pay no clone while streaming callers hand over ownership.
///
/// With a [`GridCache`] bound, every simulation is first looked up by its
/// content-addressed key and only executed on a miss (fresh results are
/// inserted, with their wall-clock cost, for later runs and the cost-model
/// planner).  The trace itself is still synthesized per row even on a
/// full-hit row — synthesis is cheap, and it keeps the report's
/// `trace_generations` counter (and with it the report bytes) identical
/// between cold and warm runs; the cache elides *simulation*, not
/// synthesis.
/// With `batch > 1`, each worker instead owns a [`hc_sim::BatchContext`] of
/// `batch` lanes plus a [`PolicyPool`], and steps every *fresh* simulation
/// of a row — across all its scenarios and policy columns — in lockstep.
/// Cached cells and cells another worker is already simulating (the cache's
/// keyed singleflight) **never occupy a lane**: they are claimed up front
/// via [`CellCache::claim`] and resolved without simulation.  Lanes never
/// interact, so the produced grid is byte-identical at every batch width.
///
/// `make_trace` is fallible: `File` rows can hit an unreadable or corrupt
/// recording.  The parallel fan-out may surface several failures; the *first
/// in row order* is returned, so failures are reproducible.  Streamed rows
/// ([`RowTrace::Streamed`]) never occupy batch lanes — lockstep lanes need
/// random access to one shared materialized trace, while a streamed row
/// owns a single forward cursor — they run scalar on the worker's fallback
/// context instead.  Scalar and batched execution are bit-identical (the
/// property the batched path is built on), so a grid mixing streamed and
/// materialized rows is still byte-identical at every batch width.
#[allow(clippy::too_many_arguments)] // pub(crate) engine; every caller is in this crate.
pub(crate) fn run_grid_streaming<R, F>(
    scenarios: &[ScenarioExperiment],
    rows: &[R],
    make_trace: F,
    policies: &[PolicyKind],
    warmup_runs: usize,
    include_baseline: bool,
    progress: Option<&ProgressHook>,
    cache: Option<&GridCache<'_, R>>,
    batch: usize,
) -> Result<Grid, CampaignError>
where
    R: Sync,
    F: for<'r> Fn(&'r R) -> Result<RowTrace<'r>, CampaignError> + Sync,
{
    let total_cells = rows.len() * policies.len() * scenarios.len();
    let completed = AtomicUsize::new(0);
    let hook_disabled = AtomicBool::new(false);
    let baseline_count = AtomicUsize::new(0);
    let baseline_needed = include_baseline || policies.contains(&PolicyKind::Baseline);

    // Sequence per-row results into a grid, surfacing the first error in
    // row order.
    let sequence = |rows_out: Vec<Result<GridRow, CampaignError>>| -> Result<Grid, CampaignError> {
        let mut per_trace = Vec::with_capacity(rows_out.len());
        for row in rows_out {
            per_trace.push(row?);
        }
        Ok(Grid {
            per_trace,
            baseline_runs: baseline_count.load(Ordering::Relaxed),
        })
    };

    if batch > 1 {
        let rows_out: Vec<Result<GridRow, CampaignError>> = rows
            .par_iter()
            .map_init(
                || BatchWorker::new(batch),
                |worker, row| {
                    let row_doc = cache.map(|gc| (gc.row_doc)(row));
                    let binding = match (cache, &row_doc) {
                        (Some(gc), Some(doc)) => Some(CacheBinding {
                            cache: gc.cache,
                            trace_len: gc.trace_len,
                            warmup_runs: gc.warmup_runs,
                            scenario_docs: &gc.scenario_docs,
                            row_doc: doc,
                        }),
                        _ => None,
                    };
                    match make_trace(row)? {
                        RowTrace::Materialized(trace) => Ok(run_row_batched(
                            worker,
                            scenarios,
                            &trace,
                            policies,
                            warmup_runs,
                            baseline_needed,
                            binding,
                            progress,
                            &hook_disabled,
                            &completed,
                            total_cells,
                            &baseline_count,
                        )),
                        RowTrace::Streamed(mut source) => run_row_streamed(
                            &mut worker.scalar,
                            source.as_mut(),
                            scenarios,
                            policies,
                            warmup_runs,
                            baseline_needed,
                            binding,
                            progress,
                            &hook_disabled,
                            &completed,
                            total_cells,
                            &baseline_count,
                        ),
                    }
                },
            )
            .collect();
        return sequence(rows_out);
    }

    // One `ExecContext` per worker thread, reused across every run that
    // worker performs — including runs under different scenario machines
    // (`ExecContext::prepare` returns it to a cold state per run): a
    // campaign costs O(threads) simulator arenas instead of O(cells), and
    // results stay bit-identical to fresh contexts.
    let rows_out: Vec<Result<GridRow, CampaignError>> = rows
        .par_iter()
        .map_init(hc_sim::ExecContext::new, |ctx, row| {
            let row_doc = cache.map(|gc| (gc.row_doc)(row));
            let trace = match make_trace(row)? {
                RowTrace::Materialized(trace) => trace,
                RowTrace::Streamed(mut source) => {
                    let binding = match (cache, &row_doc) {
                        (Some(gc), Some(doc)) => Some(CacheBinding {
                            cache: gc.cache,
                            trace_len: gc.trace_len,
                            warmup_runs: gc.warmup_runs,
                            scenario_docs: &gc.scenario_docs,
                            row_doc: doc,
                        }),
                        _ => None,
                    };
                    return run_row_streamed(
                        ctx,
                        source.as_mut(),
                        scenarios,
                        policies,
                        warmup_runs,
                        baseline_needed,
                        binding,
                        progress,
                        &hook_disabled,
                        &completed,
                        total_cells,
                        &baseline_count,
                    );
                }
            };
            let trace: &Trace = &trace;
            Ok(scenarios
                .iter()
                .enumerate()
                .map(|(scenario_index, scenario)| {
                    let baseline = if baseline_needed {
                        baseline_count.fetch_add(1, Ordering::Relaxed);
                        let stats = match (cache, &row_doc) {
                            (Some(gc), Some(doc)) => run_cached(
                                gc.cache,
                                &CellKey::baseline(
                                    doc,
                                    gc.trace_len,
                                    &gc.scenario_docs[scenario_index],
                                ),
                                || scenario.experiment.run_baseline_with(ctx, trace),
                            ),
                            _ => scenario.experiment.run_baseline_with(ctx, trace),
                        };
                        Some(BaselineRun {
                            trace: trace.name.clone(),
                            category: trace.category.clone(),
                            scenario: scenario.key.clone(),
                            stats,
                        })
                    } else {
                        None
                    };
                    let cells = policies
                        .iter()
                        .map(|&kind| {
                            let stats = match (&baseline, kind) {
                                (Some(b), PolicyKind::Baseline) => b.stats.clone(),
                                _ => match (cache, &row_doc) {
                                    (Some(gc), Some(doc)) if kind != PolicyKind::Baseline => {
                                        run_cached(
                                            gc.cache,
                                            &CellKey::cell(
                                                doc,
                                                gc.trace_len,
                                                gc.warmup_runs,
                                                &gc.scenario_docs[scenario_index],
                                                kind.name(),
                                            ),
                                            || {
                                                scenario.experiment.run_policy_warmed_with(
                                                    ctx,
                                                    trace,
                                                    kind,
                                                    warmup_runs,
                                                )
                                            },
                                        )
                                    }
                                    _ => scenario.experiment.run_policy_warmed_with(
                                        ctx,
                                        trace,
                                        kind,
                                        warmup_runs,
                                    ),
                                },
                            };
                            let cell = CampaignCell {
                                policy: kind.name().to_string(),
                                trace: trace.name.clone(),
                                category: trace.category.clone(),
                                scenario: scenario.key.clone(),
                                stats,
                            };
                            if let Some(hook) = progress {
                                deliver_progress(
                                    hook,
                                    &hook_disabled,
                                    &CampaignProgress {
                                        completed_cells: completed.fetch_add(1, Ordering::Relaxed)
                                            + 1,
                                        total_cells,
                                        policy: cell.policy.clone(),
                                        trace: cell.trace.clone(),
                                        scenario: scenario.progress_key().to_string(),
                                    },
                                );
                            }
                            cell
                        })
                        .collect();
                    (baseline, cells)
                })
                .collect())
        })
        .collect();

    sequence(rows_out)
}

/// Run one streamed row of the grid scalar: every scenario × policy column
/// replays the row's [`TraceSource`] through [`Simulator::run_source`], in
/// exactly the materialized scalar path's order.  Columns still go through
/// the cache's claim protocol, so streamed rows coalesce with concurrent
/// campaigns; a source failure while leading a flight drops the lead
/// (handing the flight to a joiner) and aborts the row with a typed error.
#[allow(clippy::too_many_arguments)]
fn run_row_streamed(
    ctx: &mut hc_sim::ExecContext,
    source: &mut dyn TraceSource,
    scenarios: &[ScenarioExperiment],
    policies: &[PolicyKind],
    warmup_runs: usize,
    baseline_needed: bool,
    cache: Option<CacheBinding<'_>>,
    progress: Option<&ProgressHook>,
    hook_disabled: &AtomicBool,
    completed: &AtomicUsize,
    total_cells: usize,
    baseline_count: &AtomicUsize,
) -> Result<GridRow, CampaignError> {
    let (trace_name, category) = {
        let h = source.header();
        (h.name.clone(), h.category.clone())
    };
    let fail = |e: hc_trace::TraceError| CampaignError::Trace(format!("{trace_name}: {e}"));
    let mut rows = Vec::with_capacity(scenarios.len());
    for (scenario_index, scenario) in scenarios.iter().enumerate() {
        let baseline = if baseline_needed {
            baseline_count.fetch_add(1, Ordering::Relaxed);
            let key = cache.as_ref().map(|b| {
                (
                    b.cache,
                    CellKey::baseline(b.row_doc, b.trace_len, &b.scenario_docs[scenario_index]),
                )
            });
            let stats =
                run_streamed_cached(key, || scenario.experiment.run_baseline_source(ctx, source))
                    .map_err(fail)?;
            Some(BaselineRun {
                trace: trace_name.clone(),
                category: category.clone(),
                scenario: scenario.key.clone(),
                stats,
            })
        } else {
            None
        };
        let mut cells = Vec::with_capacity(policies.len());
        for &kind in policies {
            let stats = match (&baseline, kind) {
                (Some(b), PolicyKind::Baseline) => b.stats.clone(),
                _ => {
                    let key = cache
                        .as_ref()
                        .filter(|_| kind != PolicyKind::Baseline)
                        .map(|b| {
                            (
                                b.cache,
                                CellKey::cell(
                                    b.row_doc,
                                    b.trace_len,
                                    b.warmup_runs,
                                    &b.scenario_docs[scenario_index],
                                    kind.name(),
                                ),
                            )
                        });
                    run_streamed_cached(key, || {
                        scenario
                            .experiment
                            .run_policy_warmed_source(ctx, source, kind, warmup_runs)
                    })
                    .map_err(fail)?
                }
            };
            let cell = CampaignCell {
                policy: kind.name().to_string(),
                trace: trace_name.clone(),
                category: category.clone(),
                scenario: scenario.key.clone(),
                stats,
            };
            if let Some(hook) = progress {
                deliver_progress(
                    hook,
                    hook_disabled,
                    &CampaignProgress {
                        completed_cells: completed.fetch_add(1, Ordering::Relaxed) + 1,
                        total_cells,
                        policy: cell.policy.clone(),
                        trace: cell.trace.clone(),
                        scenario: scenario.progress_key().to_string(),
                    },
                );
            }
            cells.push(cell);
        }
        rows.push((baseline, cells));
    }
    Ok(rows)
}

/// [`run_cached`] for fallible streamed simulations: hits and joins resolve
/// without simulating; a lead whose simulation fails is dropped without
/// publishing, abandoning the flight so a joiner can take over, and the
/// error surfaces to the caller.
fn run_streamed_cached(
    key: Option<(&CellCache, CellKey)>,
    simulate: impl FnOnce() -> Result<SimStats, hc_trace::TraceError>,
) -> Result<SimStats, hc_trace::TraceError> {
    let Some((cache, key)) = key else {
        return simulate();
    };
    match cache.claim(&key) {
        CellClaim::Hit(stats) => Ok(*stats),
        CellClaim::Lead(lead) => Ok(lead.publish(simulate()?)),
        CellClaim::Join(join) => match join.wait() {
            Ok(stats) => Ok(stats),
            Err(lead) => Ok(lead.publish(simulate()?)),
        },
    }
}

/// Per-worker state of the batched grid path: `B` lockstep simulator lanes,
/// a scalar context for the rare abandoned-singleflight fallback, and the
/// policy reuse pool.  Created once per worker thread and reused across
/// rows, so steady-state lane refills build nothing.
struct BatchWorker {
    lanes: hc_sim::BatchContext,
    scalar: hc_sim::ExecContext,
    pool: PolicyPool,
}

impl BatchWorker {
    fn new(lanes: usize) -> BatchWorker {
        BatchWorker {
            lanes: hc_sim::BatchContext::new(lanes),
            scalar: hc_sim::ExecContext::new(),
            pool: PolicyPool::new(),
        }
    }
}

/// One planned fresh simulation of a batched row: which machine runs it,
/// which policy steers it, and how many passes (warmup runs + 1).
struct JobPlan<'s> {
    sim: &'s Simulator,
    kind: PolicyKind,
    predictors: PredictorConfig,
    runs: usize,
}

/// Where one column of a batched row gets its statistics.
// One short-lived value per grid column during row assembly; boxing the
// stats to shrink the slim variants would cost more than the padding.
#[allow(clippy::large_enum_variant)]
enum CellSource {
    /// Known before any lane ran: a cache hit.
    Ready(SimStats),
    /// Simulated in this row's batch (index into the job list).
    Lane(usize),
    /// In flight on another worker's singleflight (index into the join
    /// list); waited on after the batch so it never occupies a lane.
    Pending(usize),
    /// The `baseline` policy column: cloned from its scenario's baseline.
    FromBaseline,
}

/// The cache pieces one batched row needs: the cache itself plus this row's
/// serialized trace identity and the campaign-level key components (the
/// fields of [`GridCache`], with the row projection already applied).
struct CacheBinding<'a> {
    cache: &'a CellCache,
    trace_len: usize,
    warmup_runs: usize,
    scenario_docs: &'a [serde::Value],
    row_doc: &'a serde::Value,
}

/// Claim one column: cached → `Ready`, in flight elsewhere → `Pending`,
/// otherwise (leader or no cache) append a lane job.  `leads` stays aligned
/// with `jobs` so each fresh result can be published after the batch.
fn claim_or_enqueue<'s, 'c>(
    plan: JobPlan<'s>,
    key: Option<(&'c CellCache, CellKey)>,
    jobs: &mut Vec<JobPlan<'s>>,
    leads: &mut Vec<Option<CellLead<'c>>>,
    joins: &mut Vec<(JobPlan<'s>, CellJoin<'c>)>,
) -> CellSource {
    let Some((cache, key)) = key else {
        jobs.push(plan);
        leads.push(None);
        return CellSource::Lane(jobs.len() - 1);
    };
    match cache.claim(&key) {
        CellClaim::Hit(stats) => CellSource::Ready(*stats),
        CellClaim::Lead(lead) => {
            jobs.push(plan);
            leads.push(Some(lead));
            CellSource::Lane(jobs.len() - 1)
        }
        CellClaim::Join(join) => {
            joins.push((plan, join));
            CellSource::Pending(joins.len() - 1)
        }
    }
}

/// Run one row of the grid through the worker's lockstep lanes: claim every
/// column in scalar order, ride every fresh simulation (baselines included)
/// through [`hc_sim::BatchContext::run_batch`], publish the results into
/// the cache's singleflight, then assemble baselines and cells in exactly
/// the scalar path's order.  Cached and joined cells never occupy a lane.
#[allow(clippy::too_many_arguments)]
fn run_row_batched(
    worker: &mut BatchWorker,
    scenarios: &[ScenarioExperiment],
    trace: &Trace,
    policies: &[PolicyKind],
    warmup_runs: usize,
    baseline_needed: bool,
    cache: Option<CacheBinding<'_>>,
    progress: Option<&ProgressHook>,
    hook_disabled: &AtomicBool,
    completed: &AtomicUsize,
    total_cells: usize,
    baseline_count: &AtomicUsize,
) -> Vec<(Option<BaselineRun>, Vec<CampaignCell>)> {
    // --- Plan: claim every column in scalar order.
    let mut jobs: Vec<JobPlan> = Vec::new();
    let mut leads: Vec<Option<CellLead>> = Vec::new();
    let mut joins: Vec<(JobPlan, CellJoin)> = Vec::new();
    let mut sources: Vec<(Option<CellSource>, Vec<CellSource>)> =
        Vec::with_capacity(scenarios.len());
    for (scenario_index, scenario) in scenarios.iter().enumerate() {
        let experiment = &scenario.experiment;
        let baseline_src = if baseline_needed {
            baseline_count.fetch_add(1, Ordering::Relaxed);
            let plan = JobPlan {
                sim: experiment.baseline_sim(),
                kind: PolicyKind::Baseline,
                predictors: *experiment.predictors(),
                runs: 1,
            };
            let key = cache.as_ref().map(|b| {
                (
                    b.cache,
                    CellKey::baseline(b.row_doc, b.trace_len, &b.scenario_docs[scenario_index]),
                )
            });
            Some(claim_or_enqueue(
                plan, key, &mut jobs, &mut leads, &mut joins,
            ))
        } else {
            None
        };
        let cell_srcs = policies
            .iter()
            .map(|&kind| {
                if kind == PolicyKind::Baseline {
                    // Clones the scenario baseline (spec validation
                    // guarantees the baseline exists); never a lane job.
                    return CellSource::FromBaseline;
                }
                let plan = JobPlan {
                    sim: experiment.helper_sim(),
                    kind,
                    predictors: *experiment.predictors(),
                    runs: warmup_runs + 1,
                };
                let key = cache.as_ref().map(|b| {
                    (
                        b.cache,
                        CellKey::cell(
                            b.row_doc,
                            b.trace_len,
                            b.warmup_runs,
                            &b.scenario_docs[scenario_index],
                            kind.name(),
                        ),
                    )
                });
                claim_or_enqueue(plan, key, &mut jobs, &mut leads, &mut joins)
            })
            .collect();
        sources.push((baseline_src, cell_srcs));
    }

    // --- Execute: every fresh column rides a lane; lanes refill from the
    // job queue as cells drain, so mixed-length cells keep all lanes busy.
    let mut policies_in_flight: Vec<Box<dyn SteeringPolicy + Send>> = jobs
        .iter()
        .map(|j| worker.pool.acquire(j.kind, &j.predictors))
        .collect();
    let batch_jobs: Vec<BatchJob> = jobs
        .iter()
        .zip(policies_in_flight.iter_mut())
        .map(|(j, policy)| BatchJob {
            sim: j.sim,
            trace,
            policy: policy.as_mut(),
            runs: j.runs,
        })
        .collect();
    let mut lane_stats = worker.lanes.run_batch(batch_jobs);
    for (j, policy) in jobs.iter().zip(policies_in_flight) {
        worker.pool.release(j.kind, &j.predictors, policy);
    }
    // Publish every lead before waiting on any join: cross-worker waits can
    // then always terminate, whatever order workers reach this point in.
    for (stats, lead) in lane_stats.iter().zip(leads) {
        if let Some(lead) = lead {
            lead.publish(stats.clone());
        }
    }

    // --- Resolve joins (another worker was simulating the same key).
    let mut join_stats: Vec<SimStats> = joins
        .into_iter()
        .map(|(plan, join)| match join.wait() {
            Ok(stats) => stats,
            Err(lead) => {
                // The leader's simulation panicked; run the cell scalar on
                // this worker's fallback context.
                let mut policy = worker.pool.acquire(plan.kind, &plan.predictors);
                let mut stats = None;
                for _ in 0..plan.runs {
                    stats = Some(
                        plan.sim
                            .run_with(&mut worker.scalar, trace, policy.as_mut()),
                    );
                }
                worker.pool.release(plan.kind, &plan.predictors, policy);
                lead.publish(stats.expect("a job has at least one pass"))
            }
        })
        .collect();

    // --- Assemble in scalar order (each lane/join result is consumed
    // exactly once, so moves replace clones).
    let mut resolve = |src: CellSource| -> SimStats {
        match src {
            CellSource::Ready(stats) => stats,
            CellSource::Lane(i) => std::mem::take(&mut lane_stats[i]),
            CellSource::Pending(i) => std::mem::take(&mut join_stats[i]),
            CellSource::FromBaseline => unreachable!("resolved against the scenario baseline"),
        }
    };
    sources
        .into_iter()
        .zip(scenarios.iter())
        .map(|((baseline_src, cell_srcs), scenario)| {
            let baseline = baseline_src.map(|src| BaselineRun {
                trace: trace.name.clone(),
                category: trace.category.clone(),
                scenario: scenario.key.clone(),
                stats: resolve(src),
            });
            let cells = cell_srcs
                .into_iter()
                .zip(policies.iter())
                .map(|(src, &kind)| {
                    let stats = match src {
                        CellSource::FromBaseline => {
                            let b = baseline
                                .as_ref()
                                .expect("a baseline-policy column implies a baseline");
                            b.stats.clone()
                        }
                        src => resolve(src),
                    };
                    let cell = CampaignCell {
                        policy: kind.name().to_string(),
                        trace: trace.name.clone(),
                        category: trace.category.clone(),
                        scenario: scenario.key.clone(),
                        stats,
                    };
                    if let Some(hook) = progress {
                        deliver_progress(
                            hook,
                            hook_disabled,
                            &CampaignProgress {
                                completed_cells: completed.fetch_add(1, Ordering::Relaxed) + 1,
                                total_cells,
                                policy: cell.policy.clone(),
                                trace: cell.trace.clone(),
                                scenario: scenario.progress_key().to_string(),
                            },
                        );
                    }
                    cell
                })
                .collect();
            (baseline, cells)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> CampaignSpec {
        CampaignBuilder::new("unit")
            .policy(PolicyKind::P888)
            .policy(PolicyKind::Baseline)
            .spec(SpecBenchmark::Gzip)
            .trace_len(1_200)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_empty_specs() {
        assert_eq!(
            CampaignBuilder::new("x").spec(SpecBenchmark::Gzip).build(),
            Err(CampaignError::NoPolicies)
        );
        assert_eq!(
            CampaignBuilder::new("x").policy(PolicyKind::P888).build(),
            Err(CampaignError::NoTraces)
        );
        assert_eq!(
            CampaignBuilder::new("x")
                .policy(PolicyKind::P888)
                .spec(SpecBenchmark::Gzip)
                .trace_len(0)
                .build(),
            Err(CampaignError::ZeroTraceLength)
        );
    }

    #[test]
    fn baseline_policy_conflicts_with_without_baseline() {
        assert_eq!(
            CampaignBuilder::new("x")
                .policy(PolicyKind::Baseline)
                .policy(PolicyKind::P888)
                .spec(SpecBenchmark::Gzip)
                .without_baseline()
                .build(),
            Err(CampaignError::BaselinePolicyWithoutBaseline)
        );
    }

    #[test]
    fn duplicate_trace_labels_are_rejected() {
        // A custom profile named like a SPEC stand-in would join cells to
        // the wrong baseline; the spec refuses to run.
        let err = CampaignBuilder::new("dup")
            .policy(PolicyKind::P888)
            .spec(SpecBenchmark::Gzip)
            .profile(hc_trace::WorkloadProfile::new(
                "gzip",
                vec![(hc_trace::KernelKind::WordSum, 1.0)],
            ))
            .build()
            .unwrap_err();
        assert_eq!(err, CampaignError::DuplicateTraceLabel("gzip".to_string()));
        assert!(err.to_string().contains("more than once"));
    }

    #[test]
    fn duplicate_selectors_are_rejected() {
        // The same selector twice (not just two selectors colliding on a
        // name) is the common copy-paste mistake in hand-written suites.
        let err = CampaignBuilder::new("dup")
            .policy(PolicyKind::P888)
            .category_app(WorkloadCategory::Office, 3)
            .category_app(WorkloadCategory::Office, 3)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CampaignError::DuplicateTraceLabel("office_003".to_string())
        );
    }

    #[test]
    fn duplicate_policies_are_rejected() {
        let err = CampaignBuilder::new("dup")
            .policy(PolicyKind::P888)
            .policy(PolicyKind::P888)
            .spec(SpecBenchmark::Gzip)
            .build()
            .unwrap_err();
        assert_eq!(err, CampaignError::DuplicatePolicy("8_8_8".to_string()));
    }

    #[test]
    fn adapter_paths_join_duplicate_trace_names_positionally() {
        // run_grid joins each trace's cells to its own baseline by position,
        // so even two different traces sharing a name stay correct on the
        // Experiment/SuiteRunner adapter paths (which skip spec validation).
        use crate::suite::SuiteRunner;
        use hc_trace::{KernelKind, WorkloadProfile};
        let narrow =
            WorkloadProfile::new("same", vec![(KernelKind::VectorAddU8, 1.0)]).with_trace_len(900);
        let wide =
            WorkloadProfile::new("same", vec![(KernelKind::PointerChase, 1.0)]).with_trace_len(900);
        let suite = SuiteRunner::default().run_profiles(&[narrow, wide], PolicyKind::P888);
        assert_eq!(suite.per_trace.len(), 2);
        // Each result's baseline committed the same trace as its stats run —
        // and the two baselines differ because the traces differ.
        for r in &suite.per_trace {
            assert_eq!(r.baseline.committed_uops, r.stats.committed_uops);
        }
        assert_ne!(
            suite.per_trace[0].baseline.cycles, suite.per_trace[1].baseline.cycles,
            "distinct traces must keep distinct baselines despite the shared name"
        );
    }

    #[test]
    fn builder_rejects_invalid_sim_configs() {
        let mut config = SimConfig::paper_baseline();
        config.commit_width = 0;
        let err = CampaignBuilder::new("x")
            .policy(PolicyKind::P888)
            .spec(SpecBenchmark::Gzip)
            .config(config)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CampaignError::Config(hc_sim::ConfigError::ZeroFrontendWidth)
        );
        assert!(err.to_string().contains("non-zero"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn traces_are_generated_once_per_row_not_per_cell() {
        // Two policy columns, two warmup runs, one trace row: the trace must
        // still be synthesized exactly once.
        let spec = CampaignBuilder::new("gen")
            .policy(PolicyKind::P888)
            .policy(PolicyKind::Ir)
            .spec(SpecBenchmark::Gzip)
            .trace_len(1_000)
            .warmup_runs(2)
            .build()
            .unwrap();
        let report = CampaignRunner::new().run(&spec).unwrap();
        assert_eq!(report.trace_generations, 1);
        assert_eq!(report.cells.len(), 2);
    }

    #[test]
    fn baseline_policy_cell_reuses_the_memoized_baseline() {
        let report = CampaignRunner::new().run(&small_spec()).unwrap();
        assert_eq!(report.baseline_runs, 1);
        assert_eq!(report.trace_generations, 1);
        let baseline_cell = report.cell("baseline", "gzip").unwrap();
        assert_eq!(
            &baseline_cell.stats,
            report.baseline_for("gzip").unwrap(),
            "baseline policy cell must be the shared baseline run"
        );
    }

    #[test]
    fn progress_hook_sees_every_cell() {
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let runner =
            CampaignRunner::new().with_progress(move |p| sink.lock().unwrap().push(p.clone()));
        runner.run(&small_spec()).unwrap();
        let events = seen.lock().unwrap();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|p| p.total_cells == 2));
        assert!(events.iter().any(|p| p.completed_cells == 2));
    }

    #[test]
    fn panicking_progress_hooks_do_not_poison_the_campaign() {
        // A user hook that panics (here: while it would be holding a lock in
        // real code) must not abort the run or corrupt the report; it is
        // disabled and the campaign completes.
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&calls);
        let runner = CampaignRunner::new().with_progress(move |_| {
            seen.fetch_add(1, Ordering::Relaxed);
            panic!("user hook exploded");
        });
        let spec = small_spec();
        let report = runner
            .run(&spec)
            .expect("campaign survives a panicking hook");
        assert_eq!(report.cells.len(), 2);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            1,
            "the hook is disabled after its first panic"
        );
        // The report is identical to a hook-less run.
        let plain = CampaignRunner::new().run(&spec).unwrap();
        assert_eq!(report, plain);
    }

    #[test]
    fn hooks_that_panic_while_holding_a_lock_do_not_poison_later_holders() {
        // The classic poisoning shape: the hook panics *while holding* a
        // mutex shared with the caller.  The engine catches the panic, so
        // the caller's later lock() sees a poisoned-but-recoverable mutex at
        // worst — and the campaign itself never notices.
        let shared = Arc::new(std::sync::Mutex::new(0usize));
        let hook_side = Arc::clone(&shared);
        let runner = CampaignRunner::new().with_progress(move |_| {
            let mut guard = hook_side.lock().unwrap_or_else(|e| e.into_inner());
            *guard += 1;
            panic!("panic while holding the lock");
        });
        let report = runner.run(&small_spec()).expect("campaign completes");
        assert_eq!(report.cells.len(), 2);
        let count = *shared.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(count, 1);
    }

    #[test]
    fn speedup_curve_keeps_zero_cycle_cells_at_the_front() {
        // Regression: the old `partial_cmp(..).unwrap_or(Equal)` comparator
        // was not a total order; `total_cmp` is, and the documented policy
        // places zero-cycle cells (speedup 0.0) at the curve's start.
        let mut report = CampaignRunner::new().run(&small_spec()).unwrap();
        let mut dead = report.cells[0].clone();
        dead.trace = "dead".to_string();
        dead.stats.cycles = 0;
        let mut dead_baseline = report.baselines[0].clone();
        dead_baseline.trace = "dead".to_string();
        report.cells.push(dead);
        report.baselines.push(dead_baseline);
        let curve = report.speedup_curve("8_8_8");
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0], 0.0, "zero-cycle cell sorts first");
        assert!(curve[1] > 0.0);
        assert!(curve.windows(2).all(|w| w[0] <= w[1]));
        assert!(curve.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn stat_only_campaigns_skip_baselines() {
        let spec = CampaignBuilder::new("stat")
            .policy(PolicyKind::P888)
            .spec(SpecBenchmark::Gzip)
            .trace_len(1_000)
            .without_baseline()
            .build()
            .unwrap();
        let report = CampaignRunner::new().run(&spec).unwrap();
        assert_eq!(report.baseline_runs, 0);
        assert!(report.baselines.is_empty());
        assert_eq!(report.cells.len(), 1);
        assert!(report.experiment_results().is_empty());
    }

    #[test]
    fn legacy_specs_keep_the_v1_wire_format() {
        // A campaign that never touches the scenario axis must keep writing
        // the pre-scenario wire formats: spec v1 (with a `config` field) and
        // report v2 — that is what keeps golden snapshots and old tooling
        // byte-stable.
        let spec = small_spec();
        assert!(spec.is_single_default_scenario());
        assert_eq!(spec.schema_version, LEGACY_CAMPAIGN_SPEC_SCHEMA_VERSION);
        let json = spec.to_json();
        assert!(json.contains("\"config\""), "v1 shape carries `config`");
        assert!(!json.contains("\"scenarios\""));
        let decoded = CampaignSpec::from_json(&json).unwrap();
        assert_eq!(decoded, spec);
        let report = CampaignRunner::new().run(&spec).unwrap();
        assert_eq!(report.schema_version, LEGACY_CAMPAIGN_SCHEMA_VERSION);
        assert!(!report.to_json().contains("\"scenario\""));
    }

    fn geometry_spec() -> CampaignSpec {
        CampaignBuilder::new("sens")
            .policy(PolicyKind::P888)
            .policy(PolicyKind::Baseline)
            .spec(SpecBenchmark::Gzip)
            .spec(SpecBenchmark::Mcf)
            .trace_len(900)
            .sensitivity_helper_geometry()
            .build()
            .unwrap()
    }

    #[test]
    fn scenario_specs_use_the_v2_wire_format_and_round_trip() {
        let spec = geometry_spec();
        assert!(!spec.is_single_default_scenario());
        assert_eq!(spec.schema_version, CAMPAIGN_SPEC_SCHEMA_VERSION);
        assert_eq!(spec.scenarios.len(), 9);
        assert_eq!(spec.cell_count(), 2 * 2 * 9);
        let json = spec.to_json();
        assert!(json.contains("\"scenarios\""));
        assert!(!json.contains("\"config\""));
        let decoded = CampaignSpec::from_json(&json).unwrap();
        assert_eq!(decoded, spec);
    }

    #[test]
    fn scenario_campaigns_key_every_cell_and_memoize_per_scenario() {
        let spec = geometry_spec();
        let report = CampaignRunner::new().run(&spec).unwrap();
        assert_eq!(report.schema_version, CAMPAIGN_SCHEMA_VERSION);
        // 2 traces × 9 scenarios baselines; traces synthesized once per row.
        assert_eq!(report.baseline_runs, 2 * 9);
        assert_eq!(report.trace_generations, 2);
        assert_eq!(report.baselines.len(), 2 * 9);
        assert_eq!(report.cells.len(), 2 * 2 * 9);
        assert!(report.cells.iter().all(|c| c.scenario.is_some()));

        // The paper's design point is present and joins to its own baseline.
        let cell = report
            .cell_for_scenario("8_8_8", "gzip", Some("hw8_cr2x"))
            .expect("design-point cell");
        assert_eq!(cell.scenario.as_deref(), Some("hw8_cr2x"));
        let baseline = report
            .baseline_for_scenario("gzip", Some("hw8_cr2x"))
            .expect("design-point baseline");
        assert_eq!(cell.stats.committed_uops, baseline.committed_uops);

        // Per-scenario aggregates cover every scenario.
        let by_scenario = report.speedup_by_scenario("8_8_8");
        assert_eq!(by_scenario.len(), 9);
        assert!(by_scenario.contains_key("hw4_cr1x"));
        assert!(by_scenario.values().all(|s| *s > 0.0));
        let ed2 = report.ed2_by_scenario("8_8_8");
        assert_eq!(ed2.len(), 9);

        // A faster helper clock at the same width must not slow the machine
        // down relative to its own baseline aggregates being finite.
        let round_trip = CampaignReport::from_json(&report.to_json()).unwrap();
        assert_eq!(round_trip, report);
    }

    #[test]
    fn scenario_baselines_differ_across_machines() {
        // The whole point of per-(trace, scenario) baselines: different
        // machines measure different monolithic performance... unless the
        // scenario only changes helper-side knobs, in which case the
        // baselines legitimately coincide (helper removed).  Sweep a
        // *wide-side* knob to see distinct baselines.
        let slow_memory = ScenarioSpec::named("mem900").with_machine(SimConfig {
            memory_latency: 900,
            ..SimConfig::paper_baseline()
        });
        let spec = CampaignBuilder::new("mem")
            .policy(PolicyKind::P888)
            .spec(SpecBenchmark::Mcf)
            .trace_len(1_500)
            .scenario(ScenarioSpec::paper_default())
            .scenario(slow_memory)
            .build()
            .unwrap();
        let report = CampaignRunner::new().run(&spec).unwrap();
        let fast = report
            .baseline_for_scenario("mcf", Some(DEFAULT_SCENARIO_NAME))
            .unwrap();
        let slow = report.baseline_for_scenario("mcf", Some("mem900")).unwrap();
        assert!(
            slow.cycles > fast.cycles,
            "doubling memory latency must cost baseline cycles ({} vs {})",
            slow.cycles,
            fast.cycles
        );
    }

    #[test]
    fn width_predictor_scenarios_change_policy_behaviour_only() {
        let spec = CampaignBuilder::new("wp")
            .policy(PolicyKind::P888)
            .spec(SpecBenchmark::Gcc)
            .trace_len(2_000)
            .sensitivity_width_predictor()
            .build()
            .unwrap();
        assert_eq!(spec.scenarios.len(), 5);
        let report = CampaignRunner::new().run(&spec).unwrap();
        // Same machine in every scenario: all baselines identical.
        let b256 = report.baseline_for_scenario("gcc", Some("wp256")).unwrap();
        let b4096 = report.baseline_for_scenario("gcc", Some("wp4096")).unwrap();
        assert_eq!(b256, b4096);
        // Policy cells exist per scenario and commit the whole trace.
        for key in ["wp256", "wp512", "wp1024", "wp2048", "wp4096"] {
            let cell = report.cell_for_scenario("8_8_8", "gcc", Some(key)).unwrap();
            assert_eq!(cell.stats.committed_uops, 2_000, "{key}");
        }
    }

    #[test]
    fn predictor_sizing_reaches_the_policy() {
        // A 1-entry width table aliases every PC; its steering decisions (and
        // so the measured stats) must diverge from the 256-entry table.
        let tiny = ScenarioSpec::named("wp1")
            .with_predictors(hc_predictors::PredictorConfig::with_all_entries(1));
        let spec = CampaignBuilder::new("alias")
            .policy(PolicyKind::P888)
            .spec(SpecBenchmark::Gcc)
            .trace_len(2_000)
            .scenario(ScenarioSpec::paper_default())
            .scenario(tiny)
            .build()
            .unwrap();
        let report = CampaignRunner::new().run(&spec).unwrap();
        let paper = report
            .cell_for_scenario("8_8_8", "gcc", Some(DEFAULT_SCENARIO_NAME))
            .unwrap();
        let tiny = report
            .cell_for_scenario("8_8_8", "gcc", Some("wp1"))
            .unwrap();
        assert_ne!(
            paper.stats, tiny.stats,
            "a fully aliased width table must behave differently"
        );
    }

    #[test]
    fn config_applies_to_presets_regardless_of_call_order() {
        // Presets expand at build() against the final base machine, so
        // `.config(..)` after the preset must still take effect.
        let base = SimConfig {
            memory_latency: 900,
            ..SimConfig::paper_baseline()
        };
        let after = CampaignBuilder::new("order")
            .policy(PolicyKind::P888)
            .spec(SpecBenchmark::Gzip)
            .sensitivity_helper_geometry()
            .config(base.clone())
            .build()
            .unwrap();
        let before = CampaignBuilder::new("order")
            .policy(PolicyKind::P888)
            .spec(SpecBenchmark::Gzip)
            .config(base)
            .sensitivity_helper_geometry()
            .build()
            .unwrap();
        assert_eq!(after.scenarios, before.scenarios);
        assert!(after
            .scenarios
            .iter()
            .all(|s| s.machine.memory_latency == 900));
    }

    #[test]
    fn explicit_v2_specs_with_a_default_scenario_are_accepted() {
        // v2 is a superset: a v2 document whose scenario list happens to be
        // the single default overlay must decode, validate, run, and
        // re-encode as v2 (decode -> encode is the identity).
        let v2_json = CampaignSpec {
            schema_version: CAMPAIGN_SPEC_SCHEMA_VERSION,
            scenarios: vec![ScenarioSpec::paper_default()],
            ..small_spec()
        }
        .to_json();
        assert!(v2_json.contains("\"schema_version\": 2"));
        assert!(v2_json.contains("\"scenarios\""));
        let decoded = CampaignSpec::from_json(&v2_json).unwrap();
        assert_eq!(decoded.schema_version, CAMPAIGN_SPEC_SCHEMA_VERSION);
        assert!(decoded.validate().is_ok());
        assert_eq!(decoded.to_json(), v2_json, "round-trip identity");
        // Declaring v2 opts into the scenario-aware report format.
        assert!(!decoded.is_single_default_scenario());
        let report = CampaignRunner::new().run(&decoded).unwrap();
        assert_eq!(report.schema_version, CAMPAIGN_SCHEMA_VERSION);
        assert!(report
            .cells
            .iter()
            .all(|c| c.scenario.as_deref() == Some(DEFAULT_SCENARIO_NAME)));

        // Claiming v1 for a list that needs v2 is still rejected.
        let bad = CampaignSpec {
            schema_version: LEGACY_CAMPAIGN_SPEC_SCHEMA_VERSION,
            scenarios: vec![ScenarioSpec::named("x"), ScenarioSpec::named("y")],
            ..small_spec()
        };
        assert_eq!(
            bad.validate().unwrap_err(),
            CampaignError::UnsupportedSchemaVersion {
                found: LEGACY_CAMPAIGN_SPEC_SCHEMA_VERSION,
                supported: CAMPAIGN_SPEC_SCHEMA_VERSION,
            }
        );
    }

    #[test]
    fn scenario_validation_is_typed() {
        // Duplicate scenario names.
        let err = CampaignBuilder::new("dup")
            .policy(PolicyKind::P888)
            .spec(SpecBenchmark::Gzip)
            .scenario(ScenarioSpec::named("same"))
            .scenario(ScenarioSpec::named("same"))
            .build()
            .unwrap_err();
        assert_eq!(err, CampaignError::DuplicateScenario("same".to_string()));

        // A bad machine inside a scenario keeps the pre-scenario error shape.
        let mut machine = SimConfig::paper_baseline();
        machine.helper_width_bits = 7;
        let err = CampaignBuilder::new("badmachine")
            .policy(PolicyKind::P888)
            .spec(SpecBenchmark::Gzip)
            .scenario(ScenarioSpec::named("odd").with_machine(machine))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CampaignError::Config(hc_sim::ConfigError::UnsupportedHelperWidth { width_bits: 7 })
        );

        // Bad predictors / power surface as scenario errors with the name.
        let mut predictors = hc_predictors::PredictorConfig::paper_default();
        predictors.copy_entries = 0;
        let err = CampaignBuilder::new("badpred")
            .policy(PolicyKind::P888)
            .spec(SpecBenchmark::Gzip)
            .scenario(ScenarioSpec::named("tiny").with_predictors(predictors))
            .build()
            .unwrap_err();
        assert!(matches!(
            &err,
            CampaignError::Scenario { name, .. } if name == "tiny"
        ));
        assert!(err.to_string().contains("tiny"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn v2_reports_decode_into_the_scenario_model() {
        // A report produced by the pre-scenario engine (schema v2, spec v1,
        // cells without scenario keys) must decode: the spec comes back with
        // the single default overlay and every accessor works.
        let report = CampaignRunner::new().run(&small_spec()).unwrap();
        let json = report.to_json();
        assert!(json.contains("\"schema_version\": 2"));
        let decoded = CampaignReport::from_json(&json).unwrap();
        assert_eq!(decoded.spec.scenarios.len(), 1);
        assert!(decoded.spec.scenarios[0].is_legacy_overlay());
        assert_eq!(decoded.scenario_keys(), vec!["default".to_string()]);
        assert!(decoded.cells.iter().all(|c| c.scenario.is_none()));
        assert_eq!(
            decoded.speedup_by_scenario("8_8_8").len(),
            1,
            "legacy cells aggregate under the default scenario key"
        );
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = CampaignRunner::new().run(&small_spec()).unwrap();
        let decoded = CampaignReport::from_json(&report.to_json()).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn version_mismatch_is_a_typed_error() {
        let mut report = CampaignRunner::new().run(&small_spec()).unwrap();
        report.schema_version = CAMPAIGN_SCHEMA_VERSION + 1;
        let err = CampaignReport::from_json(&report.to_json()).unwrap_err();
        assert_eq!(
            err,
            CampaignError::UnsupportedSchemaVersion {
                found: CAMPAIGN_SCHEMA_VERSION + 1,
                supported: CAMPAIGN_SCHEMA_VERSION,
            }
        );
    }
}
