//! Declarative evaluation campaigns: policy × trace grids with shared
//! baselines, typed errors and a stable, versioned results schema.
//!
//! A [`CampaignSpec`] describes *what* to evaluate — a set of
//! [`PolicyKind`]s crossed with a set of [`TraceSelector`]s plus the
//! simulator configuration and warmup / length knobs — and is fully
//! serde-round-trippable, so campaigns can be stored, diffed and replayed.
//! A [`CampaignRunner`] executes the grid:
//!
//! * each trace's **monolithic baseline is simulated exactly once** and
//!   shared across every policy (an N-policy sweep is ~2× cheaper than N
//!   independent [`Experiment::run`] calls);
//! * traces fan out in parallel over the rayon-style thread pool;
//! * a progress hook observes cell completions as they happen;
//! * the result is a versioned [`CampaignReport`] with JSON and CSV
//!   renderings (see [`crate::report`]).
//!
//! [`Experiment`], [`crate::suite::SuiteRunner`] and [`crate::figures`] are
//! thin adapters over this engine.
//!
//! ```
//! use hc_core::campaign::{CampaignBuilder, CampaignRunner};
//! use hc_core::policy::PolicyKind;
//! use hc_trace::SpecBenchmark;
//!
//! let spec = CampaignBuilder::new("quick")
//!     .policy(PolicyKind::P888)
//!     .policy(PolicyKind::Ir)
//!     .spec(SpecBenchmark::Gzip)
//!     .trace_len(2_000)
//!     .build()
//!     .unwrap();
//! let report = CampaignRunner::new().run(&spec).unwrap();
//! assert_eq!(report.baseline_runs, 1); // one trace -> one baseline, shared
//! assert_eq!(report.cells.len(), 2);
//! ```

use crate::experiment::{Experiment, ExperimentResult};
use crate::policy::PolicyKind;
use hc_sim::{ConfigError, SimConfig, SimStats};
use hc_trace::{SpecBenchmark, Trace, WorkloadCategory, WorkloadProfile};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Version of the [`CampaignSpec`] wire schema.  Bumped whenever a
/// serialized *spec* field changes meaning; decoders reject mismatched
/// versions with a typed error instead of misreading data.  Specs have not
/// changed since their introduction, so v1 files keep decoding even as the
/// report schema evolves.
pub const CAMPAIGN_SPEC_SCHEMA_VERSION: u32 = 1;

/// Version of the [`CampaignReport`] wire schema.  Bumped whenever a
/// serialized *report* field changes meaning; decoders reject mismatched
/// versions with a typed error instead of misreading data.
///
/// * v1 — initial schema.
/// * v2 — [`CampaignReport`] gained `trace_generations` (trace-synthesis
///   memoization instrumentation, mirroring `baseline_runs`).
pub const CAMPAIGN_SCHEMA_VERSION: u32 = 2;

/// Everything that can go wrong assembling, decoding or running a campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The simulator configuration was rejected.
    Config(ConfigError),
    /// The spec names no policies.
    NoPolicies,
    /// The spec names no traces.
    NoTraces,
    /// The spec asks for zero-length traces.
    ZeroTraceLength,
    /// The spec disables baselines but asks for the `baseline` policy
    /// column, whose cells *are* baseline runs — a contradiction.
    BaselinePolicyWithoutBaseline,
    /// Two trace selectors generate the same trace name; report cells are
    /// keyed by name, so duplicates would silently join to the wrong
    /// baseline.
    DuplicateTraceLabel(String),
    /// The same policy appears twice; report cells are keyed by policy
    /// name, so duplicates would double-count in every aggregate.
    DuplicatePolicy(String),
    /// A serialized spec/report was produced by an incompatible schema.
    UnsupportedSchemaVersion {
        /// Version found in the document.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// A serialized spec/report could not be decoded.
    Decode(String),
    /// A sharded run was asked for zero shards.
    ZeroShardCount,
    /// A shard names an index outside its own shard count.
    ShardIndexOutOfRange {
        /// Shard index found.
        index: usize,
        /// Shard count the shard claims to belong to.
        count: usize,
    },
    /// [`CampaignReport::merge`] was handed no shards.
    NoShards,
    /// Shards being merged disagree on the spec or shard count — they do not
    /// come from one partition of one campaign.
    ShardSetMismatch(String),
    /// Two shards being merged both carry the same trace row.
    ShardOverlap {
        /// Index (into the spec's trace list) claimed twice.
        trace_index: usize,
    },
    /// The shards being merged do not cover every trace row of the spec.
    IncompleteShardSet {
        /// First uncovered index into the spec's trace list.
        missing_trace_index: usize,
    },
    /// A shard's payload is internally inconsistent (wrong cell/baseline
    /// counts for its claimed rows) — typically a corrupt checkpoint file.
    MalformedShard {
        /// The shard's index.
        index: usize,
        /// What was wrong.
        reason: String,
    },
    /// A checkpoint directory could not be read, written or trusted.
    Checkpoint(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Config(e) => write!(f, "invalid simulator configuration: {e}"),
            CampaignError::NoPolicies => write!(f, "campaign names no policies"),
            CampaignError::NoTraces => write!(f, "campaign names no traces"),
            CampaignError::ZeroTraceLength => write!(f, "campaign trace length must be non-zero"),
            CampaignError::BaselinePolicyWithoutBaseline => write!(
                f,
                "campaign disables baselines but includes the baseline policy"
            ),
            CampaignError::DuplicateTraceLabel(label) => {
                write!(f, "campaign names the trace `{label}` more than once")
            }
            CampaignError::DuplicatePolicy(name) => {
                write!(f, "campaign names the policy `{name}` more than once")
            }
            CampaignError::UnsupportedSchemaVersion { found, supported } => write!(
                f,
                "unsupported campaign schema version {found} (this build supports {supported})"
            ),
            CampaignError::Decode(msg) => write!(f, "malformed campaign document: {msg}"),
            CampaignError::ZeroShardCount => write!(f, "campaign shard count must be non-zero"),
            CampaignError::ShardIndexOutOfRange { index, count } => {
                write!(f, "shard index {index} out of range for {count} shards")
            }
            CampaignError::NoShards => write!(f, "no shard reports to merge"),
            CampaignError::ShardSetMismatch(msg) => {
                write!(f, "shards do not belong to one campaign partition: {msg}")
            }
            CampaignError::ShardOverlap { trace_index } => {
                write!(
                    f,
                    "trace row {trace_index} is claimed by more than one shard"
                )
            }
            CampaignError::IncompleteShardSet {
                missing_trace_index,
            } => write!(
                f,
                "shard set does not cover trace row {missing_trace_index}"
            ),
            CampaignError::MalformedShard { index, reason } => {
                write!(f, "shard {index} is malformed: {reason}")
            }
            CampaignError::Checkpoint(msg) => write!(f, "campaign checkpoint error: {msg}"),
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for CampaignError {
    fn from(e: ConfigError) -> CampaignError {
        CampaignError::Config(e)
    }
}

/// How a campaign names one workload trace, declaratively.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceSelector {
    /// One of the 12 SPEC Int 2000 stand-ins.
    Spec(SpecBenchmark),
    /// The `app`-th application profile of a Table 2 workload category.
    CategoryApp {
        /// Workload category.
        category: WorkloadCategory,
        /// Application index within the category (0-based).
        app: usize,
    },
    /// An explicit workload profile.
    Profile(WorkloadProfile),
}

impl TraceSelector {
    /// The trace name this selector will generate.
    pub fn label(&self, trace_len: usize) -> String {
        match self {
            TraceSelector::Spec(b) => b.name().to_string(),
            TraceSelector::CategoryApp { category, app } => {
                category.app_profile(*app, trace_len).name
            }
            TraceSelector::Profile(p) => p.name.clone(),
        }
    }

    /// Generate the trace at the given dynamic length.
    pub fn generate(&self, trace_len: usize) -> Trace {
        match self {
            TraceSelector::Spec(b) => b.trace(trace_len),
            TraceSelector::CategoryApp { category, app } => {
                category.app_profile(*app, trace_len).generate()
            }
            TraceSelector::Profile(p) => p.clone().with_trace_len(trace_len).generate(),
        }
    }
}

/// A declarative policy × trace evaluation grid.
///
/// Serde-round-trippable: `serde::json::to_string` / `from_str` (or
/// [`CampaignSpec::to_json`] / [`CampaignSpec::from_json`], which also check
/// the schema version) reproduce the spec exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Schema version this spec was written with.
    pub schema_version: u32,
    /// Campaign name, echoed into the report.
    pub name: String,
    /// Policies to evaluate (the grid's columns).
    pub policies: Vec<PolicyKind>,
    /// Traces to evaluate on (the grid's rows).
    pub traces: Vec<TraceSelector>,
    /// Dynamic µops per generated trace.
    pub trace_len: usize,
    /// Unmeasured priming runs per cell before the measured run: the policy
    /// instance (and its predictors) stays warm across them.  `0` reproduces
    /// [`Experiment::run`] exactly.
    pub warmup_runs: usize,
    /// Whether to simulate the monolithic baseline for every trace (needed
    /// for speedups; disable for stat-only sweeps to halve the work).
    pub include_baseline: bool,
    /// Helper-cluster simulator configuration; the baseline uses the same
    /// parameters with the helper cluster removed.
    pub config: SimConfig,
}

impl CampaignSpec {
    /// Validate the spec, returning the first problem found.
    pub fn validate(&self) -> Result<(), CampaignError> {
        if self.schema_version != CAMPAIGN_SPEC_SCHEMA_VERSION {
            return Err(CampaignError::UnsupportedSchemaVersion {
                found: self.schema_version,
                supported: CAMPAIGN_SPEC_SCHEMA_VERSION,
            });
        }
        if self.policies.is_empty() {
            return Err(CampaignError::NoPolicies);
        }
        if self.traces.is_empty() {
            return Err(CampaignError::NoTraces);
        }
        if self.trace_len == 0 {
            return Err(CampaignError::ZeroTraceLength);
        }
        if !self.include_baseline && self.policies.contains(&PolicyKind::Baseline) {
            return Err(CampaignError::BaselinePolicyWithoutBaseline);
        }
        let mut policies = std::collections::BTreeSet::new();
        for kind in &self.policies {
            if !policies.insert(kind.name()) {
                return Err(CampaignError::DuplicatePolicy(kind.name().to_string()));
            }
        }
        let mut labels = std::collections::BTreeSet::new();
        for selector in &self.traces {
            let label = selector.label(self.trace_len);
            if !labels.insert(label.clone()) {
                return Err(CampaignError::DuplicateTraceLabel(label));
            }
        }
        self.config.validate()?;
        Ok(())
    }

    /// Number of policy × trace cells in the grid.
    pub fn cell_count(&self) -> usize {
        self.policies.len() * self.traces.len()
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Decode from JSON, checking the schema version first.
    pub fn from_json(text: &str) -> Result<CampaignSpec, CampaignError> {
        let value = decode_versioned(text, CAMPAIGN_SPEC_SCHEMA_VERSION)?;
        Deserialize::from_value(&value).map_err(|e| CampaignError::Decode(e.to_string()))
    }
}

/// Parse JSON and verify its `schema_version` field against the `supported`
/// version before full decoding.
pub(crate) fn decode_versioned(text: &str, supported: u32) -> Result<serde::Value, CampaignError> {
    let value = serde::json::parse(text).map_err(|e| CampaignError::Decode(e.to_string()))?;
    let found = match value.get("schema_version") {
        Some(serde::Value::UInt(n)) => *n as u32,
        _ => return Err(CampaignError::Decode("missing schema_version".to_string())),
    };
    if found != supported {
        return Err(CampaignError::UnsupportedSchemaVersion { found, supported });
    }
    Ok(value)
}

/// Fluent constructor for [`CampaignSpec`].
#[derive(Debug, Clone)]
pub struct CampaignBuilder {
    spec: CampaignSpec,
}

impl CampaignBuilder {
    /// Start a campaign with the paper-baseline configuration, no policies
    /// and no traces.
    pub fn new(name: impl Into<String>) -> CampaignBuilder {
        CampaignBuilder {
            spec: CampaignSpec {
                schema_version: CAMPAIGN_SPEC_SCHEMA_VERSION,
                name: name.into(),
                policies: Vec::new(),
                traces: Vec::new(),
                trace_len: 10_000,
                warmup_runs: 0,
                include_baseline: true,
                config: SimConfig::paper_baseline(),
            },
        }
    }

    /// Add one policy column.
    pub fn policy(mut self, kind: PolicyKind) -> Self {
        self.spec.policies.push(kind);
        self
    }

    /// Add several policy columns.
    pub fn policies(mut self, kinds: impl IntoIterator<Item = PolicyKind>) -> Self {
        self.spec.policies.extend(kinds);
        self
    }

    /// Add the paper's seven helper-cluster policies (everything except the
    /// monolithic baseline), in the order the paper introduces them.
    pub fn paper_policies(self) -> Self {
        self.policies(
            PolicyKind::ALL
                .into_iter()
                .filter(|&k| k != PolicyKind::Baseline),
        )
    }

    /// Add one trace row.
    pub fn trace(mut self, selector: TraceSelector) -> Self {
        self.spec.traces.push(selector);
        self
    }

    /// Add one SPEC stand-in trace row.
    pub fn spec(self, benchmark: SpecBenchmark) -> Self {
        self.trace(TraceSelector::Spec(benchmark))
    }

    /// Add all 12 SPEC Int 2000 stand-in rows.
    pub fn spec_suite(mut self) -> Self {
        self.spec
            .traces
            .extend(SpecBenchmark::ALL.iter().map(|&b| TraceSelector::Spec(b)));
        self
    }

    /// Add the `app`-th application of a Table 2 category as a row.
    pub fn category_app(self, category: WorkloadCategory, app: usize) -> Self {
        self.trace(TraceSelector::CategoryApp { category, app })
    }

    /// Add up to `apps_per_category` applications from every Table 2 category,
    /// in category-then-app order.  The rows are *selectors* — each trace is
    /// synthesized on the fly inside a worker when the campaign runs, so even
    /// very large suites never sit in memory all at once.
    pub fn category_suite(mut self, apps_per_category: usize) -> Self {
        for cat in WorkloadCategory::ALL {
            for app in 0..apps_per_category.min(cat.trace_count()) {
                self = self.category_app(cat, app);
            }
        }
        self
    }

    /// Add every application of every Table 2 category — the paper's full
    /// 409-trace §3.8 suite — as selector rows.
    pub fn full_table2_suite(self) -> Self {
        self.category_suite(usize::MAX)
    }

    /// Add an explicit workload profile as a row.
    pub fn profile(self, profile: WorkloadProfile) -> Self {
        self.trace(TraceSelector::Profile(profile))
    }

    /// Set the dynamic µop count per generated trace.
    pub fn trace_len(mut self, len: usize) -> Self {
        self.spec.trace_len = len;
        self
    }

    /// Set the number of unmeasured predictor-priming runs per cell.
    pub fn warmup_runs(mut self, runs: usize) -> Self {
        self.spec.warmup_runs = runs;
        self
    }

    /// Skip the monolithic baseline simulations (stat-only sweeps).
    pub fn without_baseline(mut self) -> Self {
        self.spec.include_baseline = false;
        self
    }

    /// Use a custom helper-cluster simulator configuration.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.spec.config = config;
        self
    }

    /// Validate and produce the spec.
    pub fn build(self) -> Result<CampaignSpec, CampaignError> {
        self.spec.validate()?;
        Ok(self.spec)
    }
}

/// A completed-cell notification delivered to the progress hook.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignProgress {
    /// Cells finished so far (including this one).
    pub completed_cells: usize,
    /// Total cells in the grid.
    pub total_cells: usize,
    /// Policy of the cell that just finished.
    pub policy: String,
    /// Trace of the cell that just finished.
    pub trace: String,
}

/// Shared progress-hook type: called once per finished cell, possibly from
/// worker threads.
pub type ProgressHook = Arc<dyn Fn(&CampaignProgress) + Send + Sync>;

/// One policy × trace measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignCell {
    /// Policy name (stable report key, from [`PolicyKind::name`]).
    pub policy: String,
    /// Trace name.
    pub trace: String,
    /// Workload category of the trace, if any.
    pub category: Option<String>,
    /// Measured statistics of the policy run.
    pub stats: SimStats,
}

/// One trace's monolithic-baseline measurement (shared by every cell of that
/// trace).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineRun {
    /// Trace name.
    pub trace: String,
    /// Workload category of the trace, if any.
    pub category: Option<String>,
    /// Baseline statistics.
    pub stats: SimStats,
}

/// The versioned output of a campaign run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Schema version of this report.
    pub schema_version: u32,
    /// Campaign name (from the spec).
    pub name: String,
    /// The spec that produced this report, embedded for replayability.
    pub spec: CampaignSpec,
    /// One baseline run per trace (empty when the spec disabled baselines).
    pub baselines: Vec<BaselineRun>,
    /// All policy × trace cells, trace-major in spec order.
    pub cells: Vec<CampaignCell>,
    /// Number of monolithic baseline simulations actually executed — the
    /// memoization instrumentation: always ≤ the number of traces, never
    /// policies × traces.
    pub baseline_runs: usize,
    /// Number of [`TraceSelector::generate`] calls actually performed — the
    /// trace-memoization instrumentation mirroring `baseline_runs`: each
    /// grid row is synthesized exactly once and shared across every policy
    /// column (and every warmup run), so this is always the number of
    /// traces, never policies × traces.
    pub trace_generations: usize,
}

impl CampaignReport {
    /// The baseline statistics for a trace, if baselines were run.
    pub fn baseline_for(&self, trace: &str) -> Option<&SimStats> {
        self.baselines
            .iter()
            .find(|b| b.trace == trace)
            .map(|b| &b.stats)
    }

    /// The cell for a (policy, trace) pair.
    pub fn cell(&self, policy: &str, trace: &str) -> Option<&CampaignCell> {
        self.cells
            .iter()
            .find(|c| c.policy == policy && c.trace == trace)
    }

    fn join_cell(&self, cell: &CampaignCell) -> Option<ExperimentResult> {
        let baseline = self.baseline_for(&cell.trace)?;
        Some(ExperimentResult {
            policy: cell.policy.clone(),
            trace: cell.trace.clone(),
            category: cell.category.clone(),
            stats: cell.stats.clone(),
            baseline: baseline.clone(),
        })
    }

    /// Join every cell with its trace baseline into classic
    /// [`ExperimentResult`]s (cells without a baseline are skipped).
    pub fn experiment_results(&self) -> Vec<ExperimentResult> {
        self.cells
            .iter()
            .filter_map(|c| self.join_cell(c))
            .collect()
    }

    /// [`ExperimentResult`]s for one policy, in trace order.  Filters before
    /// joining, so only the requested policy's cells are cloned.
    pub fn results_for_policy(&self, policy: &str) -> Vec<ExperimentResult> {
        self.cells
            .iter()
            .filter(|c| c.policy == policy)
            .filter_map(|c| self.join_cell(c))
            .collect()
    }

    /// Mean speedup of one policy per workload category (cells without a
    /// category label group under `"uncategorized"`) — the aggregation behind
    /// the paper's Figure 14 (left).
    pub fn mean_speedup_by_category(&self, policy: &str) -> BTreeMap<String, f64> {
        let mut sums: BTreeMap<String, (f64, usize)> = BTreeMap::new();
        for cell in self.cells.iter().filter(|c| c.policy == policy) {
            let Some(baseline) = self.baseline_for(&cell.trace) else {
                continue;
            };
            let cat = cell
                .category
                .clone()
                .unwrap_or_else(|| "uncategorized".to_string());
            let e = sums.entry(cat).or_insert((0.0, 0));
            e.0 += cell.stats.speedup_over(baseline);
            e.1 += 1;
        }
        sums.into_iter()
            .map(|(k, (s, n))| (k, s / n as f64))
            .collect()
    }

    /// One policy's per-trace speedups sorted ascending — the S-curve of
    /// Figure 14 (right).
    pub fn speedup_curve(&self, policy: &str) -> Vec<f64> {
        let mut curve: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.policy == policy)
            .filter_map(|c| self.baseline_for(&c.trace).map(|b| c.stats.speedup_over(b)))
            .collect();
        curve.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        curve
    }

    /// Arithmetic-mean speedup of one policy over the grid's traces.
    /// Computed in place — no result vectors are materialized.
    pub fn mean_speedup(&self, policy: &str) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for cell in self.cells.iter().filter(|c| c.policy == policy) {
            if let Some(baseline) = self.baseline_for(&cell.trace) {
                sum += cell.stats.speedup_over(baseline);
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Serialize to pretty JSON (stable, versioned schema).
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Decode from JSON, checking the schema version first.
    pub fn from_json(text: &str) -> Result<CampaignReport, CampaignError> {
        let value = decode_versioned(text, CAMPAIGN_SCHEMA_VERSION)?;
        Deserialize::from_value(&value).map_err(|e| CampaignError::Decode(e.to_string()))
    }

    /// Render as CSV (see [`crate::report::campaign_to_csv`]).
    pub fn to_csv(&self) -> String {
        crate::report::campaign_to_csv(self)
    }
}

/// Executes [`CampaignSpec`]s.
#[derive(Clone, Default)]
pub struct CampaignRunner {
    progress: Option<ProgressHook>,
}

impl fmt::Debug for CampaignRunner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignRunner")
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

impl CampaignRunner {
    /// A runner with no progress hook.
    pub fn new() -> CampaignRunner {
        CampaignRunner::default()
    }

    /// Attach a progress hook, called once per finished cell (possibly from
    /// worker threads).
    pub fn with_progress(
        mut self,
        hook: impl Fn(&CampaignProgress) + Send + Sync + 'static,
    ) -> CampaignRunner {
        self.progress = Some(Arc::new(hook));
        self
    }

    /// Validate and execute a campaign.
    ///
    /// The grid **streams**: each worker synthesizes one row's trace from its
    /// selector, runs every policy column against it, and drops it before
    /// picking up the next row — at no point do more than O(worker threads)
    /// traces exist in memory, so the full 409-trace Table 2 suite runs in
    /// the same footprint as a 12-trace grid.  Each row's trace is still
    /// generated exactly once and shared by every policy column; the
    /// `trace_generations` counter proves the memoization held.
    pub fn run(&self, spec: &CampaignSpec) -> Result<CampaignReport, CampaignError> {
        spec.validate()?;
        let experiment = Experiment::try_new(spec.config.clone())?;
        let generation_count = AtomicUsize::new(0);
        let grid = run_grid_streaming(
            &experiment,
            &spec.traces,
            |selector| {
                generation_count.fetch_add(1, Ordering::Relaxed);
                Cow::Owned(selector.generate(spec.trace_len))
            },
            &spec.policies,
            spec.warmup_runs,
            spec.include_baseline,
            self.progress.as_ref(),
        );
        let baseline_runs = grid.baseline_runs;
        let (baselines, cells) = grid.into_flat_parts();
        Ok(CampaignReport {
            schema_version: CAMPAIGN_SCHEMA_VERSION,
            name: spec.name.clone(),
            spec: spec.clone(),
            baselines,
            cells,
            baseline_runs,
            trace_generations: generation_count.load(Ordering::Relaxed),
        })
    }
}

/// The raw output of [`run_grid`]: one entry per trace, keeping each trace's
/// baseline next to its cells so joins are positional — correct even when
/// two traces share a name (the adapter paths accept arbitrary trace lists;
/// only [`CampaignSpec::validate`] enforces unique labels).
pub(crate) struct Grid {
    per_trace: Vec<(Option<BaselineRun>, Vec<CampaignCell>)>,
    pub baseline_runs: usize,
}

impl Grid {
    /// Flatten into the report's baseline and cell lists (trace-major).
    pub(crate) fn into_flat_parts(self) -> (Vec<BaselineRun>, Vec<CampaignCell>) {
        let mut baselines = Vec::with_capacity(self.per_trace.len());
        let mut cells = Vec::new();
        for (baseline, trace_cells) in self.per_trace {
            if let Some(b) = baseline {
                baselines.push(b);
            }
            cells.extend(trace_cells);
        }
        (baselines, cells)
    }

    /// Join each trace's cells with *its own* baseline into
    /// [`ExperimentResult`]s, preserving cell order (trace-major).
    pub fn into_experiment_results(self) -> Vec<ExperimentResult> {
        let mut results = Vec::new();
        for (baseline, trace_cells) in self.per_trace {
            let Some(baseline) = baseline else { continue };
            for c in trace_cells {
                results.push(ExperimentResult {
                    policy: c.policy,
                    trace: c.trace,
                    category: c.category,
                    stats: c.stats,
                    baseline: baseline.stats.clone(),
                });
            }
        }
        results
    }
}

/// The shared grid engine behind [`CampaignRunner`], [`Experiment::run_many`]
/// and [`crate::suite::SuiteRunner`], over already-materialized traces.
pub(crate) fn run_grid(
    experiment: &Experiment,
    traces: &[Trace],
    policies: &[PolicyKind],
    warmup_runs: usize,
    include_baseline: bool,
    progress: Option<&ProgressHook>,
) -> Grid {
    run_grid_streaming(
        experiment,
        traces,
        |t| Cow::Borrowed(t),
        policies,
        warmup_runs,
        include_baseline,
        progress,
    )
}

/// The streaming grid engine: rows fan out in parallel and each worker
/// *materializes one row's trace at a time* via `make_trace`, runs every
/// policy column against it, then drops it.  Peak memory is O(worker
/// threads) traces regardless of row count — this is what lets the full
/// 409-trace Table 2 suite run as one campaign.  Each trace's baseline is
/// simulated at most once and shared across policies.
///
/// `make_trace` returns a [`Cow`] so borrowed-trace callers ([`run_grid`])
/// pay no clone while streaming callers hand over ownership.
pub(crate) fn run_grid_streaming<R, F>(
    experiment: &Experiment,
    rows: &[R],
    make_trace: F,
    policies: &[PolicyKind],
    warmup_runs: usize,
    include_baseline: bool,
    progress: Option<&ProgressHook>,
) -> Grid
where
    R: Sync,
    F: for<'r> Fn(&'r R) -> Cow<'r, Trace> + Sync,
{
    let total_cells = rows.len() * policies.len();
    let completed = AtomicUsize::new(0);
    let baseline_count = AtomicUsize::new(0);
    let baseline_needed = include_baseline || policies.contains(&PolicyKind::Baseline);

    // One `ExecContext` per worker thread, reused across every run that
    // worker performs: a campaign costs O(threads) simulator arenas instead
    // of O(cells) — and results stay bit-identical to fresh contexts.
    let per_trace: Vec<(Option<BaselineRun>, Vec<CampaignCell>)> = rows
        .par_iter()
        .map_init(hc_sim::ExecContext::new, |ctx, row| {
            let trace = make_trace(row);
            let trace: &Trace = &trace;
            let baseline = if baseline_needed {
                baseline_count.fetch_add(1, Ordering::Relaxed);
                Some(BaselineRun {
                    trace: trace.name.clone(),
                    category: trace.category.clone(),
                    stats: experiment.run_baseline_with(ctx, trace),
                })
            } else {
                None
            };
            let cells = policies
                .iter()
                .map(|&kind| {
                    let stats = match (&baseline, kind) {
                        (Some(b), PolicyKind::Baseline) => b.stats.clone(),
                        _ => experiment.run_policy_warmed_with(ctx, trace, kind, warmup_runs),
                    };
                    let cell = CampaignCell {
                        policy: kind.name().to_string(),
                        trace: trace.name.clone(),
                        category: trace.category.clone(),
                        stats,
                    };
                    if let Some(hook) = progress {
                        hook(&CampaignProgress {
                            completed_cells: completed.fetch_add(1, Ordering::Relaxed) + 1,
                            total_cells,
                            policy: cell.policy.clone(),
                            trace: cell.trace.clone(),
                        });
                    }
                    cell
                })
                .collect();
            (baseline, cells)
        })
        .collect();

    Grid {
        per_trace,
        baseline_runs: baseline_count.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> CampaignSpec {
        CampaignBuilder::new("unit")
            .policy(PolicyKind::P888)
            .policy(PolicyKind::Baseline)
            .spec(SpecBenchmark::Gzip)
            .trace_len(1_200)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_validates_empty_specs() {
        assert_eq!(
            CampaignBuilder::new("x").spec(SpecBenchmark::Gzip).build(),
            Err(CampaignError::NoPolicies)
        );
        assert_eq!(
            CampaignBuilder::new("x").policy(PolicyKind::P888).build(),
            Err(CampaignError::NoTraces)
        );
        assert_eq!(
            CampaignBuilder::new("x")
                .policy(PolicyKind::P888)
                .spec(SpecBenchmark::Gzip)
                .trace_len(0)
                .build(),
            Err(CampaignError::ZeroTraceLength)
        );
    }

    #[test]
    fn baseline_policy_conflicts_with_without_baseline() {
        assert_eq!(
            CampaignBuilder::new("x")
                .policy(PolicyKind::Baseline)
                .policy(PolicyKind::P888)
                .spec(SpecBenchmark::Gzip)
                .without_baseline()
                .build(),
            Err(CampaignError::BaselinePolicyWithoutBaseline)
        );
    }

    #[test]
    fn duplicate_trace_labels_are_rejected() {
        // A custom profile named like a SPEC stand-in would join cells to
        // the wrong baseline; the spec refuses to run.
        let err = CampaignBuilder::new("dup")
            .policy(PolicyKind::P888)
            .spec(SpecBenchmark::Gzip)
            .profile(hc_trace::WorkloadProfile::new(
                "gzip",
                vec![(hc_trace::KernelKind::WordSum, 1.0)],
            ))
            .build()
            .unwrap_err();
        assert_eq!(err, CampaignError::DuplicateTraceLabel("gzip".to_string()));
        assert!(err.to_string().contains("more than once"));
    }

    #[test]
    fn duplicate_selectors_are_rejected() {
        // The same selector twice (not just two selectors colliding on a
        // name) is the common copy-paste mistake in hand-written suites.
        let err = CampaignBuilder::new("dup")
            .policy(PolicyKind::P888)
            .category_app(WorkloadCategory::Office, 3)
            .category_app(WorkloadCategory::Office, 3)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CampaignError::DuplicateTraceLabel("office_003".to_string())
        );
    }

    #[test]
    fn duplicate_policies_are_rejected() {
        let err = CampaignBuilder::new("dup")
            .policy(PolicyKind::P888)
            .policy(PolicyKind::P888)
            .spec(SpecBenchmark::Gzip)
            .build()
            .unwrap_err();
        assert_eq!(err, CampaignError::DuplicatePolicy("8_8_8".to_string()));
    }

    #[test]
    fn adapter_paths_join_duplicate_trace_names_positionally() {
        // run_grid joins each trace's cells to its own baseline by position,
        // so even two different traces sharing a name stay correct on the
        // Experiment/SuiteRunner adapter paths (which skip spec validation).
        use crate::suite::SuiteRunner;
        use hc_trace::{KernelKind, WorkloadProfile};
        let narrow =
            WorkloadProfile::new("same", vec![(KernelKind::VectorAddU8, 1.0)]).with_trace_len(900);
        let wide =
            WorkloadProfile::new("same", vec![(KernelKind::PointerChase, 1.0)]).with_trace_len(900);
        let suite = SuiteRunner::default().run_profiles(&[narrow, wide], PolicyKind::P888);
        assert_eq!(suite.per_trace.len(), 2);
        // Each result's baseline committed the same trace as its stats run —
        // and the two baselines differ because the traces differ.
        for r in &suite.per_trace {
            assert_eq!(r.baseline.committed_uops, r.stats.committed_uops);
        }
        assert_ne!(
            suite.per_trace[0].baseline.cycles, suite.per_trace[1].baseline.cycles,
            "distinct traces must keep distinct baselines despite the shared name"
        );
    }

    #[test]
    fn builder_rejects_invalid_sim_configs() {
        let mut config = SimConfig::paper_baseline();
        config.commit_width = 0;
        let err = CampaignBuilder::new("x")
            .policy(PolicyKind::P888)
            .spec(SpecBenchmark::Gzip)
            .config(config)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CampaignError::Config(hc_sim::ConfigError::ZeroFrontendWidth)
        );
        assert!(err.to_string().contains("non-zero"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn traces_are_generated_once_per_row_not_per_cell() {
        // Two policy columns, two warmup runs, one trace row: the trace must
        // still be synthesized exactly once.
        let spec = CampaignBuilder::new("gen")
            .policy(PolicyKind::P888)
            .policy(PolicyKind::Ir)
            .spec(SpecBenchmark::Gzip)
            .trace_len(1_000)
            .warmup_runs(2)
            .build()
            .unwrap();
        let report = CampaignRunner::new().run(&spec).unwrap();
        assert_eq!(report.trace_generations, 1);
        assert_eq!(report.cells.len(), 2);
    }

    #[test]
    fn baseline_policy_cell_reuses_the_memoized_baseline() {
        let report = CampaignRunner::new().run(&small_spec()).unwrap();
        assert_eq!(report.baseline_runs, 1);
        assert_eq!(report.trace_generations, 1);
        let baseline_cell = report.cell("baseline", "gzip").unwrap();
        assert_eq!(
            &baseline_cell.stats,
            report.baseline_for("gzip").unwrap(),
            "baseline policy cell must be the shared baseline run"
        );
    }

    #[test]
    fn progress_hook_sees_every_cell() {
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        let runner =
            CampaignRunner::new().with_progress(move |p| sink.lock().unwrap().push(p.clone()));
        runner.run(&small_spec()).unwrap();
        let events = seen.lock().unwrap();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|p| p.total_cells == 2));
        assert!(events.iter().any(|p| p.completed_cells == 2));
    }

    #[test]
    fn stat_only_campaigns_skip_baselines() {
        let spec = CampaignBuilder::new("stat")
            .policy(PolicyKind::P888)
            .spec(SpecBenchmark::Gzip)
            .trace_len(1_000)
            .without_baseline()
            .build()
            .unwrap();
        let report = CampaignRunner::new().run(&spec).unwrap();
        assert_eq!(report.baseline_runs, 0);
        assert!(report.baselines.is_empty());
        assert_eq!(report.cells.len(), 1);
        assert!(report.experiment_results().is_empty());
    }

    #[test]
    fn spec_schema_stays_v1_while_report_schema_evolves() {
        // The spec wire format has not changed, so spec files written before
        // the report gained `trace_generations` must keep decoding.
        let spec = small_spec();
        assert_eq!(spec.schema_version, CAMPAIGN_SPEC_SCHEMA_VERSION);
        let decoded = CampaignSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(decoded, spec);
        let report = CampaignRunner::new().run(&spec).unwrap();
        assert_eq!(report.schema_version, CAMPAIGN_SCHEMA_VERSION);
        assert_ne!(CAMPAIGN_SPEC_SCHEMA_VERSION, CAMPAIGN_SCHEMA_VERSION);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = CampaignRunner::new().run(&small_spec()).unwrap();
        let decoded = CampaignReport::from_json(&report.to_json()).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn version_mismatch_is_a_typed_error() {
        let mut report = CampaignRunner::new().run(&small_spec()).unwrap();
        report.schema_version = CAMPAIGN_SCHEMA_VERSION + 1;
        let err = CampaignReport::from_json(&report.to_json()).unwrap_err();
        assert_eq!(
            err,
            CampaignError::UnsupportedSchemaVersion {
                found: CAMPAIGN_SCHEMA_VERSION + 1,
                supported: CAMPAIGN_SCHEMA_VERSION,
            }
        );
    }
}
