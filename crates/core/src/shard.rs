//! Sharded, resumable execution of large campaigns.
//!
//! A [`CampaignShard`] is a **deterministic partition** of a
//! [`CampaignSpec`]'s trace rows: shard `k` of `N` owns every row `i` with
//! `i % N == k` (round-robin, so the Table 2 categories spread evenly over
//! shards instead of one shard getting all of `mm`).  Policies are *not*
//! partitioned — a shard runs every policy column over its rows, which keeps
//! the per-trace baseline memoization intact: sharding never re-simulates a
//! baseline.
//!
//! Each shard runs through the same streaming grid engine as
//! [`CampaignRunner`]: workers synthesize one trace at a time from its
//! selector and drop it after the row's cells finish, so even the full
//! 409-trace suite peaks at O(worker threads) traces in memory.
//!
//! The output of a shard is a serializable [`ShardReport`];
//! [`CampaignReport::merge`] reassembles any complete set of shards —
//! **any shard count, presented in any order** — into a report that is
//! byte-identical to the unsharded [`CampaignRunner::run`] JSON
//! (`tests/shard_merge.rs` proves this).  Merging checks schema versions,
//! spec equality, row overlap and row coverage, and rejects inconsistent
//! sets with typed [`CampaignError`]s instead of silently joining cells to
//! the wrong baselines.
//!
//! [`ShardedCampaignRunner`] drives a whole partition and adds
//! **checkpoint/resume**: with a checkpoint directory configured, every
//! completed shard is written to `shard_NNNN.json` next to a `campaign.json`
//! manifest, and a resumed run loads (and skips) every shard whose file
//! still matches the spec.
//!
//! ```no_run
//! use hc_core::campaign::CampaignBuilder;
//! use hc_core::policy::PolicyKind;
//! use hc_core::shard::ShardedCampaignRunner;
//!
//! let spec = CampaignBuilder::new("table2")
//!     .policy(PolicyKind::Ir)
//!     .full_table2_suite() // all 409 traces, synthesized on the fly
//!     .trace_len(10_000)
//!     .build()
//!     .unwrap();
//! let outcome = ShardedCampaignRunner::new(8)
//!     .with_checkpoint("table2.ckpt")
//!     .resume(true)
//!     .run(&spec)
//!     .unwrap();
//! println!(
//!     "{} shards executed, {} resumed from disk",
//!     outcome.executed_shards.len(),
//!     outcome.resumed_shards.len()
//! );
//! ```

#[allow(unused_imports)] // `CampaignRunner` is referenced by doc links only.
use crate::campaign::CampaignRunner;
use crate::campaign::{
    decode_versioned, report_wire_version, run_grid_streaming, scenario_experiments, BaselineRun,
    CampaignCell, CampaignError, CampaignProgress, CampaignReport, CampaignSpec, ProgressHook,
};
use crate::policy::PolicyKind;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Version of the [`ShardReport`] wire schema, independent of the report and
/// spec schemas.  Bumped whenever a serialized shard field changes meaning;
/// decoders and [`CampaignReport::merge`] reject mismatched versions.
///
/// * v1 — policy × trace shards over a single machine.
/// * v2 — scenario axes: the embedded spec may carry `scenarios` and cells /
///   baselines carry their `scenario` key.
///
/// Like the spec and report schemas, shards of a single-default-scenario
/// campaign still **encode as v1** — their checkpoint files are
/// byte-identical to pre-scenario runs, so existing checkpoint directories
/// keep resuming.  Decoders accept both versions.
pub const SHARD_SCHEMA_VERSION: u32 = 2;

/// The legacy shard wire version still emitted for single-default-scenario
/// campaigns (see [`SHARD_SCHEMA_VERSION`]).
pub const LEGACY_SHARD_SCHEMA_VERSION: u32 = 1;

/// The shard wire version for a spec: legacy v1 while the scenario axis is
/// unused, v2 otherwise.
fn shard_wire_version(spec: &CampaignSpec) -> u32 {
    if spec.is_single_default_scenario() {
        LEGACY_SHARD_SCHEMA_VERSION
    } else {
        SHARD_SCHEMA_VERSION
    }
}

/// One deterministic slice of a campaign's trace rows.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignShard {
    spec: CampaignSpec,
    shard_count: usize,
    shard_index: usize,
}

impl CampaignShard {
    /// Shard `shard_index` of a `shard_count`-way partition of `spec`.
    pub fn new(
        spec: CampaignSpec,
        shard_count: usize,
        shard_index: usize,
    ) -> Result<CampaignShard, CampaignError> {
        if shard_count == 0 {
            return Err(CampaignError::ZeroShardCount);
        }
        if shard_index >= shard_count {
            return Err(CampaignError::ShardIndexOutOfRange {
                index: shard_index,
                count: shard_count,
            });
        }
        spec.validate()?;
        Ok(CampaignShard {
            spec,
            shard_count,
            shard_index,
        })
    }

    /// The full `shard_count`-way partition of `spec`, in shard order.
    /// Shards beyond the trace count are valid but own no rows.
    pub fn plan(
        spec: &CampaignSpec,
        shard_count: usize,
    ) -> Result<Vec<CampaignShard>, CampaignError> {
        if shard_count == 0 {
            return Err(CampaignError::ZeroShardCount);
        }
        spec.validate()?;
        Ok((0..shard_count)
            .map(|shard_index| CampaignShard {
                spec: spec.clone(),
                shard_count,
                shard_index,
            })
            .collect())
    }

    /// The campaign spec this shard slices.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Total shards in the partition.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// This shard's index within the partition.
    pub fn shard_index(&self) -> usize {
        self.shard_index
    }

    /// The spec trace rows this shard owns: every `i` with
    /// `i % shard_count == shard_index`, ascending.
    pub fn trace_indices(&self) -> Vec<usize> {
        (self.shard_index..self.spec.traces.len())
            .step_by(self.shard_count)
            .collect()
    }

    /// Number of policy × trace × scenario cells this shard will simulate.
    pub fn cell_count(&self) -> usize {
        self.trace_indices().len() * self.spec.policies.len() * self.spec.scenarios.len()
    }

    /// Execute this shard through the streaming grid engine.
    pub fn run(&self) -> Result<ShardReport, CampaignError> {
        self.run_with_progress(None)
    }

    /// [`CampaignShard::run`] with an optional progress hook.  The hook sees
    /// *shard-local* cell counts; [`ShardedCampaignRunner`] remaps them to
    /// campaign-global counts.
    pub fn run_with_progress(
        &self,
        progress: Option<&ProgressHook>,
    ) -> Result<ShardReport, CampaignError> {
        let scenarios = scenario_experiments(&self.spec)?;
        let indices = self.trace_indices();
        let generation_count = AtomicUsize::new(0);
        let grid = run_grid_streaming(
            &scenarios,
            &indices,
            |&i| {
                generation_count.fetch_add(1, Ordering::Relaxed);
                Cow::Owned(self.spec.traces[i].generate(self.spec.trace_len))
            },
            &self.spec.policies,
            self.spec.warmup_runs,
            self.spec.include_baseline,
            progress,
        );
        let baseline_runs = grid.baseline_runs;
        let (baselines, cells) = grid.into_flat_parts();
        Ok(ShardReport {
            schema_version: shard_wire_version(&self.spec),
            shard_index: self.shard_index,
            shard_count: self.shard_count,
            spec: self.spec.clone(),
            trace_indices: indices,
            baselines,
            cells,
            baseline_runs,
            trace_generations: generation_count.load(Ordering::Relaxed),
        })
    }
}

/// The serializable result of one shard's execution — a mergeable,
/// checkpointable slice of a [`CampaignReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard wire-schema version ([`SHARD_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// This shard's index within the partition.
    pub shard_index: usize,
    /// Total shards in the partition.
    pub shard_count: usize,
    /// The full campaign spec (identical across all shards of a partition).
    pub spec: CampaignSpec,
    /// The spec trace rows this shard covered, ascending.
    pub trace_indices: Vec<usize>,
    /// One baseline per covered row (empty when the spec disabled baselines).
    pub baselines: Vec<BaselineRun>,
    /// This shard's policy × trace cells, trace-major in `trace_indices`
    /// order.
    pub cells: Vec<CampaignCell>,
    /// Monolithic baseline simulations this shard executed.
    pub baseline_runs: usize,
    /// Trace syntheses this shard performed (one per covered row).
    pub trace_generations: usize,
}

impl ShardReport {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Decode from JSON (legacy v1 or scenario-aware v2), checking the shard
    /// schema version first.
    pub fn from_json(text: &str) -> Result<ShardReport, CampaignError> {
        let value = decode_versioned(text, &[LEGACY_SHARD_SCHEMA_VERSION, SHARD_SCHEMA_VERSION])?;
        Deserialize::from_value(&value).map_err(|e| CampaignError::Decode(e.to_string()))
    }

    /// Whether this shard has baselines for its rows.
    fn baseline_needed(&self) -> bool {
        self.spec.include_baseline || self.spec.policies.contains(&PolicyKind::Baseline)
    }

    /// Structural self-consistency: right row/cell/baseline counts, indices
    /// in range and canonical for `(shard_index, shard_count)`.
    fn check(&self) -> Result<(), CampaignError> {
        let malformed = |reason: String| CampaignError::MalformedShard {
            index: self.shard_index,
            reason,
        };
        if self.shard_index >= self.shard_count {
            return Err(CampaignError::ShardIndexOutOfRange {
                index: self.shard_index,
                count: self.shard_count,
            });
        }
        let expected: Vec<usize> = (self.shard_index..self.spec.traces.len())
            .step_by(self.shard_count)
            .collect();
        if self.trace_indices != expected {
            return Err(malformed(format!(
                "rows {:?} are not the canonical partition slice {:?}",
                self.trace_indices, expected
            )));
        }
        let rows = self.trace_indices.len();
        let scenarios = self.spec.scenarios.len();
        if self.cells.len() != rows * scenarios * self.spec.policies.len() {
            return Err(malformed(format!(
                "{} cells for {} rows × {} scenarios × {} policies",
                self.cells.len(),
                rows,
                scenarios,
                self.spec.policies.len()
            )));
        }
        let expected_baselines = if self.baseline_needed() {
            rows * scenarios
        } else {
            0
        };
        if self.baselines.len() != expected_baselines {
            return Err(malformed(format!(
                "{} baselines for {} rows × {} scenarios",
                self.baselines.len(),
                rows,
                scenarios
            )));
        }
        Ok(())
    }
}

impl CampaignReport {
    /// Merge a complete set of [`ShardReport`]s back into the unsharded
    /// report.
    ///
    /// Accepts the shards **in any order** and for **any shard count**; the
    /// merged report is byte-identical (as JSON) to what
    /// [`CampaignRunner::run`] produces on the same spec, because rows are
    /// reassembled in spec order and the instrumentation counters sum to the
    /// unsharded values (each row is generated and baselined exactly once
    /// across the whole partition).
    ///
    /// Fails with a typed error when the set is inconsistent: mixed schema
    /// versions ([`CampaignError::UnsupportedSchemaVersion`]), disagreeing
    /// specs or shard counts ([`CampaignError::ShardSetMismatch`]), a row
    /// claimed twice ([`CampaignError::ShardOverlap`]), uncovered rows
    /// ([`CampaignError::IncompleteShardSet`]) or corrupt payloads
    /// ([`CampaignError::MalformedShard`]).
    ///
    /// [`CampaignRunner::run`]: crate::campaign::CampaignRunner::run
    pub fn merge(shards: &[ShardReport]) -> Result<CampaignReport, CampaignError> {
        let first = shards.first().ok_or(CampaignError::NoShards)?;
        for shard in shards {
            if shard.schema_version != LEGACY_SHARD_SCHEMA_VERSION
                && shard.schema_version != SHARD_SCHEMA_VERSION
            {
                return Err(CampaignError::UnsupportedSchemaVersion {
                    found: shard.schema_version,
                    supported: SHARD_SCHEMA_VERSION,
                });
            }
            if shard.schema_version != first.schema_version {
                return Err(CampaignError::ShardSetMismatch(format!(
                    "shard {} was written as schema v{}, shard {} as v{}",
                    shard.shard_index,
                    shard.schema_version,
                    first.shard_index,
                    first.schema_version
                )));
            }
            if shard.shard_count != first.shard_count {
                return Err(CampaignError::ShardSetMismatch(format!(
                    "shard {} claims {} total shards, shard {} claims {}",
                    shard.shard_index, shard.shard_count, first.shard_index, first.shard_count
                )));
            }
            if shard.spec != first.spec {
                return Err(CampaignError::ShardSetMismatch(format!(
                    "shard {} was run against a different spec than shard {}",
                    shard.shard_index, first.shard_index
                )));
            }
            shard.check()?;
        }

        // Row index -> (shard, position of the row within the shard).
        let n_rows = first.spec.traces.len();
        let mut owner: Vec<Option<(&ShardReport, usize)>> = vec![None; n_rows];
        for shard in shards {
            for (pos, &row) in shard.trace_indices.iter().enumerate() {
                if owner[row].is_some() {
                    return Err(CampaignError::ShardOverlap { trace_index: row });
                }
                owner[row] = Some((shard, pos));
            }
        }
        if let Some(missing) = owner.iter().position(Option::is_none) {
            return Err(CampaignError::IncompleteShardSet {
                missing_trace_index: missing,
            });
        }

        // Per-row strides: each row carries one baseline and `policies`
        // cells per scenario, scenario-major within the row.
        let scenarios = first.spec.scenarios.len();
        let row_cells = first.spec.policies.len() * scenarios;
        let baseline_needed = first.baseline_needed();
        let mut baselines = Vec::with_capacity(if baseline_needed {
            n_rows * scenarios
        } else {
            0
        });
        let mut cells = Vec::with_capacity(n_rows * row_cells);
        for slot in &owner {
            let (shard, pos) = slot.expect("coverage checked above");
            if baseline_needed {
                baselines
                    .extend_from_slice(&shard.baselines[pos * scenarios..(pos + 1) * scenarios]);
            }
            cells.extend_from_slice(&shard.cells[pos * row_cells..(pos + 1) * row_cells]);
        }

        Ok(CampaignReport {
            schema_version: report_wire_version(&first.spec),
            name: first.spec.name.clone(),
            spec: first.spec.clone(),
            baselines,
            cells,
            baseline_runs: shards.iter().map(|s| s.baseline_runs).sum(),
            trace_generations: shards.iter().map(|s| s.trace_generations).sum(),
        })
    }
}

/// The checkpoint manifest written next to the shard files, so a resumed run
/// can refuse a directory that belongs to a different campaign before
/// touching any shard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CheckpointManifest {
    schema_version: u32,
    shard_count: usize,
    spec: CampaignSpec,
}

/// Name of the manifest file inside a checkpoint directory.
const MANIFEST_FILE: &str = "campaign.json";

/// File name for one shard's checkpoint.
fn shard_file_name(index: usize) -> String {
    format!("shard_{index:04}.json")
}

/// What a sharded run did: the merged report plus which shards were actually
/// simulated and which were loaded from the checkpoint directory.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRunOutcome {
    /// The merged, unsharded-equivalent report.
    pub report: CampaignReport,
    /// Shard indices that were executed this run, ascending.
    pub executed_shards: Vec<usize>,
    /// Shard indices restored from checkpoint files, ascending.
    pub resumed_shards: Vec<usize>,
}

/// Drives a whole shard partition — sequentially over shards, with the
/// streaming parallel fan-out *inside* each shard — with optional
/// checkpointing and resume.
#[derive(Clone)]
pub struct ShardedCampaignRunner {
    shard_count: usize,
    checkpoint: Option<PathBuf>,
    resume: bool,
    progress: Option<ProgressHook>,
}

impl std::fmt::Debug for ShardedCampaignRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCampaignRunner")
            .field("shard_count", &self.shard_count)
            .field("checkpoint", &self.checkpoint)
            .field("resume", &self.resume)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

impl ShardedCampaignRunner {
    /// A runner splitting campaigns into `shard_count` shards, with no
    /// checkpointing.
    pub fn new(shard_count: usize) -> ShardedCampaignRunner {
        ShardedCampaignRunner {
            shard_count,
            checkpoint: None,
            resume: false,
            progress: None,
        }
    }

    /// Write every completed shard to `dir` (created on demand), making the
    /// run checkpointable.
    pub fn with_checkpoint(mut self, dir: impl Into<PathBuf>) -> ShardedCampaignRunner {
        self.checkpoint = Some(dir.into());
        self
    }

    /// On `true`, load (and skip re-running) every shard whose checkpoint
    /// file exists and still matches the spec.  Requires a checkpoint
    /// directory.
    pub fn resume(mut self, resume: bool) -> ShardedCampaignRunner {
        self.resume = resume;
        self
    }

    /// Attach a progress hook; it observes campaign-global cell counts
    /// (resumed shards' cells are not replayed through the hook).
    pub fn with_progress(
        mut self,
        hook: impl Fn(&CampaignProgress) + Send + Sync + 'static,
    ) -> ShardedCampaignRunner {
        self.progress = Some(Arc::new(hook));
        self
    }

    /// Execute (or resume) the partition and merge the shards.
    pub fn run(&self, spec: &CampaignSpec) -> Result<ShardedRunOutcome, CampaignError> {
        let shards = CampaignShard::plan(spec, self.shard_count)?;
        if let Some(dir) = &self.checkpoint {
            self.prepare_checkpoint_dir(dir, spec)?;
        }

        // Remap shard-local progress to campaign-global cell counts; resumed
        // shards advance the counter without firing the hook per cell.
        let total_cells = spec.cell_count();
        let completed = Arc::new(AtomicUsize::new(0));
        let global_hook: Option<ProgressHook> = self.progress.clone().map(|user| {
            let completed = Arc::clone(&completed);
            Arc::new(move |p: &CampaignProgress| {
                user(&CampaignProgress {
                    completed_cells: completed.fetch_add(1, Ordering::Relaxed) + 1,
                    total_cells,
                    policy: p.policy.clone(),
                    trace: p.trace.clone(),
                    scenario: p.scenario.clone(),
                })
            }) as ProgressHook
        });

        let mut reports = Vec::with_capacity(shards.len());
        let mut executed_shards = Vec::new();
        let mut resumed_shards = Vec::new();
        for shard in &shards {
            if let Some(report) = self.try_resume_shard(shard)? {
                completed.fetch_add(shard.cell_count(), Ordering::Relaxed);
                resumed_shards.push(shard.shard_index());
                reports.push(report);
                continue;
            }
            let report = shard.run_with_progress(global_hook.as_ref())?;
            if let Some(dir) = &self.checkpoint {
                write_checkpoint_file(
                    &dir.join(shard_file_name(shard.shard_index())),
                    &report.to_json(),
                )?;
            }
            executed_shards.push(shard.shard_index());
            reports.push(report);
        }

        Ok(ShardedRunOutcome {
            report: CampaignReport::merge(&reports)?,
            executed_shards,
            resumed_shards,
        })
    }

    /// Create the checkpoint directory and reconcile its manifest: a resumed
    /// run refuses a directory whose manifest belongs to a different
    /// campaign or partition; a fresh run overwrites it.
    fn prepare_checkpoint_dir(&self, dir: &Path, spec: &CampaignSpec) -> Result<(), CampaignError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| CampaignError::Checkpoint(format!("create {}: {e}", dir.display())))?;
        let manifest_path = dir.join(MANIFEST_FILE);
        let manifest = CheckpointManifest {
            schema_version: shard_wire_version(spec),
            shard_count: self.shard_count,
            spec: spec.clone(),
        };
        if self.resume {
            if let Ok(text) = std::fs::read_to_string(&manifest_path) {
                // An undecodable manifest is refused like a foreign one (and
                // with the file named, so the failure is actionable) — unlike
                // corrupt *shard* files, whose loss only costs a re-run, a
                // damaged manifest means the directory can't be trusted.
                let found: CheckpointManifest =
                    decode_versioned(&text, &[LEGACY_SHARD_SCHEMA_VERSION, SHARD_SCHEMA_VERSION])
                        .and_then(|value| {
                            Deserialize::from_value(&value)
                                .map_err(|e| CampaignError::Decode(e.to_string()))
                        })
                        .map_err(|e| {
                            CampaignError::Checkpoint(format!(
                                "unreadable manifest {}: {e}; delete it to start over",
                                manifest_path.display()
                            ))
                        })?;
                if found != manifest {
                    return Err(CampaignError::Checkpoint(format!(
                        "{} belongs to a different campaign or shard count; \
                         refusing to resume over it",
                        dir.display()
                    )));
                }
                return Ok(());
            }
        }
        write_checkpoint_file(&manifest_path, &serde::json::to_string_pretty(&manifest))
    }

    /// Load one shard's checkpoint file if resuming and the file still
    /// matches this shard.  An unreadable, corrupt or mismatched file is
    /// treated as absent (the shard re-runs and the file is overwritten).
    fn try_resume_shard(
        &self,
        shard: &CampaignShard,
    ) -> Result<Option<ShardReport>, CampaignError> {
        if !self.resume {
            return Ok(None);
        }
        let Some(dir) = &self.checkpoint else {
            return Err(CampaignError::Checkpoint(
                "resume requested without a checkpoint directory".to_string(),
            ));
        };
        let path = dir.join(shard_file_name(shard.shard_index()));
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Ok(None);
        };
        let Ok(report) = ShardReport::from_json(&text) else {
            return Ok(None);
        };
        let matches = report.shard_index == shard.shard_index()
            && report.shard_count == shard.shard_count()
            && report.spec == *shard.spec()
            && report.check().is_ok();
        Ok(matches.then_some(report))
    }
}

/// Write a checkpoint file through a temporary sibling + rename, so a crash
/// mid-write never leaves a truncated JSON file a later resume would trip
/// over.
fn write_checkpoint_file(path: &Path, contents: &str) -> Result<(), CampaignError> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, contents)
        .map_err(|e| CampaignError::Checkpoint(format!("write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| CampaignError::Checkpoint(format!("rename to {}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignBuilder;
    use hc_trace::SpecBenchmark;

    fn spec(n_traces: usize) -> CampaignSpec {
        let mut b = CampaignBuilder::new("shard-unit").policy(PolicyKind::P888);
        for benchmark in SpecBenchmark::ALL.into_iter().take(n_traces) {
            b = b.spec(benchmark);
        }
        b.trace_len(600).build().unwrap()
    }

    #[test]
    fn plan_partitions_rows_disjointly_and_completely() {
        let spec = spec(7);
        for count in 1..=9 {
            let shards = CampaignShard::plan(&spec, count).unwrap();
            assert_eq!(shards.len(), count);
            let mut seen = vec![false; spec.traces.len()];
            for shard in &shards {
                for i in shard.trace_indices() {
                    assert!(!seen[i], "row {i} assigned twice at count {count}");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "uncovered row at count {count}");
        }
    }

    #[test]
    fn round_robin_balances_shards() {
        let spec = spec(7);
        let shards = CampaignShard::plan(&spec, 3).unwrap();
        let sizes: Vec<usize> = shards.iter().map(|s| s.trace_indices().len()).collect();
        assert_eq!(sizes, vec![3, 2, 2]);
    }

    #[test]
    fn zero_shards_and_bad_indices_are_typed_errors() {
        let spec = spec(3);
        assert_eq!(
            CampaignShard::plan(&spec, 0).unwrap_err(),
            CampaignError::ZeroShardCount
        );
        assert_eq!(
            CampaignShard::new(spec, 2, 2).unwrap_err(),
            CampaignError::ShardIndexOutOfRange { index: 2, count: 2 }
        );
    }

    #[test]
    fn shard_report_round_trips_through_json() {
        let shard = CampaignShard::new(spec(3), 2, 1).unwrap();
        let report = shard.run().unwrap();
        assert_eq!(report.trace_indices, vec![1]);
        let decoded = ShardReport::from_json(&report.to_json()).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn merge_rejects_incomplete_and_overlapping_sets() {
        let spec = spec(4);
        let shards = CampaignShard::plan(&spec, 2).unwrap();
        let a = shards[0].run().unwrap();
        let b = shards[1].run().unwrap();
        assert_eq!(
            CampaignReport::merge(std::slice::from_ref(&a)).unwrap_err(),
            CampaignError::IncompleteShardSet {
                missing_trace_index: 1
            }
        );
        assert_eq!(
            CampaignReport::merge(&[a.clone(), b.clone(), b.clone()]).unwrap_err(),
            CampaignError::ShardOverlap { trace_index: 1 }
        );
        assert_eq!(
            CampaignReport::merge(&[]).unwrap_err(),
            CampaignError::NoShards
        );
        let mut wrong_version = a;
        wrong_version.schema_version = SHARD_SCHEMA_VERSION + 1;
        assert_eq!(
            CampaignReport::merge(&[wrong_version, b]).unwrap_err(),
            CampaignError::UnsupportedSchemaVersion {
                found: SHARD_SCHEMA_VERSION + 1,
                supported: SHARD_SCHEMA_VERSION,
            }
        );
    }

    #[test]
    fn merge_rejects_mixed_specs_and_shard_counts() {
        let a = CampaignShard::new(spec(2), 2, 0).unwrap().run().unwrap();
        let b = CampaignShard::new(spec(2), 3, 1).unwrap().run().unwrap();
        assert!(matches!(
            CampaignReport::merge(&[a.clone(), b]).unwrap_err(),
            CampaignError::ShardSetMismatch(_)
        ));
        let mut other = spec(2);
        other.trace_len = 700;
        let c = CampaignShard::new(other, 2, 1).unwrap().run().unwrap();
        assert!(matches!(
            CampaignReport::merge(&[a, c]).unwrap_err(),
            CampaignError::ShardSetMismatch(_)
        ));
    }

    #[test]
    fn merge_rejects_corrupt_payloads() {
        let spec = spec(3);
        let shards = CampaignShard::plan(&spec, 2).unwrap();
        let mut a = shards[0].run().unwrap();
        let b = shards[1].run().unwrap();
        a.cells.pop();
        assert!(matches!(
            CampaignReport::merge(&[a, b]).unwrap_err(),
            CampaignError::MalformedShard { index: 0, .. }
        ));
    }

    #[test]
    fn empty_shards_merge_cleanly() {
        // More shards than rows: the tail shards own nothing but still
        // participate in the merge.
        let spec = spec(2);
        let shards = CampaignShard::plan(&spec, 5).unwrap();
        let reports: Vec<ShardReport> = shards.iter().map(|s| s.run().unwrap()).collect();
        assert_eq!(reports[4].trace_indices.len(), 0);
        let merged = CampaignReport::merge(&reports).unwrap();
        assert_eq!(merged.cells.len(), 2);
        assert_eq!(merged.trace_generations, 2);
    }
}
