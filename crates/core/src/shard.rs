//! Sharded, resumable execution of large campaigns.
//!
//! A [`CampaignShard`] is a **deterministic partition** of a
//! [`CampaignSpec`]'s trace rows: shard `k` of `N` owns every row `i` with
//! `i % N == k` (round-robin, so the Table 2 categories spread evenly over
//! shards instead of one shard getting all of `mm`).  Policies are *not*
//! partitioned — a shard runs every policy column over its rows, which keeps
//! the per-trace baseline memoization intact: sharding never re-simulates a
//! baseline.
//!
//! Each shard runs through the same streaming grid engine as
//! [`CampaignRunner`]: workers synthesize one trace at a time from its
//! selector and drop it after the row's cells finish, so even the full
//! 409-trace suite peaks at O(worker threads) traces in memory.
//!
//! The output of a shard is a serializable [`ShardReport`];
//! [`CampaignReport::merge`] reassembles any complete set of shards —
//! **any shard count, presented in any order** — into a report that is
//! byte-identical to the unsharded [`CampaignRunner::run`] JSON
//! (`tests/shard_merge.rs` proves this).  Merging checks schema versions,
//! spec equality, row overlap and row coverage, and rejects inconsistent
//! sets with typed [`CampaignError`]s instead of silently joining cells to
//! the wrong baselines.
//!
//! [`ShardedCampaignRunner`] drives a whole partition and adds
//! **checkpoint/resume**: with a checkpoint directory configured, every
//! completed shard is written to `shard_NNNN.json` next to a `campaign.json`
//! manifest, and a resumed run loads (and skips) every shard whose file
//! still matches the spec.
//!
//! ```no_run
//! use hc_core::campaign::CampaignBuilder;
//! use hc_core::policy::PolicyKind;
//! use hc_core::shard::ShardedCampaignRunner;
//!
//! let spec = CampaignBuilder::new("table2")
//!     .policy(PolicyKind::Ir)
//!     .full_table2_suite() // all 409 traces, synthesized on the fly
//!     .trace_len(10_000)
//!     .build()
//!     .unwrap();
//! let outcome = ShardedCampaignRunner::new(8)
//!     .with_checkpoint("table2.ckpt")
//!     .resume(true)
//!     .run(&spec)
//!     .unwrap();
//! println!(
//!     "{} shards executed, {} resumed from disk",
//!     outcome.executed_shards.len(),
//!     outcome.resumed_shards.len()
//! );
//! ```

use crate::cache::{CellCache, CostModel};
#[allow(unused_imports)] // `CampaignRunner` is referenced by doc links only.
use crate::campaign::CampaignRunner;
use crate::campaign::{
    decode_versioned, make_row_trace, report_wire_version, resolve_batch, resolve_row_docs,
    run_grid_streaming, scenario_experiments, BaselineRun, CampaignCell, CampaignError,
    CampaignProgress, CampaignReport, CampaignSpec, GridCache, ProgressHook,
};
use crate::policy::PolicyKind;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Version of the [`ShardReport`] wire schema, independent of the report and
/// spec schemas.  Bumped whenever a serialized shard field changes meaning;
/// decoders and [`CampaignReport::merge`] reject mismatched versions.
///
/// * v1 — policy × trace shards over a single machine.
/// * v2 — scenario axes: the embedded spec may carry `scenarios` and cells /
///   baselines carry their `scenario` key.
/// * v3 — cost-balanced partitions: the shard carries a `plan` naming the
///   partition strategy and the full row assignment (round-robin stopped
///   being the only possible partition).
///
/// Like the spec and report schemas, the *newest* version is only emitted
/// when its feature is used: shards of a round-robin partition keep encoding
/// as v1 (single default scenario) or v2 (scenario axes) with no `plan`
/// field — their checkpoint files are byte-identical to pre-plan runs, so
/// existing checkpoint directories keep resuming.  v3 is emitted exactly
/// when the partition is cost-balanced.  Decoders accept all three.
pub const SHARD_SCHEMA_VERSION: u32 = 3;

/// The legacy shard wire version still emitted for single-default-scenario
/// round-robin campaigns (see [`SHARD_SCHEMA_VERSION`]).
pub const LEGACY_SHARD_SCHEMA_VERSION: u32 = 1;

/// The shard wire version emitted for scenario-axis round-robin campaigns
/// (see [`SHARD_SCHEMA_VERSION`]).
pub const SCENARIO_SHARD_SCHEMA_VERSION: u32 = 2;

/// The shard wire version for a (spec, plan) pair: v3 once the partition is
/// cost-balanced, otherwise legacy v1 while the scenario axis is unused and
/// v2 beyond.
pub(crate) fn shard_wire_version(spec: &CampaignSpec, plan: &ShardPlan) -> u32 {
    match plan.strategy() {
        ShardStrategy::CostBalanced => SHARD_SCHEMA_VERSION,
        ShardStrategy::RoundRobin if spec.is_single_default_scenario() => {
            LEGACY_SHARD_SCHEMA_VERSION
        }
        ShardStrategy::RoundRobin => SCENARIO_SHARD_SCHEMA_VERSION,
    }
}

/// How a [`ShardPlan`] assigned rows to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStrategy {
    /// The legacy deterministic partition: shard `k` of `N` owns every row
    /// `i` with `i % N == k`.
    RoundRobin,
    /// LPT (longest-processing-time-first) greedy bin packing over per-row
    /// cost estimates from a [`CostModel`]: rows are taken in descending
    /// cost order and each goes to the currently least-loaded shard, so one
    /// known-slow trace can no longer straggle a whole shard set.
    CostBalanced,
}

impl ShardStrategy {
    fn wire_name(&self) -> &'static str {
        match self {
            ShardStrategy::RoundRobin => "round_robin",
            ShardStrategy::CostBalanced => "cost_balanced",
        }
    }
}

/// A complete, validated assignment of a campaign's trace rows to shards.
///
/// Plans are value objects shared by every [`CampaignShard`] of a partition
/// (and embedded in v3 [`ShardReport`]s and checkpoint manifests, so a
/// resumed run re-executes **the same partition** even if cost observations
/// have changed since the plan was made).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlan {
    strategy: ShardStrategy,
    /// `assignments[k]` = the ascending spec row indices shard `k` owns.
    assignments: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// The legacy round-robin partition of `n_rows` rows into `shard_count`
    /// shards.
    pub fn round_robin(n_rows: usize, shard_count: usize) -> Result<ShardPlan, CampaignError> {
        if shard_count == 0 {
            return Err(CampaignError::ZeroShardCount);
        }
        Ok(ShardPlan {
            strategy: ShardStrategy::RoundRobin,
            assignments: (0..shard_count)
                .map(|k| (k..n_rows).step_by(shard_count).collect())
                .collect(),
        })
    }

    /// An LPT partition of rows with the given cost estimates.
    ///
    /// When every row costs the same — the shape a [`CostModel`] with no
    /// observations produces — LPT with stable tie-breaking assigns row `i`
    /// to shard `i % N`, i.e. exactly the round-robin partition; the plan is
    /// then **canonicalised** to [`ShardStrategy::RoundRobin`] so the wire
    /// format (and every golden byte) of uncached runs is unchanged.
    pub fn cost_balanced(costs: &[u64], shard_count: usize) -> Result<ShardPlan, CampaignError> {
        if shard_count == 0 {
            return Err(CampaignError::ZeroShardCount);
        }
        // LPT: rows in descending cost order (stable, so equal costs keep
        // spec order), each to the least-loaded shard (ties to the lowest
        // shard index).
        let mut order: Vec<usize> = (0..costs.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(costs[i]));
        let mut loads = vec![0u128; shard_count];
        let mut assignments = vec![Vec::new(); shard_count];
        for row in order {
            let k = loads
                .iter()
                .enumerate()
                .min_by_key(|&(k, &load)| (load, k))
                .map(|(k, _)| k)
                .expect("shard_count > 0");
            loads[k] += costs[row] as u128;
            assignments[k].push(row);
        }
        for rows in &mut assignments {
            rows.sort_unstable();
        }
        let round_robin = ShardPlan::round_robin(costs.len(), shard_count)?;
        if assignments == round_robin.assignments {
            return Ok(round_robin);
        }
        Ok(ShardPlan {
            strategy: ShardStrategy::CostBalanced,
            assignments,
        })
    }

    /// Plan a partition of `spec` with per-row costs from `model` —
    /// the planner behind [`ShardedCampaignRunner`].
    pub fn for_spec(
        spec: &CampaignSpec,
        shard_count: usize,
        model: &CostModel<'_>,
    ) -> Result<ShardPlan, CampaignError> {
        spec.validate()?;
        ShardPlan::cost_balanced(&model.row_costs(spec), shard_count)
    }

    /// The partition strategy.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// Total shards in the partition.
    pub fn shard_count(&self) -> usize {
        self.assignments.len()
    }

    /// The ascending spec row indices shard `shard_index` owns.
    pub fn rows(&self, shard_index: usize) -> &[usize] {
        &self.assignments[shard_index]
    }

    /// The estimated per-shard work under `costs`, for balance diagnostics.
    pub fn shard_loads(&self, costs: &[u64]) -> Vec<u128> {
        self.assignments
            .iter()
            .map(|rows| rows.iter().map(|&r| costs[r] as u128).sum())
            .collect()
    }

    /// Structural validity: every row index in `0..n_rows` appears in
    /// exactly one shard, ascending within its shard.
    pub(crate) fn validate(&self, n_rows: usize) -> Result<(), String> {
        let mut seen = vec![false; n_rows];
        for rows in &self.assignments {
            if !rows.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("shard rows {rows:?} are not strictly ascending"));
            }
            for &row in rows {
                if row >= n_rows {
                    return Err(format!("row {row} out of range for {n_rows} rows"));
                }
                if seen[row] {
                    return Err(format!("row {row} assigned to more than one shard"));
                }
                seen[row] = true;
            }
        }
        match seen.iter().position(|&s| !s) {
            Some(missing) => Err(format!("row {missing} is not assigned to any shard")),
            None => Ok(()),
        }
    }
}

impl Serialize for ShardPlan {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            (
                "strategy".to_string(),
                serde::Value::Str(self.strategy.wire_name().to_string()),
            ),
            (
                "assignments".to_string(),
                Serialize::to_value(&self.assignments),
            ),
        ])
    }
}

impl Deserialize for ShardPlan {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for struct ShardPlan"))?;
        let strategy: String = serde::de_field(m, "strategy")?;
        let strategy = match strategy.as_str() {
            "round_robin" => ShardStrategy::RoundRobin,
            "cost_balanced" => ShardStrategy::CostBalanced,
            other => {
                return Err(serde::Error::custom(format!(
                    "unknown shard plan strategy `{other}`"
                )))
            }
        };
        Ok(ShardPlan {
            strategy,
            assignments: serde::de_field(m, "assignments")?,
        })
    }
}

/// One deterministic slice of a campaign's trace rows, per its partition's
/// [`ShardPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignShard {
    spec: CampaignSpec,
    plan: Arc<ShardPlan>,
    shard_index: usize,
}

impl CampaignShard {
    /// Shard `shard_index` of a round-robin `shard_count`-way partition of
    /// `spec`.
    pub fn new(
        spec: CampaignSpec,
        shard_count: usize,
        shard_index: usize,
    ) -> Result<CampaignShard, CampaignError> {
        if shard_count == 0 {
            return Err(CampaignError::ZeroShardCount);
        }
        if shard_index >= shard_count {
            return Err(CampaignError::ShardIndexOutOfRange {
                index: shard_index,
                count: shard_count,
            });
        }
        spec.validate()?;
        let plan = Arc::new(ShardPlan::round_robin(spec.traces.len(), shard_count)?);
        Ok(CampaignShard {
            spec,
            plan,
            shard_index,
        })
    }

    /// The full round-robin `shard_count`-way partition of `spec`, in shard
    /// order.  Shards beyond the trace count are valid but own no rows.
    pub fn plan(
        spec: &CampaignSpec,
        shard_count: usize,
    ) -> Result<Vec<CampaignShard>, CampaignError> {
        spec.validate()?;
        let plan = ShardPlan::round_robin(spec.traces.len(), shard_count)?;
        Ok(CampaignShard::from_plan(spec, plan))
    }

    /// The full cost-balanced partition of `spec` under `model`, in shard
    /// order (see [`ShardPlan::cost_balanced`]).
    pub fn plan_balanced(
        spec: &CampaignSpec,
        shard_count: usize,
        model: &CostModel<'_>,
    ) -> Result<Vec<CampaignShard>, CampaignError> {
        let plan = ShardPlan::for_spec(spec, shard_count, model)?;
        Ok(CampaignShard::from_plan(spec, plan))
    }

    /// Materialize every shard of an already-validated plan.
    pub(crate) fn from_plan(spec: &CampaignSpec, plan: ShardPlan) -> Vec<CampaignShard> {
        let plan = Arc::new(plan);
        (0..plan.shard_count())
            .map(|shard_index| CampaignShard {
                spec: spec.clone(),
                plan: Arc::clone(&plan),
                shard_index,
            })
            .collect()
    }

    /// The campaign spec this shard slices.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// The partition plan this shard belongs to.
    pub fn shard_plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Total shards in the partition.
    pub fn shard_count(&self) -> usize {
        self.plan.shard_count()
    }

    /// This shard's index within the partition.
    pub fn shard_index(&self) -> usize {
        self.shard_index
    }

    /// The spec trace rows this shard owns, ascending: `i % N == k` under a
    /// round-robin plan, the LPT assignment under a cost-balanced one.
    pub fn trace_indices(&self) -> Vec<usize> {
        self.plan.rows(self.shard_index).to_vec()
    }

    /// Number of policy × trace × scenario cells this shard will simulate.
    pub fn cell_count(&self) -> usize {
        self.plan.rows(self.shard_index).len()
            * self.spec.policies.len()
            * self.spec.scenarios.len()
    }

    /// Execute this shard through the streaming grid engine.
    pub fn run(&self) -> Result<ShardReport, CampaignError> {
        self.run_with(None, None, None)
    }

    /// [`CampaignShard::run`] with an optional progress hook.  The hook sees
    /// *shard-local* cell counts; [`ShardedCampaignRunner`] remaps them to
    /// campaign-global counts.
    pub fn run_with_progress(
        &self,
        progress: Option<&ProgressHook>,
    ) -> Result<ShardReport, CampaignError> {
        self.run_with(progress, None, None)
    }

    /// [`CampaignShard::run`] with an optional progress hook, an optional
    /// [`CellCache`] memoizing every simulated cell, and an optional batch
    /// width (lockstep simulator lanes per worker; `None` sizes it
    /// automatically).  Shard reports stay byte-identical with or without
    /// the cache and at every batch width.
    pub fn run_with(
        &self,
        progress: Option<&ProgressHook>,
        cache: Option<&CellCache>,
        batch: Option<usize>,
    ) -> Result<ShardReport, CampaignError> {
        let scenarios = scenario_experiments(&self.spec)?;
        let indices = self.trace_indices();
        // Cache identities resolve through the same helper the campaign
        // runner uses, so shard cache keys match whole-campaign keys
        // (content-addressed for `File` rows).
        let row_docs = resolve_row_docs(&self.spec.traces)?;
        let generation_count = AtomicUsize::new(0);
        let row_doc = |&i: &usize| row_docs[i].clone();
        let grid_cache = cache.map(|cache| GridCache::new(cache, &self.spec, &row_doc));
        let grid = run_grid_streaming(
            &scenarios,
            &indices,
            |&i| {
                generation_count.fetch_add(1, Ordering::Relaxed);
                make_row_trace(&self.spec.traces[i], self.spec.trace_len)
            },
            &self.spec.policies,
            self.spec.warmup_runs,
            self.spec.include_baseline,
            progress,
            grid_cache.as_ref(),
            resolve_batch(
                batch,
                self.spec.scenarios.len(),
                &self.spec.policies,
                self.spec.include_baseline,
            ),
        )?;
        let baseline_runs = grid.baseline_runs;
        let (baselines, cells) = grid.into_flat_parts();
        Ok(ShardReport {
            schema_version: shard_wire_version(&self.spec, &self.plan),
            shard_index: self.shard_index,
            shard_count: self.plan.shard_count(),
            spec: self.spec.clone(),
            plan: (*self.plan).clone(),
            trace_indices: indices,
            baselines,
            cells,
            baseline_runs,
            trace_generations: generation_count.load(Ordering::Relaxed),
        })
    }
}

/// The serializable result of one shard's execution — a mergeable,
/// checkpointable slice of a [`CampaignReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Shard wire-schema version ([`SHARD_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// This shard's index within the partition.
    pub shard_index: usize,
    /// Total shards in the partition.
    pub shard_count: usize,
    /// The full campaign spec (identical across all shards of a partition).
    pub spec: CampaignSpec,
    /// The partition plan (identical across all shards).  Serialized only
    /// in v3 documents; v1/v2 documents decode to the implied round-robin
    /// plan.
    pub plan: ShardPlan,
    /// The spec trace rows this shard covered, ascending.
    pub trace_indices: Vec<usize>,
    /// One baseline per covered row (empty when the spec disabled baselines).
    pub baselines: Vec<BaselineRun>,
    /// This shard's policy × trace cells, trace-major in `trace_indices`
    /// order.
    pub cells: Vec<CampaignCell>,
    /// Monolithic baseline simulations this shard executed.
    pub baseline_runs: usize,
    /// Trace syntheses this shard performed (one per covered row).
    pub trace_generations: usize,
}

impl Serialize for ShardReport {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            (
                "schema_version".to_string(),
                serde::Value::UInt(self.schema_version as u64),
            ),
            (
                "shard_index".to_string(),
                Serialize::to_value(&self.shard_index),
            ),
            (
                "shard_count".to_string(),
                Serialize::to_value(&self.shard_count),
            ),
            ("spec".to_string(), Serialize::to_value(&self.spec)),
        ];
        if self.schema_version >= SHARD_SCHEMA_VERSION {
            // The `plan` field exists only in the v3 wire shape; round-robin
            // shards keep the exact pre-plan bytes.
            fields.push(("plan".to_string(), Serialize::to_value(&self.plan)));
        }
        fields.extend([
            (
                "trace_indices".to_string(),
                Serialize::to_value(&self.trace_indices),
            ),
            (
                "baselines".to_string(),
                Serialize::to_value(&self.baselines),
            ),
            ("cells".to_string(), Serialize::to_value(&self.cells)),
            (
                "baseline_runs".to_string(),
                Serialize::to_value(&self.baseline_runs),
            ),
            (
                "trace_generations".to_string(),
                Serialize::to_value(&self.trace_generations),
            ),
        ]);
        serde::Value::Map(fields)
    }
}

impl Deserialize for ShardReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for struct ShardReport"))?;
        let schema_version: u32 = serde::de_field(m, "schema_version")?;
        let shard_count: usize = serde::de_field(m, "shard_count")?;
        let spec: CampaignSpec = serde::de_field(m, "spec")?;
        let plan = if schema_version >= SHARD_SCHEMA_VERSION {
            serde::de_field(m, "plan")?
        } else {
            // v1/v2 shards predate explicit plans: round-robin was the only
            // partition, so the plan is fully implied by the shard count.
            ShardPlan::round_robin(spec.traces.len(), shard_count.max(1))
                .map_err(|e| serde::Error::custom(e.to_string()))?
        };
        Ok(ShardReport {
            schema_version,
            shard_index: serde::de_field(m, "shard_index")?,
            shard_count,
            spec,
            plan,
            trace_indices: serde::de_field(m, "trace_indices")?,
            baselines: serde::de_field(m, "baselines")?,
            cells: serde::de_field(m, "cells")?,
            baseline_runs: serde::de_field(m, "baseline_runs")?,
            trace_generations: serde::de_field(m, "trace_generations")?,
        })
    }
}

impl ShardReport {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Decode from JSON (legacy v1/v2 or plan-aware v3), checking the shard
    /// schema version first.
    pub fn from_json(text: &str) -> Result<ShardReport, CampaignError> {
        let value = decode_versioned(
            text,
            &[
                LEGACY_SHARD_SCHEMA_VERSION,
                SCENARIO_SHARD_SCHEMA_VERSION,
                SHARD_SCHEMA_VERSION,
            ],
        )?;
        Deserialize::from_value(&value).map_err(|e| CampaignError::Decode(e.to_string()))
    }

    /// Whether this shard has baselines for its rows.
    fn baseline_needed(&self) -> bool {
        self.spec.include_baseline || self.spec.policies.contains(&PolicyKind::Baseline)
    }

    /// Structural self-consistency: right row/cell/baseline counts, a valid
    /// partition plan, and rows matching the plan's slice for
    /// `(shard_index, shard_count)`.
    pub(crate) fn check(&self) -> Result<(), CampaignError> {
        let malformed = |reason: String| CampaignError::MalformedShard {
            index: self.shard_index,
            reason,
        };
        if self.shard_index >= self.shard_count {
            return Err(CampaignError::ShardIndexOutOfRange {
                index: self.shard_index,
                count: self.shard_count,
            });
        }
        if self.plan.shard_count() != self.shard_count {
            return Err(malformed(format!(
                "plan covers {} shards but the shard claims {}",
                self.plan.shard_count(),
                self.shard_count
            )));
        }
        self.plan
            .validate(self.spec.traces.len())
            .map_err(|reason| malformed(format!("invalid partition plan: {reason}")))?;
        let expected = self.plan.rows(self.shard_index);
        if self.trace_indices != expected {
            return Err(malformed(format!(
                "rows {:?} are not the plan's partition slice {:?}",
                self.trace_indices, expected
            )));
        }
        let rows = self.trace_indices.len();
        let scenarios = self.spec.scenarios.len();
        if self.cells.len() != rows * scenarios * self.spec.policies.len() {
            return Err(malformed(format!(
                "{} cells for {} rows × {} scenarios × {} policies",
                self.cells.len(),
                rows,
                scenarios,
                self.spec.policies.len()
            )));
        }
        let expected_baselines = if self.baseline_needed() {
            rows * scenarios
        } else {
            0
        };
        if self.baselines.len() != expected_baselines {
            return Err(malformed(format!(
                "{} baselines for {} rows × {} scenarios",
                self.baselines.len(),
                rows,
                scenarios
            )));
        }
        Ok(())
    }
}

impl CampaignReport {
    /// Merge a complete set of [`ShardReport`]s back into the unsharded
    /// report.
    ///
    /// Accepts the shards **in any order** and for **any shard count**; the
    /// merged report is byte-identical (as JSON) to what
    /// [`CampaignRunner::run`] produces on the same spec, because rows are
    /// reassembled in spec order and the instrumentation counters sum to the
    /// unsharded values (each row is generated and baselined exactly once
    /// across the whole partition).
    ///
    /// Fails with a typed error when the set is inconsistent: mixed schema
    /// versions ([`CampaignError::UnsupportedSchemaVersion`]), disagreeing
    /// specs or shard counts ([`CampaignError::ShardSetMismatch`]), a row
    /// claimed twice ([`CampaignError::ShardOverlap`]), uncovered rows
    /// ([`CampaignError::IncompleteShardSet`]) or corrupt payloads
    /// ([`CampaignError::MalformedShard`]).
    ///
    /// [`CampaignRunner::run`]: crate::campaign::CampaignRunner::run
    pub fn merge(shards: &[ShardReport]) -> Result<CampaignReport, CampaignError> {
        let first = shards.first().ok_or(CampaignError::NoShards)?;
        for shard in shards {
            if shard.schema_version != LEGACY_SHARD_SCHEMA_VERSION
                && shard.schema_version != SCENARIO_SHARD_SCHEMA_VERSION
                && shard.schema_version != SHARD_SCHEMA_VERSION
            {
                return Err(CampaignError::UnsupportedSchemaVersion {
                    found: shard.schema_version,
                    supported: SHARD_SCHEMA_VERSION,
                });
            }
            if shard.schema_version != first.schema_version {
                return Err(CampaignError::ShardSetMismatch(format!(
                    "shard {} was written as schema v{}, shard {} as v{}",
                    shard.shard_index,
                    shard.schema_version,
                    first.shard_index,
                    first.schema_version
                )));
            }
            if shard.shard_count != first.shard_count {
                return Err(CampaignError::ShardSetMismatch(format!(
                    "shard {} claims {} total shards, shard {} claims {}",
                    shard.shard_index, shard.shard_count, first.shard_index, first.shard_count
                )));
            }
            if shard.spec != first.spec {
                return Err(CampaignError::ShardSetMismatch(format!(
                    "shard {} was run against a different spec than shard {}",
                    shard.shard_index, first.shard_index
                )));
            }
            if shard.plan != first.plan {
                return Err(CampaignError::ShardSetMismatch(format!(
                    "shard {} was run under a different partition plan than shard {}",
                    shard.shard_index, first.shard_index
                )));
            }
            shard.check()?;
        }

        // Row index -> (shard, position of the row within the shard).
        let n_rows = first.spec.traces.len();
        let mut owner: Vec<Option<(&ShardReport, usize)>> = vec![None; n_rows];
        for shard in shards {
            for (pos, &row) in shard.trace_indices.iter().enumerate() {
                if owner[row].is_some() {
                    return Err(CampaignError::ShardOverlap { trace_index: row });
                }
                owner[row] = Some((shard, pos));
            }
        }
        if let Some(missing) = owner.iter().position(Option::is_none) {
            return Err(CampaignError::IncompleteShardSet {
                missing_trace_index: missing,
            });
        }

        // Per-row strides: each row carries one baseline and `policies`
        // cells per scenario, scenario-major within the row.
        let scenarios = first.spec.scenarios.len();
        let row_cells = first.spec.policies.len() * scenarios;
        let baseline_needed = first.baseline_needed();
        let mut baselines = Vec::with_capacity(if baseline_needed {
            n_rows * scenarios
        } else {
            0
        });
        let mut cells = Vec::with_capacity(n_rows * row_cells);
        for slot in &owner {
            let (shard, pos) = slot.expect("coverage checked above");
            if baseline_needed {
                baselines
                    .extend_from_slice(&shard.baselines[pos * scenarios..(pos + 1) * scenarios]);
            }
            cells.extend_from_slice(&shard.cells[pos * row_cells..(pos + 1) * row_cells]);
        }

        Ok(CampaignReport {
            schema_version: report_wire_version(&first.spec),
            name: first.spec.name.clone(),
            spec: first.spec.clone(),
            baselines,
            cells,
            baseline_runs: shards.iter().map(|s| s.baseline_runs).sum(),
            trace_generations: shards.iter().map(|s| s.trace_generations).sum(),
        })
    }
}

/// The checkpoint manifest written next to the shard files, so a resumed run
/// can refuse a directory that belongs to a different campaign before
/// touching any shard.  The manifest also **pins the partition plan**: a
/// resumed run re-executes the manifest's plan even if cost observations
/// have changed since (re-planning mid-campaign would orphan completed
/// shard files).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CheckpointManifest {
    pub(crate) schema_version: u32,
    pub(crate) shard_count: usize,
    pub(crate) spec: CampaignSpec,
    pub(crate) plan: ShardPlan,
}

impl CheckpointManifest {
    /// Decode a manifest document, accepting every shard wire version.
    pub(crate) fn from_json(text: &str) -> Result<CheckpointManifest, CampaignError> {
        let value = decode_versioned(
            text,
            &[
                LEGACY_SHARD_SCHEMA_VERSION,
                SCENARIO_SHARD_SCHEMA_VERSION,
                SHARD_SCHEMA_VERSION,
            ],
        )?;
        Deserialize::from_value(&value).map_err(|e| CampaignError::Decode(e.to_string()))
    }
}

impl Serialize for CheckpointManifest {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            (
                "schema_version".to_string(),
                serde::Value::UInt(self.schema_version as u64),
            ),
            (
                "shard_count".to_string(),
                Serialize::to_value(&self.shard_count),
            ),
            ("spec".to_string(), Serialize::to_value(&self.spec)),
        ];
        if self.schema_version >= SHARD_SCHEMA_VERSION {
            fields.push(("plan".to_string(), Serialize::to_value(&self.plan)));
        }
        serde::Value::Map(fields)
    }
}

impl Deserialize for CheckpointManifest {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for struct CheckpointManifest"))?;
        let schema_version: u32 = serde::de_field(m, "schema_version")?;
        let shard_count: usize = serde::de_field(m, "shard_count")?;
        let spec: CampaignSpec = serde::de_field(m, "spec")?;
        let plan = if schema_version >= SHARD_SCHEMA_VERSION {
            serde::de_field(m, "plan")?
        } else {
            ShardPlan::round_robin(spec.traces.len(), shard_count.max(1))
                .map_err(|e| serde::Error::custom(e.to_string()))?
        };
        Ok(CheckpointManifest {
            schema_version,
            shard_count,
            spec,
            plan,
        })
    }
}

/// Name of the manifest file inside a checkpoint directory.
pub(crate) const MANIFEST_FILE: &str = "campaign.json";

/// File name for one shard's checkpoint.
pub(crate) fn shard_file_name(index: usize) -> String {
    format!("shard_{index:04}.json")
}

/// What a sharded run did: the merged report plus which shards were actually
/// simulated and which were loaded from the checkpoint directory.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRunOutcome {
    /// The merged, unsharded-equivalent report.
    pub report: CampaignReport,
    /// Shard indices that were executed this run, ascending.
    pub executed_shards: Vec<usize>,
    /// Shard indices restored from checkpoint files, ascending.
    pub resumed_shards: Vec<usize>,
}

/// Drives a whole shard partition — sequentially over shards, with the
/// streaming parallel fan-out *inside* each shard — with optional
/// checkpointing and resume.
///
/// Partitioning is **cost-model-driven**: the runner plans with
/// [`ShardPlan::for_spec`], so with a [`CellCache`] attached
/// ([`ShardedCampaignRunner::with_cache`]) rows are LPT-packed by their
/// recorded simulation times, and without one (no observations) the plan
/// canonicalises to the legacy round-robin partition — wire formats,
/// checkpoint bytes and golden snapshots of uncached runs are unchanged.
#[derive(Clone)]
pub struct ShardedCampaignRunner {
    shard_count: usize,
    checkpoint: Option<PathBuf>,
    resume: bool,
    progress: Option<ProgressHook>,
    cache: Option<Arc<CellCache>>,
    batch: Option<usize>,
}

impl std::fmt::Debug for ShardedCampaignRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCampaignRunner")
            .field("shard_count", &self.shard_count)
            .field("checkpoint", &self.checkpoint)
            .field("resume", &self.resume)
            .field("progress", &self.progress.is_some())
            .field(
                "cache",
                &self.cache.as_ref().map(|c| c.root().to_path_buf()),
            )
            .field("batch", &self.batch)
            .finish()
    }
}

impl ShardedCampaignRunner {
    /// A runner splitting campaigns into `shard_count` shards, with no
    /// checkpointing.
    pub fn new(shard_count: usize) -> ShardedCampaignRunner {
        ShardedCampaignRunner {
            shard_count,
            checkpoint: None,
            resume: false,
            progress: None,
            cache: None,
            batch: None,
        }
    }

    /// Set the lockstep simulator lane count each worker batches cells
    /// over (`1` forces the scalar engine; unset sizes it automatically).
    /// Shard and merged reports are byte-identical at every width.
    pub fn with_batch(mut self, lanes: usize) -> ShardedCampaignRunner {
        self.batch = Some(lanes);
        self
    }

    /// Memoize every simulated cell through a [`CellCache`] and let its
    /// recorded timings drive the cost-balanced partition (see
    /// [`ShardPlan::cost_balanced`]).  Reports stay byte-identical with or
    /// without the cache.
    pub fn with_cache(mut self, cache: Arc<CellCache>) -> ShardedCampaignRunner {
        self.cache = Some(cache);
        self
    }

    /// Write every completed shard to `dir` (created on demand), making the
    /// run checkpointable.
    pub fn with_checkpoint(mut self, dir: impl Into<PathBuf>) -> ShardedCampaignRunner {
        self.checkpoint = Some(dir.into());
        self
    }

    /// On `true`, load (and skip re-running) every shard whose checkpoint
    /// file exists and still matches the spec.  Requires a checkpoint
    /// directory.
    pub fn resume(mut self, resume: bool) -> ShardedCampaignRunner {
        self.resume = resume;
        self
    }

    /// Attach a progress hook; it observes campaign-global cell counts
    /// (resumed shards' cells are not replayed through the hook).
    pub fn with_progress(
        mut self,
        hook: impl Fn(&CampaignProgress) + Send + Sync + 'static,
    ) -> ShardedCampaignRunner {
        self.progress = Some(Arc::new(hook));
        self
    }

    /// Execute (or resume) the partition and merge the shards.
    pub fn run(&self, spec: &CampaignSpec) -> Result<ShardedRunOutcome, CampaignError> {
        // Plan with observed costs when a cache is attached (uniform costs —
        // and therefore the canonical round-robin plan — otherwise).
        let model = match self.cache.as_deref() {
            Some(cache) => CostModel::observed(cache),
            None => CostModel::uniform(),
        };
        let mut plan = ShardPlan::for_spec(spec, self.shard_count, &model)?;
        if let Some(dir) = &self.checkpoint {
            // A resumed directory pins its original plan: completed shard
            // files were cut along it, so re-planning would orphan them.
            plan = self.prepare_checkpoint_dir(dir, spec, plan)?;
        }
        let shards = CampaignShard::from_plan(spec, plan);

        // Remap shard-local progress to campaign-global cell counts; resumed
        // shards advance the counter without firing the hook per cell.  The
        // panic isolation inside the grid engine is per shard, so a
        // run-level disable flag lives out here: a user hook that panics is
        // disabled for the rest of the *run*, not re-tried on every shard.
        let total_cells = spec.cell_count();
        let completed = Arc::new(AtomicUsize::new(0));
        let global_hook: Option<ProgressHook> = self.progress.clone().map(|user| {
            let completed = Arc::clone(&completed);
            let disabled = Arc::new(AtomicBool::new(false));
            Arc::new(move |p: &CampaignProgress| {
                let global = CampaignProgress {
                    completed_cells: completed.fetch_add(1, Ordering::Relaxed) + 1,
                    total_cells,
                    policy: p.policy.clone(),
                    trace: p.trace.clone(),
                    scenario: p.scenario.clone(),
                };
                if disabled.load(Ordering::Relaxed) {
                    return;
                }
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| user(&global))).is_err()
                {
                    disabled.store(true, Ordering::Relaxed);
                }
            }) as ProgressHook
        });

        let mut reports = Vec::with_capacity(shards.len());
        let mut executed_shards = Vec::new();
        let mut resumed_shards = Vec::new();
        for shard in &shards {
            if let Some(report) = self.try_resume_shard(shard)? {
                completed.fetch_add(shard.cell_count(), Ordering::Relaxed);
                resumed_shards.push(shard.shard_index());
                reports.push(report);
                continue;
            }
            let report = shard.run_with(global_hook.as_ref(), self.cache.as_deref(), self.batch)?;
            if let Some(dir) = &self.checkpoint {
                write_checkpoint_file(
                    &dir.join(shard_file_name(shard.shard_index())),
                    &report.to_json(),
                )?;
            }
            executed_shards.push(shard.shard_index());
            reports.push(report);
        }

        Ok(ShardedRunOutcome {
            report: CampaignReport::merge(&reports)?,
            executed_shards,
            resumed_shards,
        })
    }

    /// Create the checkpoint directory and reconcile its manifest: a resumed
    /// run refuses a directory whose manifest belongs to a different
    /// campaign or shard count, **adopts** a matching manifest's partition
    /// plan (completed shard files were cut along it), and a fresh run
    /// overwrites the manifest with the newly planned partition.
    fn prepare_checkpoint_dir(
        &self,
        dir: &Path,
        spec: &CampaignSpec,
        planned: ShardPlan,
    ) -> Result<ShardPlan, CampaignError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| CampaignError::Checkpoint(format!("create {}: {e}", dir.display())))?;
        let manifest_path = dir.join(MANIFEST_FILE);
        if self.resume {
            if let Ok(text) = std::fs::read_to_string(&manifest_path) {
                // An undecodable manifest is refused like a foreign one (and
                // with the file named, so the failure is actionable) — unlike
                // corrupt *shard* files, whose loss only costs a re-run, a
                // damaged manifest means the directory can't be trusted.
                let found = CheckpointManifest::from_json(&text).map_err(|e| {
                    CampaignError::Checkpoint(format!(
                        "unreadable manifest {}: {e}; delete it to start over",
                        manifest_path.display()
                    ))
                })?;
                if found.spec != *spec || found.shard_count != self.shard_count {
                    return Err(CampaignError::Checkpoint(format!(
                        "{} belongs to a different campaign or shard count; \
                         refusing to resume over it",
                        dir.display()
                    )));
                }
                found.plan.validate(spec.traces.len()).map_err(|reason| {
                    CampaignError::Checkpoint(format!(
                        "manifest {} carries an invalid partition plan ({reason}); \
                         delete the directory to start over",
                        manifest_path.display()
                    ))
                })?;
                return Ok(found.plan);
            }
        }
        let manifest = CheckpointManifest {
            schema_version: shard_wire_version(spec, &planned),
            shard_count: self.shard_count,
            spec: spec.clone(),
            plan: planned,
        };
        write_checkpoint_file(&manifest_path, &serde::json::to_string_pretty(&manifest))?;
        Ok(manifest.plan)
    }

    /// Load one shard's checkpoint file if resuming and the file still
    /// matches this shard.  An unreadable, corrupt or mismatched file is
    /// treated as absent (the shard re-runs and the file is overwritten).
    fn try_resume_shard(
        &self,
        shard: &CampaignShard,
    ) -> Result<Option<ShardReport>, CampaignError> {
        if !self.resume {
            return Ok(None);
        }
        let Some(dir) = &self.checkpoint else {
            return Err(CampaignError::Checkpoint(
                "resume requested without a checkpoint directory".to_string(),
            ));
        };
        let path = dir.join(shard_file_name(shard.shard_index()));
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Ok(None);
        };
        let Ok(report) = ShardReport::from_json(&text) else {
            return Ok(None);
        };
        let matches = report.shard_index == shard.shard_index()
            && report.shard_count == shard.shard_count()
            && report.spec == *shard.spec()
            && report.plan == *shard.shard_plan()
            && report.check().is_ok();
        Ok(matches.then_some(report))
    }
}

/// Write a checkpoint file through a temporary sibling + rename, so a crash
/// mid-write never leaves a truncated JSON file a later resume would trip
/// over.
pub(crate) fn write_checkpoint_file(path: &Path, contents: &str) -> Result<(), CampaignError> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, contents)
        .map_err(|e| CampaignError::Checkpoint(format!("write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| CampaignError::Checkpoint(format!("rename to {}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignBuilder;
    use hc_trace::SpecBenchmark;

    fn spec(n_traces: usize) -> CampaignSpec {
        let mut b = CampaignBuilder::new("shard-unit").policy(PolicyKind::P888);
        for benchmark in SpecBenchmark::ALL.into_iter().take(n_traces) {
            b = b.spec(benchmark);
        }
        b.trace_len(600).build().unwrap()
    }

    #[test]
    fn plan_partitions_rows_disjointly_and_completely() {
        let spec = spec(7);
        for count in 1..=9 {
            let shards = CampaignShard::plan(&spec, count).unwrap();
            assert_eq!(shards.len(), count);
            let mut seen = vec![false; spec.traces.len()];
            for shard in &shards {
                for i in shard.trace_indices() {
                    assert!(!seen[i], "row {i} assigned twice at count {count}");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "uncovered row at count {count}");
        }
    }

    #[test]
    fn round_robin_balances_shards() {
        let spec = spec(7);
        let shards = CampaignShard::plan(&spec, 3).unwrap();
        let sizes: Vec<usize> = shards.iter().map(|s| s.trace_indices().len()).collect();
        assert_eq!(sizes, vec![3, 2, 2]);
    }

    #[test]
    fn sharded_hooks_that_panic_are_disabled_for_the_whole_run() {
        // The disable must be run-scoped, not shard-scoped: a hook that
        // panics on its first call is never invoked again, even though the
        // engine restarts per shard.
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&calls);
        let outcome = ShardedCampaignRunner::new(3)
            .with_progress(move |_| {
                seen.fetch_add(1, Ordering::Relaxed);
                panic!("user hook exploded");
            })
            .run(&spec(6))
            .expect("run survives a panicking hook");
        assert_eq!(outcome.report.cells.len(), 6);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            1,
            "hook disabled after its first panic, across all shards"
        );
    }

    #[test]
    fn lpt_balances_skewed_costs_better_than_round_robin() {
        // One heavy row (row 0) plus light rows: round-robin piles the
        // heavy row onto shard 0 together with rows 3 and 6, while LPT
        // isolates it.
        let costs = [1_000u64, 10, 10, 10, 10, 10, 10];
        let balanced = ShardPlan::cost_balanced(&costs, 3).unwrap();
        assert_eq!(balanced.strategy(), ShardStrategy::CostBalanced);
        let round_robin = ShardPlan::round_robin(costs.len(), 3).unwrap();
        let max = |plan: &ShardPlan| plan.shard_loads(&costs).into_iter().max().unwrap();
        assert_eq!(max(&round_robin), 1_020, "rr stacks rows 0+3+6");
        assert_eq!(
            max(&balanced),
            1_000,
            "LPT gives the heavy row its own shard"
        );
    }

    #[test]
    fn uniform_costs_canonicalise_to_round_robin() {
        // The wire-compatibility cornerstone: an unobserved cost model
        // prices every row identically, and the LPT plan for identical
        // costs *is* the round-robin plan — strategy included, so the
        // legacy v1/v2 bytes keep being emitted.
        for (n_rows, shard_count) in [(7, 3), (12, 5), (1, 4), (0, 2)] {
            let balanced = ShardPlan::cost_balanced(&vec![17; n_rows], shard_count).unwrap();
            let round_robin = ShardPlan::round_robin(n_rows, shard_count).unwrap();
            assert_eq!(
                balanced, round_robin,
                "{n_rows} rows × {shard_count} shards"
            );
            assert_eq!(balanced.strategy(), ShardStrategy::RoundRobin);
        }
    }

    #[test]
    fn shard_plans_round_trip_through_json() {
        let plan = ShardPlan::cost_balanced(&[100, 1, 1, 1, 50, 2], 3).unwrap();
        assert_eq!(plan.strategy(), ShardStrategy::CostBalanced);
        let json = serde::json::to_string_pretty(&plan);
        let back: ShardPlan = serde::json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn legacy_shards_decode_to_the_implied_round_robin_plan() {
        // A single-default-scenario round-robin shard still writes the v1
        // wire shape with no `plan` field; decoding re-derives the implied
        // round-robin plan from the shard count.
        let report = CampaignShard::new(spec(3), 2, 1).unwrap().run().unwrap();
        assert_eq!(report.schema_version, LEGACY_SHARD_SCHEMA_VERSION);
        let json = report.to_json();
        assert!(
            !json.contains("\"plan\""),
            "round-robin shards keep the pre-plan bytes"
        );
        let decoded = ShardReport::from_json(&json).unwrap();
        assert_eq!(
            decoded.plan,
            ShardPlan::round_robin(3, 2).unwrap(),
            "the implied partition is round-robin"
        );
        assert_eq!(decoded, report);
    }

    #[test]
    fn merge_rejects_mixed_partition_plans() {
        // Both shards are structurally valid, but shard 1 claims it was cut
        // along a different (here: differently-labelled) plan: merging them
        // could interleave rows from incompatible partitions.
        let spec = spec(4);
        let shards = CampaignShard::plan(&spec, 2).unwrap();
        let a = shards[0].run().unwrap();
        let mut b = shards[1].run().unwrap();
        b.plan = ShardPlan {
            strategy: ShardStrategy::CostBalanced,
            assignments: b.plan.assignments.clone(),
        };
        assert!(matches!(
            CampaignReport::merge(&[a, b]).unwrap_err(),
            CampaignError::ShardSetMismatch(_)
        ));
    }

    #[test]
    fn zero_shards_and_bad_indices_are_typed_errors() {
        let spec = spec(3);
        assert_eq!(
            CampaignShard::plan(&spec, 0).unwrap_err(),
            CampaignError::ZeroShardCount
        );
        assert_eq!(
            CampaignShard::new(spec, 2, 2).unwrap_err(),
            CampaignError::ShardIndexOutOfRange { index: 2, count: 2 }
        );
    }

    #[test]
    fn shard_report_round_trips_through_json() {
        let shard = CampaignShard::new(spec(3), 2, 1).unwrap();
        let report = shard.run().unwrap();
        assert_eq!(report.trace_indices, vec![1]);
        let decoded = ShardReport::from_json(&report.to_json()).unwrap();
        assert_eq!(decoded, report);
    }

    #[test]
    fn merge_rejects_incomplete_and_overlapping_sets() {
        let spec = spec(4);
        let shards = CampaignShard::plan(&spec, 2).unwrap();
        let a = shards[0].run().unwrap();
        let b = shards[1].run().unwrap();
        assert_eq!(
            CampaignReport::merge(std::slice::from_ref(&a)).unwrap_err(),
            CampaignError::IncompleteShardSet {
                missing_trace_index: 1
            }
        );
        assert_eq!(
            CampaignReport::merge(&[a.clone(), b.clone(), b.clone()]).unwrap_err(),
            CampaignError::ShardOverlap { trace_index: 1 }
        );
        assert_eq!(
            CampaignReport::merge(&[]).unwrap_err(),
            CampaignError::NoShards
        );
        let mut wrong_version = a;
        wrong_version.schema_version = SHARD_SCHEMA_VERSION + 1;
        assert_eq!(
            CampaignReport::merge(&[wrong_version, b]).unwrap_err(),
            CampaignError::UnsupportedSchemaVersion {
                found: SHARD_SCHEMA_VERSION + 1,
                supported: SHARD_SCHEMA_VERSION,
            }
        );
    }

    #[test]
    fn merge_rejects_mixed_specs_and_shard_counts() {
        let a = CampaignShard::new(spec(2), 2, 0).unwrap().run().unwrap();
        let b = CampaignShard::new(spec(2), 3, 1).unwrap().run().unwrap();
        assert!(matches!(
            CampaignReport::merge(&[a.clone(), b]).unwrap_err(),
            CampaignError::ShardSetMismatch(_)
        ));
        let mut other = spec(2);
        other.trace_len = 700;
        let c = CampaignShard::new(other, 2, 1).unwrap().run().unwrap();
        assert!(matches!(
            CampaignReport::merge(&[a, c]).unwrap_err(),
            CampaignError::ShardSetMismatch(_)
        ));
    }

    #[test]
    fn merge_rejects_corrupt_payloads() {
        let spec = spec(3);
        let shards = CampaignShard::plan(&spec, 2).unwrap();
        let mut a = shards[0].run().unwrap();
        let b = shards[1].run().unwrap();
        a.cells.pop();
        assert!(matches!(
            CampaignReport::merge(&[a, b]).unwrap_err(),
            CampaignError::MalformedShard { index: 0, .. }
        ));
    }

    #[test]
    fn empty_shards_merge_cleanly() {
        // More shards than rows: the tail shards own nothing but still
        // participate in the merge.
        let spec = spec(2);
        let shards = CampaignShard::plan(&spec, 5).unwrap();
        let reports: Vec<ShardReport> = shards.iter().map(|s| s.run().unwrap()).collect();
        assert_eq!(reports[4].trace_indices.len(), 0);
        let merged = CampaignReport::merge(&reports).unwrap();
        assert_eq!(merged.cells.len(), 2);
        assert_eq!(merged.trace_generations, 2);
    }
}
