//! Scenario axes: one overlay naming *the machine under test*.
//!
//! The campaign plane of PRs 1–3 swept policy × trace against one hard-coded
//! machine.  A [`ScenarioSpec`] promotes every hardware knob the paper's
//! results hinge on to a first-class, serializable sweep axis:
//!
//! * **machine** — the full [`hc_sim::SimConfig`]: helper datapath width
//!   (§2.1's 8 bits), helper clock ratio (§2.2's 2×), window/MOB/cache
//!   geometry, latencies;
//! * **predictors** — the [`hc_predictors::PredictorConfig`] extracted from
//!   the predictors' previously scattered constructor arguments: width-table
//!   entries and confidence bits (§3.2), carry/copy table sizes;
//! * **power** — the [`hc_power::PowerParams`] of the Wattch-like model,
//!   including the 8-bit datapath energy discount (§3.1).
//!
//! A `CampaignSpec` then declares policy × trace × scenario; each scenario is
//! validated by its *owning* crate's typed validator
//! ([`hc_sim::SimConfig::validate`], [`PredictorConfig::validate`],
//! [`PowerParams::validate`]) before anything simulates.

use hc_power::{PowerParams, PowerParamsError};
use hc_predictors::{PredictorConfig, PredictorConfigError};
use hc_sim::{ConfigError, SimConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Name of the implicit scenario legacy (pre-scenario) campaigns run under.
pub const DEFAULT_SCENARIO_NAME: &str = "default";

/// Why a [`ScenarioSpec`] was rejected by [`ScenarioSpec::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The scenario has an empty name; report cells are keyed by it.
    EmptyName,
    /// The machine configuration was rejected by `hc_sim`.
    Machine(ConfigError),
    /// The predictor configuration was rejected by `hc_predictors`.
    Predictors(PredictorConfigError),
    /// The power parameters were rejected by `hc_power`.
    Power(PowerParamsError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::EmptyName => write!(f, "scenario name must be non-empty"),
            ScenarioError::Machine(e) => write!(f, "invalid scenario machine: {e}"),
            ScenarioError::Predictors(e) => write!(f, "invalid scenario predictors: {e}"),
            ScenarioError::Power(e) => write!(f, "invalid scenario power parameters: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::EmptyName => None,
            ScenarioError::Machine(e) => Some(e),
            ScenarioError::Predictors(e) => Some(e),
            ScenarioError::Power(e) => Some(e),
        }
    }
}

/// One machine-under-test overlay: a named (machine, predictors, power)
/// triple a campaign crosses with its policies and traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Stable report key for this scenario's cells and baselines.
    pub name: String,
    /// Simulator configuration (the baseline is derived from it by removing
    /// the helper cluster, exactly as before).
    pub machine: SimConfig,
    /// Predictor table sizing for every policy built under this scenario.
    pub predictors: PredictorConfig,
    /// Power parameters used for this scenario's energy / ED² accounting.
    pub power: PowerParams,
}

impl ScenarioSpec {
    /// The paper's design point under the [`DEFAULT_SCENARIO_NAME`]: Table 1
    /// machine, 256-entry predictors with confidence, default Wattch-like
    /// energies.
    pub fn paper_default() -> ScenarioSpec {
        ScenarioSpec::overlay_of(SimConfig::paper_baseline())
    }

    /// The overlay a legacy single-machine campaign runs under: the given
    /// machine with paper-default predictors and power, named
    /// [`DEFAULT_SCENARIO_NAME`].  Decoding a v1 campaign spec produces
    /// exactly this from its `config` field.
    pub fn overlay_of(machine: SimConfig) -> ScenarioSpec {
        ScenarioSpec {
            name: DEFAULT_SCENARIO_NAME.to_string(),
            machine,
            predictors: PredictorConfig::paper_default(),
            power: PowerParams::default(),
        }
    }

    /// A named scenario starting from the paper's design point; chain the
    /// `with_*` setters to overlay the axes under study.
    pub fn named(name: impl Into<String>) -> ScenarioSpec {
        ScenarioSpec {
            name: name.into(),
            ..ScenarioSpec::paper_default()
        }
    }

    /// Replace the machine configuration.
    pub fn with_machine(mut self, machine: SimConfig) -> ScenarioSpec {
        self.machine = machine;
        self
    }

    /// Replace the predictor sizing.
    pub fn with_predictors(mut self, predictors: PredictorConfig) -> ScenarioSpec {
        self.predictors = predictors;
        self
    }

    /// Replace the power parameters.
    pub fn with_power(mut self, power: PowerParams) -> ScenarioSpec {
        self.power = power;
        self
    }

    /// Whether this scenario is exactly the overlay a legacy (v1) campaign
    /// spec encodes: default name, paper predictors, default power — the
    /// machine is free, because v1 specs carried an arbitrary `config`.
    /// Campaigns consisting of one such scenario keep the pre-scenario wire
    /// format byte-for-byte.
    pub fn is_legacy_overlay(&self) -> bool {
        self.name == DEFAULT_SCENARIO_NAME
            && self.predictors == PredictorConfig::paper_default()
            && self.power == PowerParams::default()
    }

    /// Validate each axis with its owning crate's typed validator.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.is_empty() {
            return Err(ScenarioError::EmptyName);
        }
        self.machine.validate().map_err(ScenarioError::Machine)?;
        self.predictors
            .validate()
            .map_err(ScenarioError::Predictors)?;
        self.power.validate().map_err(ScenarioError::Power)?;
        Ok(())
    }
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_the_legacy_overlay() {
        let s = ScenarioSpec::paper_default();
        assert_eq!(s.name, DEFAULT_SCENARIO_NAME);
        assert!(s.is_legacy_overlay());
        assert!(s.validate().is_ok());
    }

    #[test]
    fn any_custom_axis_leaves_the_legacy_overlay() {
        let renamed = ScenarioSpec::named("hw16");
        assert!(!renamed.is_legacy_overlay());

        let sized =
            ScenarioSpec::paper_default().with_predictors(PredictorConfig::with_all_entries(1024));
        assert!(!sized.is_legacy_overlay());

        let power =
            ScenarioSpec::paper_default().with_power(PowerParams::with_helper_discount(2.0));
        assert!(!power.is_legacy_overlay());

        // A custom machine alone stays legacy-encodable: v1 specs carried an
        // arbitrary `config`.
        let mut machine = SimConfig::paper_baseline();
        machine.helper_clock_ratio = 4;
        assert!(ScenarioSpec::overlay_of(machine).is_legacy_overlay());
    }

    #[test]
    fn validation_delegates_to_owning_crates() {
        assert_eq!(
            ScenarioSpec::named("").validate(),
            Err(ScenarioError::EmptyName)
        );

        let mut bad_machine = ScenarioSpec::named("m");
        bad_machine.machine.helper_width_bits = 12;
        assert_eq!(
            bad_machine.validate(),
            Err(ScenarioError::Machine(
                ConfigError::UnsupportedHelperWidth { width_bits: 12 }
            ))
        );

        let mut bad_pred = ScenarioSpec::named("p");
        bad_pred.predictors.width_entries = 0;
        assert!(matches!(
            bad_pred.validate(),
            Err(ScenarioError::Predictors(_))
        ));

        let mut bad_power = ScenarioSpec::named("w");
        bad_power.power.wide_alu = -1.0;
        assert!(matches!(bad_power.validate(), Err(ScenarioError::Power(_))));

        // The error chain names the owning crate's error as the source.
        let err = bad_machine.validate().unwrap_err();
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("machine"));
    }

    #[test]
    fn scenarios_round_trip_through_json() {
        let s = ScenarioSpec::named("hw4_cr4x")
            .with_machine(SimConfig {
                helper_width_bits: 4,
                helper_clock_ratio: 4,
                ..SimConfig::paper_baseline()
            })
            .with_predictors(PredictorConfig::with_all_entries(4096))
            .with_power(PowerParams::with_helper_discount(0.5));
        let json = serde::json::to_string_pretty(&s);
        let back: ScenarioSpec = serde::json::from_str(&json).expect("decodes");
        assert_eq!(back, s);
    }
}
