//! Multi-process shard fan-out: lease-based work claiming, work-stealing
//! reassignment and a merge coordinator over one checkpoint directory.
//!
//! [`ShardedCampaignRunner`](crate::shard::ShardedCampaignRunner) executes a
//! partition's shards sequentially inside one process.  This module turns
//! the same checkpoint directory — the `campaign.json` manifest plus one
//! `shard_NNNN.json` per completed shard — into a **coordination substrate
//! for a fleet of worker processes**:
//!
//! * [`FanoutWorker`] is one worker of the fleet.  It reconciles (or, first
//!   arrival, publishes) the manifest, claims shards through **lease files**
//!   and executes each claimed shard through the ordinary streaming grid
//!   engine, writing the shard report with the existing tmp+rename
//!   checkpoint protocol.  With stealing enabled a fast worker picks up a
//!   straggler's or crashed peer's unfinished shards, steered by the
//!   recorded per-row costs of the [`CostModel`].
//! * [`ShardLease`] is the claim primitive: an exclusively-created
//!   `shard_NNNN.lease` file whose mtime is renewed by a heartbeat thread
//!   while the holder simulates.  A lease whose mtime has not moved for the
//!   staleness timeout marks a dead or stalled holder; any worker may break
//!   it and re-claim the shard.
//! * [`MergeCoordinator`] watches the directory, validates the accumulating
//!   shard set with the same typed conflict errors as
//!   [`CampaignReport::merge`], and emits a merged report **byte-identical**
//!   to the single-process run.
//!
//! ## Why duplicate execution is safe
//!
//! The claim protocol keeps duplicate work *rare* (exactly one `hard_link`
//! wins a race; stealers only break leases that look dead), but it cannot
//! make it impossible: a holder paused longer than the staleness timeout —
//! by a scheduler, a debugger, or swap death — looks exactly like a crashed
//! one, and in the worst interleaving two workers briefly simulate the same
//! shard.  That is deliberate.  A shard report is a **pure function of
//! (spec, plan, shard index)**: both workers produce byte-identical JSON,
//! both write it through tmp+rename, and whichever rename lands last
//! installs the same bytes.  Correctness never depends on mutual exclusion
//! — the leases exist only to avoid wasting simulation time.

use crate::cache::{CellCache, CostModel};
use crate::campaign::{CampaignError, CampaignReport, CampaignSpec, ProgressHook};
use crate::shard::{
    shard_file_name, shard_wire_version, write_checkpoint_file, CampaignShard, CheckpointManifest,
    ShardReport, MANIFEST_FILE,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime};

/// File name of the lease guarding one shard's execution.
pub fn lease_file_name(index: usize) -> String {
    format!("shard_{index:04}.lease")
}

/// Process-wide sequence for unique lease tmp-file names (two threads of one
/// process racing for the same shard must not collide on the tmp path).
static LEASE_TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// An exclusive, heartbeat-renewed claim on one shard of a checkpoint
/// directory.
///
/// Claiming is atomic: the claimant writes a uniquely-named temporary file
/// and `hard_link`s it to the lease path — link creation fails if the lease
/// already exists, so however many workers race, **exactly one wins**.  A
/// background heartbeat thread then renews the lease's mtime every quarter
/// of the staleness timeout; a holder that dies (or stalls) stops renewing,
/// and once the mtime is older than the timeout any other worker may break
/// the lease and claim the shard for itself.
///
/// Dropping the lease — normal completion, an error unwind, anything but
/// `SIGKILL` — stops the heartbeat and removes the lease file.  A
/// `SIGKILL`ed holder leaves the file behind; that is exactly the stale
/// lease the timeout exists to reap.
pub struct ShardLease {
    path: PathBuf,
    heartbeat_stop: Arc<(Mutex<bool>, Condvar)>,
    heartbeat: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ShardLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardLease")
            .field("path", &self.path)
            .finish()
    }
}

impl ShardLease {
    /// Try to claim shard `index` of the checkpoint directory `dir`.
    ///
    /// Returns `Ok(Some(lease))` when this caller won the claim,
    /// `Ok(None)` when another holder's lease is present **and fresh**
    /// (renewed within `timeout`).  A stale lease is broken and the claim
    /// retried once — the stale holder is presumed dead.
    ///
    /// Breaking a stale lease races benignly: two breakers both remove the
    /// stale file (one removal wins, the other no-ops) and both retry the
    /// `hard_link`, which again elects exactly one winner.
    pub fn try_claim(
        dir: &Path,
        index: usize,
        worker_id: &str,
        timeout: Duration,
    ) -> Result<Option<ShardLease>, CampaignError> {
        let path = dir.join(lease_file_name(index));
        let doc = serde::json::to_string_pretty(&serde::Value::Map(vec![
            (
                "worker".to_string(),
                serde::Value::Str(worker_id.to_string()),
            ),
            (
                "pid".to_string(),
                serde::Value::UInt(std::process::id() as u64),
            ),
        ]));
        for attempt in 0..2 {
            let tmp = dir.join(format!(
                "{}.tmp.{}.{}",
                lease_file_name(index),
                std::process::id(),
                LEASE_TMP_SEQ.fetch_add(1, Ordering::Relaxed),
            ));
            std::fs::write(&tmp, &doc)
                .map_err(|e| CampaignError::Fanout(format!("write {}: {e}", tmp.display())))?;
            match std::fs::hard_link(&tmp, &path) {
                Ok(()) => {
                    let _ = std::fs::remove_file(&tmp);
                    return Ok(Some(ShardLease::won(path, timeout)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let _ = std::fs::remove_file(&tmp);
                    // Occupied.  Dead holder?  The mtime is the heartbeat
                    // clock: unreadable or future mtimes count as fresh
                    // (never break a lease on bad evidence).
                    let stale = std::fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|mtime| SystemTime::now().duration_since(mtime).ok())
                        .is_some_and(|age| age > timeout);
                    if stale && attempt == 0 {
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                    return Ok(None);
                }
                Err(e) => {
                    let _ = std::fs::remove_file(&tmp);
                    return Err(CampaignError::Fanout(format!(
                        "claim {}: {e}",
                        path.display()
                    )));
                }
            }
        }
        Ok(None)
    }

    /// Wrap a freshly-won lease path and start its heartbeat.
    fn won(path: PathBuf, timeout: Duration) -> ShardLease {
        let interval = (timeout / 4).max(Duration::from_millis(10));
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let heartbeat = {
            let stop = Arc::clone(&stop);
            let path = path.clone();
            std::thread::spawn(move || {
                let (flag, wake) = &*stop;
                let mut stopped = flag.lock().unwrap_or_else(|e| e.into_inner());
                while !*stopped {
                    let (guard, _) = wake
                        .wait_timeout(stopped, interval)
                        .unwrap_or_else(|e| e.into_inner());
                    stopped = guard;
                    if *stopped {
                        return;
                    }
                    // Renew.  Best-effort: a vanished lease (stolen after a
                    // long stall) just stops being renewed — the shard may
                    // then run twice, which is benign (see module docs).
                    if let Ok(file) = std::fs::File::options().write(true).open(&path) {
                        let _ = file.set_modified(SystemTime::now());
                    }
                }
            })
        };
        ShardLease {
            path,
            heartbeat_stop: stop,
            heartbeat: Some(heartbeat),
        }
    }

    /// The lease file this claim holds.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Release the claim: stop the heartbeat and remove the lease file.
    /// (Equivalent to dropping the lease; provided for explicitness.)
    pub fn release(self) {}
}

impl Drop for ShardLease {
    fn drop(&mut self) {
        let (flag, wake) = &*self.heartbeat_stop;
        *flag.lock().unwrap_or_else(|e| e.into_inner()) = true;
        wake.notify_all();
        if let Some(handle) = self.heartbeat.take() {
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// What one [`FanoutWorker`] did over one [`FanoutWorker::run`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerOutcome {
    /// Shards this worker claimed, simulated and published, ascending.
    pub executed_shards: Vec<usize>,
    /// The subset of `executed_shards` that were not this worker's home
    /// shard — work stolen from stragglers or crashed peers, ascending.
    pub stolen_shards: Vec<usize>,
}

/// One worker process (or thread) of a shard fan-out fleet.
///
/// Every worker of a fleet is pointed at the same checkpoint directory and
/// the same spec; the first to arrive plans the partition and publishes the
/// `campaign.json` manifest (atomically — losers of the publish race adopt
/// the winner's plan, so the whole fleet executes **one** partition even
/// when their local cost observations differ).  Each worker then claims
/// shards through [`ShardLease`]s and executes them through the ordinary
/// streaming grid engine.
///
/// With a home shard set ([`FanoutWorker::home_shard`]) the worker claims
/// that shard first; with stealing enabled (the default) it then sweeps the
/// remaining unfinished shards — most expensive first, per the
/// [`CostModel`]'s recorded per-row costs — and claims any whose lease is
/// absent or stale.  A worker with stealing disabled executes exactly its
/// home shard: it waits (polling) while a peer's fresh lease covers that
/// shard, reclaims it if the lease goes stale, and returns once the shard's
/// report is on disk, whoever wrote it.
pub struct FanoutWorker {
    shard_count: usize,
    home_shard: Option<usize>,
    checkpoint: PathBuf,
    worker_id: String,
    lease_timeout: Duration,
    poll_interval: Duration,
    steal: bool,
    cache: Option<Arc<CellCache>>,
    batch: Option<usize>,
    progress: Option<ProgressHook>,
}

impl std::fmt::Debug for FanoutWorker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutWorker")
            .field("shard_count", &self.shard_count)
            .field("home_shard", &self.home_shard)
            .field("checkpoint", &self.checkpoint)
            .field("worker_id", &self.worker_id)
            .field("lease_timeout", &self.lease_timeout)
            .field("steal", &self.steal)
            .finish()
    }
}

impl FanoutWorker {
    /// A worker of an `shard_count`-way fan-out over `checkpoint`, with
    /// stealing enabled, a 30-second staleness timeout and a process-unique
    /// worker id.
    pub fn new(shard_count: usize, checkpoint: impl Into<PathBuf>) -> FanoutWorker {
        FanoutWorker {
            shard_count,
            home_shard: None,
            checkpoint: checkpoint.into(),
            worker_id: format!(
                "pid{}-{}",
                std::process::id(),
                LEASE_TMP_SEQ.fetch_add(1, Ordering::Relaxed)
            ),
            lease_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(200),
            steal: true,
            cache: None,
            batch: None,
            progress: None,
        }
    }

    /// The shard this worker claims first (and, stealing disabled, the only
    /// shard it executes).
    pub fn home_shard(mut self, index: usize) -> FanoutWorker {
        self.home_shard = Some(index);
        self
    }

    /// Name this worker in lease files (diagnostics only; uniqueness is not
    /// required for correctness).
    pub fn worker_id(mut self, id: impl Into<String>) -> FanoutWorker {
        self.worker_id = id.into();
        self
    }

    /// How long a lease's mtime may sit unrenewed before any worker may
    /// break it.  Heartbeats renew at a quarter of this, so the timeout
    /// must comfortably exceed scheduling jitter — not shard runtime.
    pub fn lease_timeout(mut self, timeout: Duration) -> FanoutWorker {
        self.lease_timeout = timeout;
        self
    }

    /// How often an idle worker rescans the directory for newly-stale
    /// leases or newly-complete shards.
    pub fn poll_interval(mut self, interval: Duration) -> FanoutWorker {
        self.poll_interval = interval;
        self
    }

    /// Enable or disable work-stealing (default: enabled).
    pub fn steal(mut self, steal: bool) -> FanoutWorker {
        self.steal = steal;
        self
    }

    /// Memoize simulated cells through a [`CellCache`]; its recorded
    /// timings also steer the partition plan (first arrival only) and the
    /// steal order.
    pub fn with_cache(mut self, cache: Arc<CellCache>) -> FanoutWorker {
        self.cache = Some(cache);
        self
    }

    /// Lockstep simulator lanes per grid worker (see
    /// [`CampaignShard::run_with`]).
    pub fn with_batch(mut self, lanes: usize) -> FanoutWorker {
        self.batch = Some(lanes);
        self
    }

    /// Attach a progress hook; it observes shard-local cell counts.
    pub fn with_progress(
        mut self,
        hook: impl Fn(&crate::campaign::CampaignProgress) + Send + Sync + 'static,
    ) -> FanoutWorker {
        self.progress = Some(Arc::new(hook));
        self
    }

    /// Execute this worker's share of the fan-out: reconcile the manifest,
    /// then claim-and-run shards until this worker's work is done (its home
    /// shard complete, or — stealing — every shard complete).
    pub fn run(&self, spec: &CampaignSpec) -> Result<WorkerOutcome, CampaignError> {
        if self.shard_count == 0 {
            return Err(CampaignError::ZeroShardCount);
        }
        if let Some(home) = self.home_shard {
            if home >= self.shard_count {
                return Err(CampaignError::ShardIndexOutOfRange {
                    index: home,
                    count: self.shard_count,
                });
            }
        }
        spec.validate()?;
        std::fs::create_dir_all(&self.checkpoint).map_err(|e| {
            CampaignError::Fanout(format!("create {}: {e}", self.checkpoint.display()))
        })?;
        let model = match self.cache.as_deref() {
            Some(cache) => CostModel::observed(cache),
            None => CostModel::uniform(),
        };
        let plan = self.reconcile_manifest(spec, &model)?;
        let shards = CampaignShard::from_plan(spec, plan);

        // Steal order: home shard first, then the remaining shards by
        // descending estimated load (break the biggest straggler first),
        // ties by index.
        let loads = shards[0].shard_plan().shard_loads(&model.row_costs(spec));
        let mut order: Vec<usize> = (0..self.shard_count).collect();
        order.sort_by_key(|&k| (Some(k) != self.home_shard, std::cmp::Reverse(loads[k]), k));

        let mut outcome = WorkerOutcome::default();
        loop {
            let mut pending: Vec<usize> = order
                .iter()
                .copied()
                .filter(|&k| !self.shard_complete(&shards[k]))
                .collect();
            if !self.steal {
                pending.retain(|&k| Some(k) == self.home_shard);
            }
            if pending.is_empty() {
                break;
            }
            let mut progressed = false;
            for &k in &pending {
                let Some(lease) = ShardLease::try_claim(
                    &self.checkpoint,
                    k,
                    &self.worker_id,
                    self.lease_timeout,
                )?
                else {
                    continue; // fresh lease held by a live peer
                };
                // Re-check under the lease: the previous holder may have
                // published between our scan and the claim.
                if !self.shard_complete(&shards[k]) {
                    let report = shards[k].run_with(
                        self.progress.as_ref(),
                        self.cache.as_deref(),
                        self.batch,
                    )?;
                    write_checkpoint_file(
                        &self.checkpoint.join(shard_file_name(k)),
                        &report.to_json(),
                    )?;
                    outcome.executed_shards.push(k);
                    if Some(k) != self.home_shard {
                        outcome.stolen_shards.push(k);
                    }
                }
                lease.release();
                progressed = true;
            }
            if !progressed {
                // Everything unfinished is freshly leased by live peers:
                // wait for reports to land or leases to go stale.
                std::thread::sleep(self.poll_interval);
            }
        }
        outcome.executed_shards.sort_unstable();
        outcome.stolen_shards.sort_unstable();
        Ok(outcome)
    }

    /// Adopt the directory's manifest, or plan the partition and publish
    /// one.  Publication is atomic (tmp + `hard_link`): however many
    /// workers arrive at an empty directory simultaneously, exactly one
    /// manifest wins and every other worker adopts its plan — the fleet
    /// never splits across two partitions.
    fn reconcile_manifest(
        &self,
        spec: &CampaignSpec,
        model: &CostModel<'_>,
    ) -> Result<crate::shard::ShardPlan, CampaignError> {
        let path = self.checkpoint.join(MANIFEST_FILE);
        for _ in 0..8 {
            if let Ok(text) = std::fs::read_to_string(&path) {
                let found = CheckpointManifest::from_json(&text).map_err(|e| {
                    CampaignError::Fanout(format!(
                        "unreadable manifest {}: {e}; delete the directory to start over",
                        path.display()
                    ))
                })?;
                if found.spec != *spec || found.shard_count != self.shard_count {
                    return Err(CampaignError::Fanout(format!(
                        "{} belongs to a different campaign or shard count; \
                         refusing to join it",
                        self.checkpoint.display()
                    )));
                }
                found.plan.validate(spec.traces.len()).map_err(|reason| {
                    CampaignError::Fanout(format!(
                        "manifest {} carries an invalid partition plan ({reason}); \
                         delete the directory to start over",
                        path.display()
                    ))
                })?;
                return Ok(found.plan);
            }
            let plan = crate::shard::ShardPlan::for_spec(spec, self.shard_count, model)?;
            let manifest = CheckpointManifest {
                schema_version: shard_wire_version(spec, &plan),
                shard_count: self.shard_count,
                spec: spec.clone(),
                plan,
            };
            let tmp = self.checkpoint.join(format!(
                "{MANIFEST_FILE}.tmp.{}.{}",
                std::process::id(),
                LEASE_TMP_SEQ.fetch_add(1, Ordering::Relaxed),
            ));
            std::fs::write(&tmp, serde::json::to_string_pretty(&manifest))
                .map_err(|e| CampaignError::Fanout(format!("write {}: {e}", tmp.display())))?;
            match std::fs::hard_link(&tmp, &path) {
                Ok(()) => {
                    let _ = std::fs::remove_file(&tmp);
                    return Ok(manifest.plan);
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    // Lost the publish race; adopt the winner's manifest on
                    // the next pass.
                    let _ = std::fs::remove_file(&tmp);
                }
                Err(e) => {
                    let _ = std::fs::remove_file(&tmp);
                    return Err(CampaignError::Fanout(format!(
                        "publish manifest {}: {e}",
                        path.display()
                    )));
                }
            }
        }
        Err(CampaignError::Fanout(format!(
            "manifest {} kept appearing and vanishing; giving up",
            path.display()
        )))
    }

    /// Whether `shard`'s report file exists and still belongs to this
    /// partition.  Corrupt, foreign or plan-mismatched files count as
    /// incomplete — the shard is re-claimed and the file overwritten, which
    /// is the crash-tolerant re-execution path.
    fn shard_complete(&self, shard: &CampaignShard) -> bool {
        let path = self.checkpoint.join(shard_file_name(shard.shard_index()));
        let Ok(text) = std::fs::read_to_string(&path) else {
            return false;
        };
        let Ok(report) = ShardReport::from_json(&text) else {
            return false;
        };
        report.shard_index == shard.shard_index()
            && report.shard_count == shard.shard_count()
            && report.spec == *shard.spec()
            && report.plan == *shard.shard_plan()
            && report.check().is_ok()
    }
}

/// How long [`MergeCoordinator::run`] is willing to watch the directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeWait {
    /// Merge what is on disk right now; missing shards are an error.
    NoWait,
    /// Poll until every shard file lands (workers may still be running, or
    /// not even started).
    Forever,
    /// Poll, but give up after this long.
    Timeout(Duration),
}

/// What a merge produced: the byte-identical report plus provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeOutcome {
    /// The merged report — byte-identical (as JSON) to the single-process
    /// [`CampaignRunner::run`](crate::campaign::CampaignRunner::run) on the
    /// manifest's spec.
    pub report: CampaignReport,
    /// Shards merged (the manifest's shard count).
    pub shard_count: usize,
}

/// The merge side of the fan-out: watch a checkpoint directory until its
/// shard set completes, validate it, and reassemble the single-process
/// report.
///
/// The coordinator trusts nothing it reads: the manifest must decode and
/// carry a structurally-valid plan; each shard file must decode, match the
/// manifest's spec **and plan** (a decodable shard cut along a different
/// partition — a mixed-plan directory — is refused immediately with
/// [`CampaignError::ShardSetMismatch`], even in waiting mode, because no
/// amount of waiting repairs it), and pass the same payload self-checks as
/// [`CampaignReport::merge`].  Corrupt or missing shard files, by contrast,
/// are *waitable*: a live fleet overwrites them via stale-lease reclaim.
#[derive(Debug, Clone)]
pub struct MergeCoordinator {
    checkpoint: PathBuf,
    wait: MergeWait,
    poll_interval: Duration,
}

impl MergeCoordinator {
    /// A non-waiting coordinator over `checkpoint`.
    pub fn new(checkpoint: impl Into<PathBuf>) -> MergeCoordinator {
        MergeCoordinator {
            checkpoint: checkpoint.into(),
            wait: MergeWait::NoWait,
            poll_interval: Duration::from_millis(200),
        }
    }

    /// Set the watch policy.
    pub fn wait(mut self, wait: MergeWait) -> MergeCoordinator {
        self.wait = wait;
        self
    }

    /// How often the watching coordinator rescans the directory.
    pub fn poll_interval(mut self, interval: Duration) -> MergeCoordinator {
        self.poll_interval = interval;
        self
    }

    /// Watch (per the wait policy), validate and merge.
    pub fn run(&self) -> Result<MergeOutcome, CampaignError> {
        let manifest_path = self.checkpoint.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&manifest_path).map_err(|e| {
            CampaignError::Fanout(format!(
                "no readable manifest at {}: {e}; workers write it when they start",
                manifest_path.display()
            ))
        })?;
        let manifest = CheckpointManifest::from_json(&text).map_err(|e| {
            CampaignError::Fanout(format!(
                "unreadable manifest {}: {e}; delete the directory to start over",
                manifest_path.display()
            ))
        })?;
        manifest
            .plan
            .validate(manifest.spec.traces.len())
            .map_err(|reason| {
                CampaignError::Fanout(format!(
                    "manifest {} carries an invalid partition plan ({reason})",
                    manifest_path.display()
                ))
            })?;
        if manifest.plan.shard_count() != manifest.shard_count {
            return Err(CampaignError::Fanout(format!(
                "manifest {} plan covers {} shards but claims {}",
                manifest_path.display(),
                manifest.plan.shard_count(),
                manifest.shard_count
            )));
        }
        let deadline = match self.wait {
            MergeWait::Timeout(limit) => Some(Instant::now() + limit),
            _ => None,
        };
        loop {
            let mut reports = Vec::with_capacity(manifest.shard_count);
            let mut missing = Vec::new();
            for index in 0..manifest.shard_count {
                match self.load_shard(index, &manifest)? {
                    Some(report) => reports.push(report),
                    None => missing.push(index),
                }
            }
            if missing.is_empty() {
                let report = CampaignReport::merge(&reports)?;
                return Ok(MergeOutcome {
                    report,
                    shard_count: manifest.shard_count,
                });
            }
            match self.wait {
                MergeWait::NoWait => {
                    return Err(CampaignError::Fanout(format!(
                        "{} is missing shards {missing:?}; run workers for them or \
                         merge with waiting enabled",
                        self.checkpoint.display()
                    )))
                }
                MergeWait::Forever => {}
                MergeWait::Timeout(limit) => {
                    if deadline.is_some_and(|d| Instant::now() >= d) {
                        return Err(CampaignError::Fanout(format!(
                            "timed out after {limit:?} waiting for shards {missing:?} in {}",
                            self.checkpoint.display()
                        )));
                    }
                }
            }
            std::thread::sleep(self.poll_interval);
        }
    }

    /// Load shard `index` if its file is present and belongs to the
    /// manifest's partition.  Absent/corrupt files are `None` (waitable);
    /// a decodable file from a *different* partition is a hard refusal.
    fn load_shard(
        &self,
        index: usize,
        manifest: &CheckpointManifest,
    ) -> Result<Option<ShardReport>, CampaignError> {
        let path = self.checkpoint.join(shard_file_name(index));
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Ok(None);
        };
        let Ok(report) = ShardReport::from_json(&text) else {
            return Ok(None); // corrupt: a worker will re-run and overwrite it
        };
        if report.spec != manifest.spec
            || report.plan != manifest.plan
            || report.shard_count != manifest.shard_count
            || report.shard_index != index
        {
            return Err(CampaignError::ShardSetMismatch(format!(
                "{} was cut along a different campaign or partition plan than \
                 the manifest; refusing to merge a mixed-plan directory",
                path.display()
            )));
        }
        if report.check().is_err() {
            return Ok(None); // malformed payload: waitable, like corrupt
        }
        Ok(Some(report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignBuilder;
    use crate::policy::PolicyKind;
    use hc_trace::SpecBenchmark;

    fn tmp_dir(tag: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("hc_fanout_unit_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("mkdir");
        path
    }

    fn spec(n_traces: usize) -> CampaignSpec {
        let mut b = CampaignBuilder::new("fanout-unit").policy(PolicyKind::P888);
        for benchmark in SpecBenchmark::ALL.into_iter().take(n_traces) {
            b = b.spec(benchmark);
        }
        b.trace_len(600).build().unwrap()
    }

    #[test]
    fn claims_are_exclusive_until_released() {
        let dir = tmp_dir("exclusive");
        let timeout = Duration::from_secs(60);
        let first = ShardLease::try_claim(&dir, 0, "a", timeout)
            .expect("claim")
            .expect("empty directory: first claim wins");
        assert!(
            ShardLease::try_claim(&dir, 0, "b", timeout)
                .expect("claim")
                .is_none(),
            "fresh lease must block a second claimant"
        );
        // A different shard's lease is independent.
        assert!(ShardLease::try_claim(&dir, 1, "b", timeout)
            .expect("claim")
            .is_some());
        first.release();
        assert!(
            ShardLease::try_claim(&dir, 0, "b", timeout)
                .expect("claim")
                .is_some(),
            "released lease must be claimable again"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_leases_are_broken_and_reclaimed() {
        let dir = tmp_dir("stale");
        let path = dir.join(lease_file_name(3));
        std::fs::write(&path, "{\"worker\": \"dead\"}").expect("seed lease");
        let old = SystemTime::now() - Duration::from_secs(120);
        std::fs::File::options()
            .write(true)
            .open(&path)
            .expect("open lease")
            .set_modified(old)
            .expect("backdate");
        // Under a generous timeout the lease is fresh enough: blocked.
        assert!(
            ShardLease::try_claim(&dir, 3, "b", Duration::from_secs(600))
                .expect("claim")
                .is_none()
        );
        // Under a 1-second timeout it is long dead: broken and reclaimed.
        let lease = ShardLease::try_claim(&dir, 3, "b", Duration::from_secs(1))
            .expect("claim")
            .expect("stale lease must be reclaimed");
        assert!(lease.path().exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn heartbeats_keep_a_leases_mtime_fresh() {
        let dir = tmp_dir("heartbeat");
        // 80 ms timeout → 20 ms heartbeat interval.
        let timeout = Duration::from_millis(80);
        let lease = ShardLease::try_claim(&dir, 0, "a", timeout)
            .expect("claim")
            .expect("wins");
        // Sleep well past the staleness timeout; the heartbeat must have
        // renewed the mtime, so a rival still cannot break the lease.
        std::thread::sleep(Duration::from_millis(240));
        assert!(
            ShardLease::try_claim(&dir, 0, "b", timeout)
                .expect("claim")
                .is_none(),
            "heartbeat-renewed lease must stay unbreakable"
        );
        lease.release();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_validates_its_own_configuration() {
        let dir = tmp_dir("validate");
        assert_eq!(
            FanoutWorker::new(0, &dir).run(&spec(2)).unwrap_err(),
            CampaignError::ZeroShardCount
        );
        assert_eq!(
            FanoutWorker::new(2, &dir)
                .home_shard(2)
                .run(&spec(2))
                .unwrap_err(),
            CampaignError::ShardIndexOutOfRange { index: 2, count: 2 }
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn worker_refuses_a_foreign_manifest() {
        let dir = tmp_dir("foreign");
        // A 2-shard fleet ran here; a 3-shard worker may not join it.
        FanoutWorker::new(2, &dir).run(&spec(2)).expect("seed run");
        let err = FanoutWorker::new(3, &dir).run(&spec(2)).unwrap_err();
        assert!(matches!(err, CampaignError::Fanout(_)), "{err}");
        assert!(err
            .to_string()
            .contains("different campaign or shard count"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_requires_a_manifest() {
        let dir = tmp_dir("no_manifest");
        let err = MergeCoordinator::new(&dir).run().unwrap_err();
        assert!(matches!(err, CampaignError::Fanout(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_worker_fanout_matches_the_sharded_runner() {
        let dir = tmp_dir("solo");
        let spec = spec(3);
        let outcome = FanoutWorker::new(2, &dir).run(&spec).expect("worker run");
        assert_eq!(outcome.executed_shards, vec![0, 1]);
        let merged = MergeCoordinator::new(&dir).run().expect("merge");
        let direct = crate::shard::ShardedCampaignRunner::new(2)
            .run(&spec)
            .expect("in-process sharded run");
        assert_eq!(merged.report.to_json(), direct.report.to_json());
        assert_eq!(merged.shard_count, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
