//! The data-width aware instruction selection policies — the paper's
//! contribution (§3).
//!
//! All policies are built from one composable [`SteeringStack`] whose feature
//! flags correspond to the paper's incremental schemes:
//!
//! | Paper scheme | Flag | Section |
//! |--------------|------|---------|
//! | `8_8_8` all-narrow steering with width predictor + confidence | always on (except baseline) | §3.2 |
//! | `BR` branches that depend on a narrow-produced flag | `br` | §3.3 |
//! | `LR` load replication | `lr` | §3.4 |
//! | `CR` carry-width prediction | `cr` | §3.5 |
//! | `CP` copy prefetching | `cp` | §3.6 |
//! | `IR` instruction splitting for imbalance reduction | `ir` | §3.7 |
//! | `IR-ND` split only µops without a destination | `ir_no_dest_only` | §3.7 |

use hc_isa::uop::{AluOp, UopKind};
use hc_isa::DynUop;
use hc_predictors::{CarryPredictor, CopyPredictor, PredictorConfig, WidthPredictor};
use hc_sim::{
    AlwaysWide, Cluster, HelperMode, SteerContext, SteerDecision, SteeringPolicy, WritebackInfo,
};
use serde::{Deserialize, Serialize};

/// The named policy configurations evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Monolithic baseline: no helper cluster.
    Baseline,
    /// 8-8-8 all-narrow steering (§3.2).
    P888,
    /// 8-8-8 + narrow-flag branches (§3.3).
    P888Br,
    /// 8-8-8 + BR + load replication (§3.4).
    P888BrLr,
    /// 8-8-8 + BR + LR + carry-width prediction (§3.5).
    P888BrLrCr,
    /// 8-8-8 + BR + LR + CR + copy prefetching (§3.6).
    P888BrLrCrCp,
    /// The full stack plus instruction splitting for imbalance reduction (§3.7).
    Ir,
    /// The IR fine-tuning that only splits µops without a destination (§3.7).
    IrNoDest,
}

impl PolicyKind {
    /// All policies in the order the paper introduces them.
    pub const ALL: [PolicyKind; 8] = [
        PolicyKind::Baseline,
        PolicyKind::P888,
        PolicyKind::P888Br,
        PolicyKind::P888BrLr,
        PolicyKind::P888BrLrCr,
        PolicyKind::P888BrLrCrCp,
        PolicyKind::Ir,
        PolicyKind::IrNoDest,
    ];

    /// Name used in reports and figures.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Baseline => "baseline",
            PolicyKind::P888 => "8_8_8",
            PolicyKind::P888Br => "8_8_8+BR",
            PolicyKind::P888BrLr => "8_8_8+BR+LR",
            PolicyKind::P888BrLrCr => "8_8_8+BR+LR+CR",
            PolicyKind::P888BrLrCrCp => "8_8_8+BR+LR+CR+CP",
            PolicyKind::Ir => "IR",
            PolicyKind::IrNoDest => "IR-ND",
        }
    }

    /// Instantiate the policy with the paper's predictor sizing.
    pub fn build(self) -> Box<dyn SteeringPolicy + Send> {
        self.build_with(&PredictorConfig::paper_default())
    }

    /// Instantiate the policy with an explicit predictor configuration — the
    /// hook campaign scenarios use to sweep table geometry.
    pub fn build_with(self, predictors: &PredictorConfig) -> Box<dyn SteeringPolicy + Send> {
        match self {
            PolicyKind::Baseline => Box::new(AlwaysWide),
            _ => Box::new(SteeringStack::with_predictors(self.features(), *predictors)),
        }
    }

    /// The feature set of this policy.
    pub fn features(self) -> SteeringFeatures {
        let mut f = SteeringFeatures::default();
        match self {
            PolicyKind::Baseline => {}
            PolicyKind::P888 => {}
            PolicyKind::P888Br => {
                f.br = true;
            }
            PolicyKind::P888BrLr => {
                f.br = true;
                f.lr = true;
            }
            PolicyKind::P888BrLrCr => {
                f.br = true;
                f.lr = true;
                f.cr = true;
            }
            PolicyKind::P888BrLrCrCp => {
                f.br = true;
                f.lr = true;
                f.cr = true;
                f.cp = true;
            }
            PolicyKind::Ir => {
                f.br = true;
                f.lr = true;
                f.cr = true;
                f.cp = true;
                f.ir = true;
            }
            PolicyKind::IrNoDest => {
                f.br = true;
                f.lr = true;
                f.cr = true;
                f.cp = true;
                f.ir = true;
                f.ir_no_dest_only = true;
            }
        }
        f
    }
}

/// A reuse pool of built policy instances, keyed by (kind, predictor
/// sizing).
///
/// Building a [`SteeringStack`] allocates its three predictor tables (~1.5
/// KB each at the paper sizing); a campaign worker that builds one per cell
/// pays that on every lane refill.  The pool instead hands back a previously
/// released instance after [`SteeringPolicy::reset`] — behaviourally
/// identical to a fresh build (the reset contract), but allocation-free once
/// the pool is warm.  One pool lives per worker thread, so no locking.
#[derive(Default)]
pub struct PolicyPool {
    free: Vec<(PolicyKind, PredictorConfig, Box<dyn SteeringPolicy + Send>)>,
}

impl std::fmt::Debug for PolicyPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyPool")
            .field("free", &self.free.len())
            .finish()
    }
}

impl PolicyPool {
    /// An empty pool.
    pub fn new() -> PolicyPool {
        PolicyPool::default()
    }

    /// Take a policy of `kind` sized by `predictors`: a pooled instance
    /// (reset to its untrained state) when one matches, a fresh build
    /// otherwise.
    pub fn acquire(
        &mut self,
        kind: PolicyKind,
        predictors: &PredictorConfig,
    ) -> Box<dyn SteeringPolicy + Send> {
        match self
            .free
            .iter()
            .position(|(k, p, _)| *k == kind && p == predictors)
        {
            Some(i) => {
                let (_, _, mut policy) = self.free.swap_remove(i);
                policy.reset();
                policy
            }
            None => kind.build_with(predictors),
        }
    }

    /// Return a policy taken with [`PolicyPool::acquire`] for later reuse.
    /// The caller vouches that `kind`/`predictors` are the ones it was
    /// acquired under.
    pub fn release(
        &mut self,
        kind: PolicyKind,
        predictors: &PredictorConfig,
        policy: Box<dyn SteeringPolicy + Send>,
    ) {
        self.free.push((kind, *predictors, policy));
    }

    /// Number of instances currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

/// Tunable parameters and feature switches of the steering stack.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SteeringFeatures {
    /// Steer flag-consuming branches after helper-resident flag producers (§3.3).
    pub br: bool,
    /// Replicate byte loads into both register files (§3.4).
    pub lr: bool,
    /// Carry-width prediction for 8/32→32 operations (§3.5).
    pub cr: bool,
    /// Copy prefetching (§3.6).
    pub cp: bool,
    /// Wide-instruction splitting when the helper cluster is underutilised (§3.7).
    pub ir: bool,
    /// Restrict splitting to µops without a destination register (§3.7 fine tuning).
    pub ir_no_dest_only: bool,
    /// Wide→narrow NREADY imbalance above which IR starts splitting.
    pub ir_imbalance_threshold: f64,
    /// Narrow→wide imbalance above which narrow µops are steered wide again
    /// ("if the helper cluster is overloaded", §3.7 / §1 item 5).
    pub overload_threshold: f64,
    /// Helper IQ occupancy fraction above which the helper is considered full.
    pub helper_full_fraction: f64,
}

impl Default for SteeringFeatures {
    fn default() -> Self {
        SteeringFeatures {
            br: false,
            lr: false,
            cr: false,
            cp: false,
            ir: false,
            ir_no_dest_only: false,
            ir_imbalance_threshold: 0.08,
            overload_threshold: 0.10,
            helper_full_fraction: 0.85,
        }
    }
}

/// Internal decision statistics kept by the stack (useful for reports/tests;
/// the authoritative performance numbers come from the simulator).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StackStats {
    /// µops steered to the helper cluster via the 8-8-8 rule.
    pub steered_888: u64,
    /// Branches steered via the BR rule.
    pub steered_br: u64,
    /// µops steered via the CR rule.
    pub steered_cr: u64,
    /// µops split via the IR rule.
    pub steered_ir_split: u64,
    /// Loads marked for replication (LR).
    pub replicated_loads: u64,
    /// Copy prefetches requested (CP).
    pub copy_prefetches: u64,
    /// µops kept wide because the helper cluster was overloaded.
    pub overload_reverts: u64,
}

/// The composable data-width aware steering policy.
#[derive(Debug, Clone)]
pub struct SteeringStack {
    features: SteeringFeatures,
    predictors: PredictorConfig,
    name: String,
    width_pred: WidthPredictor,
    carry_pred: CarryPredictor,
    copy_pred: CopyPredictor,
    stats: StackStats,
}

impl SteeringStack {
    /// Create a stack with the given features and the paper's predictor
    /// sizing (256-entry tables, confidence on).
    pub fn new(features: SteeringFeatures) -> SteeringStack {
        SteeringStack::with_predictors(features, PredictorConfig::paper_default())
    }

    /// Create a stack with explicit predictor table sizing — the predictor
    /// constructor arguments used to be scattered here; they now arrive as
    /// one [`PredictorConfig`] so scenarios can sweep them.
    pub fn with_predictors(
        features: SteeringFeatures,
        predictors: PredictorConfig,
    ) -> SteeringStack {
        let name = Self::derive_name(&features);
        SteeringStack {
            width_pred: WidthPredictor::new(predictors.width_entries, predictors.use_confidence),
            carry_pred: CarryPredictor::new(predictors.carry_entries),
            copy_pred: CopyPredictor::new(predictors.copy_entries),
            features,
            predictors,
            name,
            stats: StackStats::default(),
        }
    }

    fn derive_name(f: &SteeringFeatures) -> String {
        if f.ir {
            return if f.ir_no_dest_only { "IR-ND" } else { "IR" }.to_string();
        }
        let mut n = "8_8_8".to_string();
        if f.br {
            n.push_str("+BR");
        }
        if f.lr {
            n.push_str("+LR");
        }
        if f.cr {
            n.push_str("+CR");
        }
        if f.cp {
            n.push_str("+CP");
        }
        n
    }

    /// The features this stack runs with.
    pub fn features(&self) -> &SteeringFeatures {
        &self.features
    }

    /// The predictor sizing this stack runs with.
    pub fn predictors(&self) -> &PredictorConfig {
        &self.predictors
    }

    /// Decision statistics accumulated so far.
    pub fn stats(&self) -> StackStats {
        self.stats
    }

    /// Width predictor accuracy observed so far (Figure 5 companion data).
    pub fn width_predictor_accuracy(&self) -> f64 {
        self.width_pred.stats().accuracy()
    }

    /// Copy predictor accuracy observed so far (§3.6 reports ≈90%).
    pub fn copy_predictor_accuracy(&self) -> f64 {
        self.copy_pred.stats().accuracy()
    }

    fn helper_has_room(&self, ctx: &SteerContext, extra: usize) -> bool {
        let cap = ctx.helper_iq_capacity.max(1);
        let full = (cap as f64 * self.features.helper_full_fraction) as usize;
        ctx.helper_iq_occupancy + extra <= full
    }

    fn helper_overloaded(&self, ctx: &SteerContext) -> bool {
        ctx.narrow_to_wide_imbalance > self.features.overload_threshold
            || !self.helper_has_room(ctx, 1)
    }

    /// The 8-8-8 test of §3.2: every source (actual width when written back,
    /// predicted otherwise), the immediate and the predicted result width must
    /// be narrow, and the result prediction must be high confidence.
    fn rule_888(&mut self, uop: &DynUop, ctx: &SteerContext) -> bool {
        if !ctx.all_sources_narrow() {
            return false;
        }
        if !uop.uop.has_dest() {
            // No register result to mispredict (compares, stores, …): the
            // sources alone decide.  A flags result always fits in 8 bits.
            return true;
        }
        let pred = self.width_pred.predict(uop.uop.pc);
        pred.confidently_narrow()
    }

    /// The BR rule of §3.3: a conditional branch whose flag producer already
    /// lives in the helper cluster follows it there.
    fn rule_br(&self, uop: &DynUop, ctx: &SteerContext) -> bool {
        self.features.br
            && uop.uop.kind.is_cond_branch()
            && ctx.flags_producer == Some(Cluster::Helper)
    }

    /// The CR rule of §3.5: an 8/32→32 operation predicted not to propagate a
    /// carry beyond bit 8 can run on the 8-bit datapath.
    fn rule_cr(&mut self, uop: &DynUop, ctx: &SteerContext) -> bool {
        if !self.features.cr {
            return false;
        }
        let eligible_kind = match uop.uop.kind {
            UopKind::Alu(op) => op.cr_eligible() && !matches!(op, AluOp::Mov),
            UopKind::Load(_) | UopKind::Store(_) => true,
            _ => false,
        };
        if !eligible_kind {
            return false;
        }
        // Exactly one wide input, at least one narrow input.
        let wide_srcs = ctx.wide_source_count();
        let narrow_inputs =
            ctx.narrow_source_count() + usize::from(ctx.imm_narrow.unwrap_or(false));
        if wide_srcs != 1 || narrow_inputs == 0 {
            return false;
        }
        // The result must be predicted wide (an 8-32-32 pattern); a predicted
        // narrow result is already handled by 8-8-8.
        let (carry_free, confident) = self.carry_pred.predict(uop.uop.pc);
        carry_free && confident
    }

    /// The IR rule of §3.7: when there is wide→narrow imbalance, split wide
    /// ALU µops into four chained 8-bit chunks and send them to the helper.
    fn rule_ir(&self, uop: &DynUop, ctx: &SteerContext) -> bool {
        if !self.features.ir || !uop.uop.kind.is_simple_alu() {
            return false;
        }
        if self.features.ir_no_dest_only && uop.uop.has_dest() {
            return false;
        }
        // Split only while the wide cluster is visibly backed up *and* the
        // helper cluster has plenty of headroom: splitting is a net win only
        // when the wide issue bandwidth is the bottleneck.
        ctx.wide_to_narrow_imbalance > self.features.ir_imbalance_threshold
            && ctx.helper_iq_occupancy * 4 <= ctx.helper_iq_capacity
            && self.helper_has_room(ctx, 8)
    }
}

impl SteeringPolicy for SteeringStack {
    fn name(&self) -> &str {
        &self.name
    }

    fn reset(&mut self) {
        self.width_pred.reset();
        self.carry_pred.reset();
        self.copy_pred.reset();
        self.stats = StackStats::default();
    }

    fn steer(&mut self, uop: &DynUop, ctx: &SteerContext) -> SteerDecision {
        // Destination width prediction is made for every µop with a result so
        // the rename width table stays populated (Figure 4).
        let dest_pred = if uop.uop.has_dest() {
            Some(self.width_pred.peek(uop.uop.pc).narrow)
        } else {
            None
        };
        let with_pred = |mut d: SteerDecision| {
            d.predicted_dest_narrow = dest_pred;
            d
        };

        if !ctx.helper_available || ctx.forced_wide || uop.uop.kind.wide_only() {
            return with_pred(SteerDecision::wide());
        }

        // Workload-balance guard: an overloaded helper cluster sheds narrow
        // work back to the wide cluster until balance is restored (§3.7).
        let overloaded = self.helper_overloaded(ctx);

        // BR first: branches carry no data result, so they are never fatal.
        if self.rule_br(uop, ctx) && !overloaded {
            self.stats.steered_br += 1;
            return with_pred(SteerDecision::helper(HelperMode::FlagBranch));
        }

        // 8-8-8.
        if !uop.uop.kind.is_branch() && self.rule_888(uop, ctx) {
            if overloaded {
                self.stats.overload_reverts += 1;
                return with_pred(self.maybe_prefetch_wide(uop, SteerDecision::wide()));
            }
            self.stats.steered_888 += 1;
            let mut d = SteerDecision::helper(HelperMode::AllNarrow);
            d = self.maybe_replicate(uop, d);
            d = self.maybe_prefetch_helper(uop, d);
            return with_pred(d);
        }

        // CR.
        if !uop.uop.kind.is_branch() && self.rule_cr(uop, ctx) {
            if overloaded {
                self.stats.overload_reverts += 1;
                return with_pred(self.maybe_prefetch_wide(uop, SteerDecision::wide()));
            }
            self.stats.steered_cr += 1;
            let mut d = SteerDecision::helper(HelperMode::CarryFree);
            d = self.maybe_replicate(uop, d);
            d = self.maybe_prefetch_helper(uop, d);
            return with_pred(d);
        }

        // IR: split wide work into narrow chunks when the helper is idle.
        if self.rule_ir(uop, ctx) {
            self.stats.steered_ir_split += 1;
            return with_pred(SteerDecision::split_to_helper());
        }

        // Default: wide cluster, possibly with LR replication (byte loads) and
        // wide-to-narrow copy prefetching.
        let mut d = SteerDecision::wide();
        d = self.maybe_replicate(uop, d);
        d = self.maybe_prefetch_wide(uop, d);
        with_pred(d)
    }

    fn on_writeback(&mut self, uop: &DynUop, info: WritebackInfo) {
        if uop.uop.has_dest() {
            self.width_pred.update(uop.uop.pc, info.result_narrow);
            if self.features.cp {
                self.copy_pred.update(uop.uop.pc, info.incurred_copy);
            }
        }
        if self.features.cr {
            let eligible = match uop.uop.kind {
                UopKind::Alu(op) => op.cr_eligible(),
                UopKind::Load(_) | UopKind::Store(_) => true,
                _ => false,
            };
            if eligible {
                self.carry_pred.update(uop.uop.pc, info.carry_free);
            }
        }
    }
}

impl SteeringStack {
    fn maybe_replicate(&mut self, uop: &DynUop, d: SteerDecision) -> SteerDecision {
        if self.features.lr && matches!(uop.uop.kind, UopKind::Load(hc_isa::uop::MemSize::Byte)) {
            self.stats.replicated_loads += 1;
            d.with_replication()
        } else {
            d
        }
    }

    /// CP for helper-resident producers: prefetch a narrow→wide copy when the
    /// copy predictor says this producer's value will be wanted in the wide
    /// cluster.
    fn maybe_prefetch_helper(&mut self, uop: &DynUop, d: SteerDecision) -> SteerDecision {
        if self.features.cp && uop.uop.has_dest() && self.copy_pred.predict(uop.uop.pc) {
            self.stats.copy_prefetches += 1;
            d.with_copy_prefetch()
        } else {
            d
        }
    }

    /// CP for wide-resident producers: a result predicted narrow (e.g. a
    /// load-byte executed wide) is prefetched into the helper cluster, since
    /// narrow consumers will most likely want it there.
    fn maybe_prefetch_wide(&mut self, uop: &DynUop, d: SteerDecision) -> SteerDecision {
        if self.features.cp
            && uop.uop.has_dest()
            && self.width_pred.peek(uop.uop.pc).confidently_narrow()
            && self.copy_pred.predict(uop.uop.pc)
        {
            self.stats.copy_prefetches += 1;
            d.with_copy_prefetch()
        } else {
            d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_isa::reg::ArchReg;
    use hc_isa::uop::{BranchCond, MemSize, Uop};
    use hc_isa::Value;
    use hc_sim::SourceWidthInfo;

    fn ctx_with_sources(narrow: &[bool]) -> SteerContext {
        SteerContext {
            sources: narrow
                .iter()
                .map(|&n| SourceWidthInfo {
                    narrow: n,
                    actual: true,
                    producer_cluster: Some(Cluster::Wide),
                })
                .collect(),
            imm_narrow: None,
            flags_producer: None,
            wide_iq_occupancy: 4,
            helper_iq_occupancy: 4,
            wide_iq_capacity: 32,
            helper_iq_capacity: 32,
            wide_to_narrow_imbalance: 0.0,
            narrow_to_wide_imbalance: 0.0,
            helper_available: true,
            forced_wide: false,
        }
    }

    fn alu_uop(pc: u64) -> DynUop {
        let u = Uop::new(pc, UopKind::Alu(AluOp::Add))
            .with_src(ArchReg::Eax)
            .with_src(ArchReg::Ebx)
            .with_dest(ArchReg::Eax)
            .writing_flags();
        let mut d = DynUop::from_uop(u);
        d.src_vals[0] = Some(Value::new(3));
        d.src_vals[1] = Some(Value::new(4));
        d.result = Some(Value::new(7));
        d
    }

    fn train(stack: &mut SteeringStack, uop: &DynUop, narrow: bool, n: usize) {
        for _ in 0..n {
            stack.on_writeback(
                uop,
                WritebackInfo {
                    executed_in: Cluster::Wide,
                    result_narrow: narrow,
                    carry_free: false,
                    fatal_mispredict: false,
                    incurred_copy: false,
                },
            );
        }
    }

    #[test]
    fn policy_names_match_paper() {
        assert_eq!(PolicyKind::P888.name(), "8_8_8");
        assert_eq!(PolicyKind::P888BrLrCr.name(), "8_8_8+BR+LR+CR");
        assert_eq!(PolicyKind::Ir.name(), "IR");
        assert_eq!(PolicyKind::Baseline.build().name(), "baseline");
        assert_eq!(PolicyKind::Ir.build().name(), "IR");
        assert_eq!(PolicyKind::IrNoDest.build().name(), "IR-ND");
    }

    #[test]
    fn features_compose_incrementally() {
        assert!(!PolicyKind::P888.features().br);
        assert!(PolicyKind::P888Br.features().br);
        assert!(!PolicyKind::P888Br.features().lr);
        assert!(PolicyKind::P888BrLrCrCp.features().cp);
        assert!(PolicyKind::Ir.features().ir);
        assert!(PolicyKind::IrNoDest.features().ir_no_dest_only);
    }

    #[test]
    fn untrained_predictor_keeps_uops_wide() {
        let mut s = SteeringStack::new(PolicyKind::P888.features());
        let uop = alu_uop(0x10);
        let d = s.steer(&uop, &ctx_with_sources(&[true, true]));
        assert_eq!(d.cluster, Cluster::Wide, "no confidence yet -> stay wide");
    }

    #[test]
    fn trained_888_steers_narrow_uops_to_helper() {
        let mut s = SteeringStack::new(PolicyKind::P888.features());
        let uop = alu_uop(0x10);
        train(&mut s, &uop, true, 4);
        let d = s.steer(&uop, &ctx_with_sources(&[true, true]));
        assert_eq!(d.cluster, Cluster::Helper);
        assert_eq!(d.helper_mode, Some(HelperMode::AllNarrow));
        assert_eq!(d.predicted_dest_narrow, Some(true));
    }

    #[test]
    fn wide_source_blocks_888() {
        let mut s = SteeringStack::new(PolicyKind::P888.features());
        let uop = alu_uop(0x10);
        train(&mut s, &uop, true, 4);
        let d = s.steer(&uop, &ctx_with_sources(&[true, false]));
        assert_eq!(d.cluster, Cluster::Wide);
    }

    #[test]
    fn forced_wide_overrides_everything() {
        let mut s = SteeringStack::new(PolicyKind::Ir.features());
        let uop = alu_uop(0x10);
        train(&mut s, &uop, true, 4);
        let mut ctx = ctx_with_sources(&[true, true]);
        ctx.forced_wide = true;
        let d = s.steer(&uop, &ctx);
        assert_eq!(d.cluster, Cluster::Wide);
        assert!(!d.split);
    }

    #[test]
    fn br_follows_helper_flag_producer() {
        let mut s = SteeringStack::new(PolicyKind::P888Br.features());
        let br =
            DynUop::from_uop(Uop::new(0x20, UopKind::CondBranch(BranchCond::Ne)).reading_flags());
        let mut ctx = ctx_with_sources(&[]);
        ctx.flags_producer = Some(Cluster::Helper);
        let d = s.steer(&br, &ctx);
        assert_eq!(d.cluster, Cluster::Helper);
        assert_eq!(d.helper_mode, Some(HelperMode::FlagBranch));

        // Without BR the same branch stays wide.
        let mut s = SteeringStack::new(PolicyKind::P888.features());
        let d = s.steer(&br, &ctx);
        assert_eq!(d.cluster, Cluster::Wide);
    }

    #[test]
    fn br_ignores_wide_flag_producers() {
        let mut s = SteeringStack::new(PolicyKind::P888Br.features());
        let br =
            DynUop::from_uop(Uop::new(0x20, UopKind::CondBranch(BranchCond::Ne)).reading_flags());
        let mut ctx = ctx_with_sources(&[]);
        ctx.flags_producer = Some(Cluster::Wide);
        assert_eq!(s.steer(&br, &ctx).cluster, Cluster::Wide);
    }

    #[test]
    fn lr_replicates_byte_loads() {
        let mut s = SteeringStack::new(PolicyKind::P888BrLr.features());
        let load = {
            let u = Uop::new(0x30, UopKind::Load(MemSize::Byte))
                .with_src(ArchReg::Ebx)
                .with_dest(ArchReg::Eax);
            DynUop::from_uop(u)
        };
        let d = s.steer(&load, &ctx_with_sources(&[false]));
        assert!(d.replicate_load, "byte loads are replicated under LR");

        // Word loads are not replicated.
        let wload = DynUop::from_uop(
            Uop::new(0x34, UopKind::Load(MemSize::DWord))
                .with_src(ArchReg::Ebx)
                .with_dest(ArchReg::Eax),
        );
        assert!(!s.steer(&wload, &ctx_with_sources(&[false])).replicate_load);
    }

    #[test]
    fn cr_steers_trained_carry_free_mixed_width_ops() {
        let mut s = SteeringStack::new(PolicyKind::P888BrLrCr.features());
        let uop = {
            let u = Uop::new(0x40, UopKind::Alu(AluOp::Add))
                .with_src(ArchReg::Ebx)
                .with_src(ArchReg::Ecx)
                .with_dest(ArchReg::Edx);
            let mut d = DynUop::from_uop(u);
            d.src_vals[0] = Some(Value::new(0xFFFC_4A02));
            d.src_vals[1] = Some(Value::new(0x1C));
            d.result = Some(Value::new(0xFFFC_4A1E));
            d
        };
        // Train the carry predictor: result wide, carry free.
        for _ in 0..4 {
            s.on_writeback(
                &uop,
                WritebackInfo {
                    executed_in: Cluster::Wide,
                    result_narrow: false,
                    carry_free: true,
                    fatal_mispredict: false,
                    incurred_copy: false,
                },
            );
        }
        let d = s.steer(&uop, &ctx_with_sources(&[false, true]));
        assert_eq!(d.cluster, Cluster::Helper);
        assert_eq!(d.helper_mode, Some(HelperMode::CarryFree));

        // Without CR the same µop stays wide.
        let mut s = SteeringStack::new(PolicyKind::P888BrLr.features());
        let d = s.steer(&uop, &ctx_with_sources(&[false, true]));
        assert_eq!(d.cluster, Cluster::Wide);
    }

    #[test]
    fn cp_prefetches_copies_for_copy_prone_producers() {
        let mut s = SteeringStack::new(PolicyKind::P888BrLrCrCp.features());
        let uop = alu_uop(0x50);
        // Train: result narrow and it keeps incurring copies.
        for _ in 0..4 {
            s.on_writeback(
                &uop,
                WritebackInfo {
                    executed_in: Cluster::Helper,
                    result_narrow: true,
                    carry_free: false,
                    fatal_mispredict: false,
                    incurred_copy: true,
                },
            );
        }
        let d = s.steer(&uop, &ctx_with_sources(&[true, true]));
        assert_eq!(d.cluster, Cluster::Helper);
        assert!(d.prefetch_copy, "copy-prone producer should prefetch");
    }

    #[test]
    fn ir_splits_wide_alu_when_helper_is_idle() {
        let mut s = SteeringStack::new(PolicyKind::Ir.features());
        let uop = {
            let u = Uop::new(0x60, UopKind::Alu(AluOp::Add))
                .with_src(ArchReg::Ebx)
                .with_src(ArchReg::Ecx)
                .with_dest(ArchReg::Edx);
            let mut d = DynUop::from_uop(u);
            d.src_vals[0] = Some(Value::new(0x10_0000));
            d.src_vals[1] = Some(Value::new(0x20_0000));
            d.result = Some(Value::new(0x30_0000));
            d
        };
        let mut ctx = ctx_with_sources(&[false, false]);
        ctx.wide_to_narrow_imbalance = 0.2;
        ctx.helper_iq_occupancy = 0;
        let d = s.steer(&uop, &ctx);
        assert!(d.split, "imbalance should trigger splitting");
        assert_eq!(d.cluster, Cluster::Helper);

        // IR-ND refuses to split a µop with a destination.
        let mut snd = SteeringStack::new(PolicyKind::IrNoDest.features());
        let d = snd.steer(&uop, &ctx);
        assert!(!d.split);
    }

    #[test]
    fn ir_does_not_split_when_balanced_or_full() {
        let mut s = SteeringStack::new(PolicyKind::Ir.features());
        let uop = alu_uop(0x70);
        let mut ctx = ctx_with_sources(&[false, false]);
        ctx.wide_to_narrow_imbalance = 0.0;
        assert!(!s.steer(&uop, &ctx).split);
        ctx.wide_to_narrow_imbalance = 0.5;
        ctx.helper_iq_occupancy = 31;
        assert!(
            !s.steer(&uop, &ctx).split,
            "full helper IQ blocks splitting"
        );
    }

    #[test]
    fn overloaded_helper_sheds_narrow_work() {
        let mut s = SteeringStack::new(PolicyKind::P888.features());
        let uop = alu_uop(0x80);
        train(&mut s, &uop, true, 4);
        let mut ctx = ctx_with_sources(&[true, true]);
        ctx.narrow_to_wide_imbalance = 0.5;
        let d = s.steer(&uop, &ctx);
        assert_eq!(d.cluster, Cluster::Wide);
        assert!(s.stats().overload_reverts > 0);
    }

    #[test]
    fn writeback_trains_width_predictor() {
        let mut s = SteeringStack::new(PolicyKind::P888.features());
        let uop = alu_uop(0x90);
        train(&mut s, &uop, true, 10);
        assert!(s.width_predictor_accuracy() > 0.8);
    }
}
