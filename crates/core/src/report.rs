//! Rendering figures and tables as Markdown / CSV for reports and
//! EXPERIMENTS.md.

use crate::figures::Figure;

/// Render a [`Figure`] as a GitHub-flavoured Markdown table.
pub fn figure_to_markdown(fig: &Figure) -> String {
    let mut out = String::new();
    out.push_str(&format!("### {} — {}\n\n", fig.id, fig.title));
    out.push_str("| benchmark |");
    for s in &fig.series {
        out.push_str(&format!(" {s} |"));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in &fig.series {
        out.push_str("---|");
    }
    out.push('\n');
    for row in &fig.rows {
        out.push_str(&format!("| {} |", row.label));
        for v in &row.values {
            out.push_str(&format!(" {v:.2} |"));
        }
        out.push('\n');
    }
    out
}

/// Render a [`Figure`] as CSV (header + rows).
pub fn figure_to_csv(fig: &Figure) -> String {
    let mut out = String::new();
    out.push_str("label");
    for s in &fig.series {
        out.push(',');
        out.push_str(&s.replace(',', ";"));
    }
    out.push('\n');
    for row in &fig.rows {
        out.push_str(&row.label);
        for v in &row.values {
            out.push_str(&format!(",{v:.4}"));
        }
        out.push('\n');
    }
    out
}

/// Render a two-column key/value table (Table 1 style) as Markdown.
pub fn kv_table_to_markdown(title: &str, rows: &[(String, String)]) -> String {
    let mut out = format!("### {title}\n\n| parameter | value |\n|---|---|\n");
    for (k, v) in rows {
        out.push_str(&format!("| {k} | {v} |\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::FigureRow;

    fn sample() -> Figure {
        Figure {
            id: "figX".into(),
            title: "Sample".into(),
            series: vec!["a %".into(), "b".into()],
            rows: vec![
                FigureRow {
                    label: "gcc".into(),
                    values: vec![1.5, 2.25],
                },
                FigureRow {
                    label: "AVG".into(),
                    values: vec![1.5, 2.25],
                },
            ],
        }
    }

    #[test]
    fn markdown_contains_all_rows_and_series() {
        let md = figure_to_markdown(&sample());
        assert!(md.contains("figX"));
        assert!(md.contains("| gcc | 1.50 | 2.25 |"));
        assert!(md.contains("a %"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = figure_to_csv(&sample());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("label,a %,b"));
        assert_eq!(lines.next(), Some("gcc,1.5000,2.2500"));
    }

    #[test]
    fn kv_table_renders() {
        let md = kv_table_to_markdown(
            "Table 1",
            &[("Commit Width".into(), "6 instructions".into())],
        );
        assert!(md.contains("| Commit Width | 6 instructions |"));
    }
}
