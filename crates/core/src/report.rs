//! Rendering figures, tables and campaign reports as Markdown / CSV.

use crate::campaign::CampaignReport;
use crate::figures::Figure;

/// Render a [`Figure`] as a GitHub-flavoured Markdown table.
pub fn figure_to_markdown(fig: &Figure) -> String {
    let mut out = String::new();
    out.push_str(&format!("### {} — {}\n\n", fig.id, fig.title));
    out.push_str("| benchmark |");
    for s in &fig.series {
        out.push_str(&format!(" {s} |"));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in &fig.series {
        out.push_str("---|");
    }
    out.push('\n');
    for row in &fig.rows {
        out.push_str(&format!("| {} |", row.label));
        for v in &row.values {
            out.push_str(&format!(" {v:.2} |"));
        }
        out.push('\n');
    }
    out
}

/// Render a [`Figure`] as CSV (header + rows).  Series names and row labels
/// are arbitrary strings; both are quoted per RFC 4180 when they contain a
/// comma, quote or newline (they used to be emitted raw, which silently
/// shifted every later column).
pub fn figure_to_csv(fig: &Figure) -> String {
    let mut out = String::new();
    out.push_str("label");
    for s in &fig.series {
        out.push(',');
        out.push_str(&csv_field(s));
    }
    out.push('\n');
    for row in &fig.rows {
        out.push_str(&csv_field(&row.label));
        for v in &row.values {
            out.push_str(&format!(",{v:.4}"));
        }
        out.push('\n');
    }
    out
}

/// Stable CSV column order for campaign reports.  Appending columns is a
/// compatible change; reordering or renaming requires a schema-version bump.
/// `scenario` (appended with the N-D scenario axes) is empty for cells of a
/// single-default-scenario campaign.
pub const CAMPAIGN_CSV_COLUMNS: [&str; 13] = [
    "policy",
    "trace",
    "category",
    "cycles",
    "committed_uops",
    "helper_uops",
    "wide_uops",
    "copy_uops",
    "split_uops",
    "baseline_cycles",
    "speedup",
    "perf_increase_pct",
    "scenario",
];

/// Quote a CSV field per RFC 4180 when it contains a comma, quote or
/// newline (policy/trace/category names are arbitrary user strings).
fn csv_field(value: &str) -> String {
    if value.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

/// Render every cell of a [`CampaignReport`] as CSV with the stable
/// [`CAMPAIGN_CSV_COLUMNS`] header.  Baseline-less campaigns leave the
/// baseline-derived columns empty.
pub fn campaign_to_csv(report: &CampaignReport) -> String {
    let mut out = CAMPAIGN_CSV_COLUMNS.join(",");
    out.push('\n');
    for cell in &report.cells {
        let s = &cell.stats;
        // Join against the cell's *own scenario's* baseline, never another
        // machine's.
        let baseline = report.baseline_for_scenario(&cell.trace, cell.scenario.as_deref());
        let (baseline_cycles, speedup, pct) = match baseline {
            Some(b) => {
                let speedup = s.speedup_over(b);
                (
                    b.cycles.to_string(),
                    format!("{speedup:.6}"),
                    format!("{:.4}", (speedup - 1.0) * 100.0),
                )
            }
            None => (String::new(), String::new(), String::new()),
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            csv_field(&cell.policy),
            csv_field(&cell.trace),
            csv_field(cell.category.as_deref().unwrap_or("")),
            s.cycles,
            s.committed_uops,
            s.helper_uops,
            s.wide_uops,
            s.copy_uops,
            s.split_uops,
            baseline_cycles,
            speedup,
            pct,
            csv_field(cell.scenario.as_deref().unwrap_or("")),
        ));
    }
    out
}

/// Render a [`CampaignReport`] as a Markdown summary: one row per policy with
/// its grid-mean speedup, plus the memoization accounting.
pub fn campaign_to_markdown(report: &CampaignReport) -> String {
    let scenario_axis = if report.spec.scenarios.len() > 1 {
        format!(" × {} scenarios", report.spec.scenarios.len())
    } else {
        String::new()
    };
    let mut out = format!(
        "### campaign `{}` — {} policies × {} traces{} (schema v{})\n\n",
        report.name,
        report.spec.policies.len(),
        report.spec.traces.len(),
        scenario_axis,
        report.schema_version
    );
    out.push_str(&format!(
        "{} cells simulated; {} monolithic baseline runs (shared across policies)\n\n",
        report.cells.len(),
        report.baseline_runs
    ));
    out.push_str("| policy | mean speedup | mean perf increase |\n|---|---|---|\n");
    for kind in &report.spec.policies {
        match report.mean_speedup(kind.name()) {
            Some(speedup) => out.push_str(&format!(
                "| {} | {:.4} | {:+.2}% |\n",
                kind.name(),
                speedup,
                (speedup - 1.0) * 100.0
            )),
            None => out.push_str(&format!("| {} | n/a | n/a |\n", kind.name())),
        }
    }
    out
}

/// Render one policy's per-scenario aggregates (mean speedup and mean ED²
/// improvement, each scenario under its own baselines and power parameters)
/// as a Markdown table — the summary view of a sensitivity campaign.
pub fn scenario_summary_to_markdown(report: &CampaignReport, policy: &str) -> String {
    let speedups = report.speedup_by_scenario(policy);
    let ed2 = report.ed2_by_scenario(policy);
    let mut out = format!(
        "### `{policy}` per scenario\n\n| scenario | mean speedup | mean perf increase | mean ED\u{b2} gain |\n|---|---|---|---|\n"
    );
    for key in report.scenario_keys() {
        match (speedups.get(&key), ed2.get(&key)) {
            (Some(speedup), Some(gain)) => out.push_str(&format!(
                "| {key} | {speedup:.4} | {:+.2}% | {:+.2}% |\n",
                (speedup - 1.0) * 100.0,
                gain * 100.0
            )),
            _ => out.push_str(&format!("| {key} | n/a | n/a | n/a |\n")),
        }
    }
    out
}

/// Render a two-column key/value table (Table 1 style) as Markdown.
pub fn kv_table_to_markdown(title: &str, rows: &[(String, String)]) -> String {
    let mut out = format!("### {title}\n\n| parameter | value |\n|---|---|\n");
    for (k, v) in rows {
        out.push_str(&format!("| {k} | {v} |\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::FigureRow;

    fn sample() -> Figure {
        Figure {
            id: "figX".into(),
            title: "Sample".into(),
            series: vec!["a %".into(), "b".into()],
            rows: vec![
                FigureRow {
                    label: "gcc".into(),
                    values: vec![1.5, 2.25],
                },
                FigureRow {
                    label: "AVG".into(),
                    values: vec![1.5, 2.25],
                },
            ],
        }
    }

    #[test]
    fn markdown_contains_all_rows_and_series() {
        let md = figure_to_markdown(&sample());
        assert!(md.contains("figX"));
        assert!(md.contains("| gcc | 1.50 | 2.25 |"));
        assert!(md.contains("a %"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = figure_to_csv(&sample());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("label,a %,b"));
        assert_eq!(lines.next(), Some("gcc,1.5000,2.2500"));
    }

    #[test]
    fn figure_csv_quotes_hostile_labels_and_series() {
        let fig = Figure {
            id: "figQ".into(),
            title: "Quoting".into(),
            series: vec!["perf, increase %".into(), "plain".into()],
            rows: vec![FigureRow {
                label: "enc, \"fast\" pass".into(),
                values: vec![1.0, 2.0],
            }],
        };
        let csv = figure_to_csv(&fig);
        let mut lines = csv.lines();
        // RFC 4180: commas survive inside quoted fields, embedded quotes are
        // doubled, and the column count stays fixed.
        assert_eq!(lines.next(), Some("label,\"perf, increase %\",plain"));
        assert_eq!(
            lines.next(),
            Some("\"enc, \"\"fast\"\" pass\",1.0000,2.0000")
        );
    }

    #[test]
    fn kv_table_renders() {
        let md = kv_table_to_markdown(
            "Table 1",
            &[("Commit Width".into(), "6 instructions".into())],
        );
        assert!(md.contains("| Commit Width | 6 instructions |"));
    }

    #[test]
    fn campaign_csv_quotes_hostile_names() {
        use crate::campaign::{CampaignBuilder, CampaignCell, CAMPAIGN_SCHEMA_VERSION};
        use crate::policy::PolicyKind;
        use hc_sim::SimStats;
        use hc_trace::SpecBenchmark;

        let spec = CampaignBuilder::new("csv")
            .policy(PolicyKind::P888)
            .spec(SpecBenchmark::Gzip)
            .trace_len(100)
            .without_baseline()
            .build()
            .unwrap();
        let report = CampaignReport {
            schema_version: CAMPAIGN_SCHEMA_VERSION,
            name: "csv".into(),
            spec,
            baselines: Vec::new(),
            cells: vec![CampaignCell {
                policy: "8_8_8".into(),
                trace: "my,weird\n\"trace\"".into(),
                category: None,
                scenario: None,
                stats: SimStats::default(),
            }],
            baseline_runs: 0,
            trace_generations: 0,
        };
        let csv = campaign_to_csv(&report);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some(CAMPAIGN_CSV_COLUMNS.join(",").as_str()));
        // RFC 4180: the field is quoted, embedded quotes doubled; the
        // embedded newline stays inside the quoted field.
        assert!(csv.contains("8_8_8,\"my,weird\n\"\"trace\"\"\","));
    }
}
