//! Running one trace under one policy and comparing against the monolithic
//! baseline — the basic experiment unit behind every figure.
//!
//! Since the campaign redesign this is a thin adapter over
//! [`crate::campaign`]'s grid engine: [`Experiment::run_many`] shares one
//! baseline simulation across all policies exactly like a
//! [`crate::campaign::CampaignRunner`] cell row does, and configurations are
//! validated once, up front, with typed [`ConfigError`]s instead of
//! `expect`s on the run path.

use crate::policy::PolicyKind;
use hc_power::{Ed2Comparison, PowerModel};
use hc_predictors::PredictorConfig;
use hc_sim::{ConfigError, ExecContext, SimConfig, SimStats, Simulator};
use hc_trace::{Trace, TraceError, TraceSource};
use serde::{Deserialize, Serialize};

/// The result of running one trace under one policy, with its baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Policy that was evaluated.
    pub policy: String,
    /// Trace name.
    pub trace: String,
    /// Workload category of the trace (Table 2), if any.
    pub category: Option<String>,
    /// Statistics of the helper-cluster run.
    pub stats: SimStats,
    /// Statistics of the monolithic baseline run on the same trace.
    pub baseline: SimStats,
}

impl ExperimentResult {
    /// Speedup over the monolithic baseline (1.0 = same performance).
    pub fn speedup(&self) -> f64 {
        self.stats.speedup_over(&self.baseline)
    }

    /// Performance increase in percent, as the paper's figures plot it.
    pub fn performance_increase_pct(&self) -> f64 {
        (self.speedup() - 1.0) * 100.0
    }

    /// Energy-delay² comparison against the baseline under the default power model.
    pub fn ed2(&self) -> Ed2Comparison {
        self.ed2_with(&PowerModel::default())
    }

    /// Energy-delay² comparison under an explicit power model (scenarios
    /// carry their own [`hc_power::PowerParams`]).
    pub fn ed2_with(&self, model: &PowerModel) -> Ed2Comparison {
        Ed2Comparison::compare(model, &self.baseline, &self.stats)
    }
}

/// Experiment runner: owns the validated helper-cluster and baseline
/// simulators plus the predictor sizing policies are built with.
#[derive(Debug, Clone)]
pub struct Experiment {
    helper_sim: Simulator,
    baseline_sim: Simulator,
    predictors: PredictorConfig,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment::new(SimConfig::paper_baseline())
    }
}

impl Experiment {
    /// Create an experiment from the helper-cluster configuration; the
    /// baseline uses the same parameters with the helper cluster removed,
    /// and policies are built with the paper's predictor sizing.
    ///
    /// Both configurations are validated here, so every later run is
    /// infallible.  Returns the typed [`ConfigError`] describing the first
    /// problem found.
    pub fn try_new(helper_config: SimConfig) -> Result<Experiment, ConfigError> {
        Experiment::try_new_with(helper_config, PredictorConfig::paper_default())
    }

    /// [`Experiment::try_new`] with explicit predictor sizing — every policy
    /// this experiment builds gets its tables from `predictors`.  The
    /// predictor configuration is assumed pre-validated (campaign scenarios
    /// validate it in the owning crate before construction).
    pub fn try_new_with(
        helper_config: SimConfig,
        predictors: PredictorConfig,
    ) -> Result<Experiment, ConfigError> {
        let baseline_config = SimConfig {
            helper_enabled: false,
            ..helper_config.clone()
        };
        Ok(Experiment {
            helper_sim: Simulator::new(helper_config)?,
            baseline_sim: Simulator::new(baseline_config)?,
            predictors,
        })
    }

    /// Like [`Experiment::try_new`], but panics on an invalid configuration.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message if the configuration is
    /// rejected; use [`Experiment::try_new`] to handle it.
    pub fn new(helper_config: SimConfig) -> Experiment {
        match Experiment::try_new(helper_config) {
            Ok(e) => e,
            Err(e) => panic!("invalid experiment configuration: {e}"),
        }
    }

    /// The helper-cluster configuration.
    pub fn helper_config(&self) -> &SimConfig {
        self.helper_sim.config()
    }

    /// The monolithic-baseline configuration (helper cluster removed).
    pub fn baseline_config(&self) -> &SimConfig {
        self.baseline_sim.config()
    }

    /// The validated helper-cluster simulator — the machine policy cells
    /// run on.  Exposed so batch schedulers can drive runs through
    /// [`hc_sim::BatchContext`] instead of the scalar entry points.
    pub fn helper_sim(&self) -> &Simulator {
        &self.helper_sim
    }

    /// The validated monolithic-baseline simulator (helper removed).
    pub fn baseline_sim(&self) -> &Simulator {
        &self.baseline_sim
    }

    /// The predictor sizing policies are built with.
    pub fn predictors(&self) -> &PredictorConfig {
        &self.predictors
    }

    /// Run the monolithic baseline on a trace.
    pub fn run_baseline(&self, trace: &Trace) -> SimStats {
        self.run_baseline_with(&mut ExecContext::new(), trace)
    }

    /// Run the monolithic baseline on a trace inside a reused
    /// [`ExecContext`] (bit-identical to [`Experiment::run_baseline`],
    /// without the per-run allocations).
    pub fn run_baseline_with(&self, ctx: &mut ExecContext, trace: &Trace) -> SimStats {
        let mut policy = PolicyKind::Baseline.build();
        self.baseline_sim.run_with(ctx, trace, policy.as_mut())
    }

    /// Run the monolithic baseline over a streaming [`TraceSource`] inside
    /// a reused [`ExecContext`].  For a source that yields the same µops as
    /// a materialized trace with the same name and length, the stats are
    /// bit-identical to [`Experiment::run_baseline_with`] over that trace.
    pub fn run_baseline_source(
        &self,
        ctx: &mut ExecContext,
        source: &mut dyn TraceSource,
    ) -> Result<SimStats, TraceError> {
        let mut policy = PolicyKind::Baseline.build();
        self.baseline_sim.run_source(ctx, source, policy.as_mut())
    }

    /// [`Experiment::run_policy_warmed_with`] over a streaming
    /// [`TraceSource`]: every pass (warmups included) replays the source
    /// from the top via its `reset`, keeping one policy instance — and so
    /// its predictors — warm across passes.
    pub fn run_policy_warmed_source(
        &self,
        ctx: &mut ExecContext,
        source: &mut dyn TraceSource,
        kind: PolicyKind,
        warmup_runs: usize,
    ) -> Result<SimStats, TraceError> {
        let sim = if kind == PolicyKind::Baseline {
            &self.baseline_sim
        } else {
            &self.helper_sim
        };
        let mut policy = kind.build_with(&self.predictors);
        if kind != PolicyKind::Baseline {
            for _ in 0..warmup_runs {
                sim.run_source(ctx, source, policy.as_mut())?;
            }
        }
        sim.run_source(ctx, source, policy.as_mut())
    }

    /// Run one policy on a trace (no baseline comparison).
    pub fn run_policy(&self, trace: &Trace, kind: PolicyKind) -> SimStats {
        self.run_policy_warmed(trace, kind, 0)
    }

    /// Run one policy on a trace after `warmup_runs` unmeasured priming runs
    /// that keep the same policy instance (and so its predictors) warm.
    pub fn run_policy_warmed(
        &self,
        trace: &Trace,
        kind: PolicyKind,
        warmup_runs: usize,
    ) -> SimStats {
        self.run_policy_warmed_with(&mut ExecContext::new(), trace, kind, warmup_runs)
    }

    /// [`Experiment::run_policy_warmed`] inside a reused [`ExecContext`]:
    /// the warmup runs and the measured run all replay through the same
    /// context.
    pub fn run_policy_warmed_with(
        &self,
        ctx: &mut ExecContext,
        trace: &Trace,
        kind: PolicyKind,
        warmup_runs: usize,
    ) -> SimStats {
        let sim = if kind == PolicyKind::Baseline {
            &self.baseline_sim
        } else {
            &self.helper_sim
        };
        let mut policy = kind.build_with(&self.predictors);
        if kind != PolicyKind::Baseline {
            for _ in 0..warmup_runs {
                sim.run_with(ctx, trace, policy.as_mut());
            }
        }
        sim.run_with(ctx, trace, policy.as_mut())
    }

    /// Run one policy and the baseline on the same trace.
    pub fn run(&self, trace: &Trace, kind: PolicyKind) -> ExperimentResult {
        self.run_many(trace, &[kind])
            .pop()
            .expect("one policy in, one result out")
    }

    /// Run a set of policies against one trace, reusing one baseline run —
    /// the single-trace row of a campaign grid.
    pub fn run_many(&self, trace: &Trace, kinds: &[PolicyKind]) -> Vec<ExperimentResult> {
        crate::campaign::run_grid(self, std::slice::from_ref(trace), kinds, 0, true, None)
            .into_experiment_results()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_trace::SpecBenchmark;

    fn trace() -> Trace {
        SpecBenchmark::Gzip.trace(4_000)
    }

    #[test]
    fn baseline_experiment_has_speedup_one() {
        let e = Experiment::default();
        let r = e.run(&trace(), PolicyKind::Baseline);
        assert!((r.speedup() - 1.0).abs() < 1e-9);
        assert_eq!(r.performance_increase_pct(), 0.0);
    }

    #[test]
    fn policy_runs_retire_the_whole_trace() {
        let e = Experiment::default();
        let r = e.run(&trace(), PolicyKind::P888);
        assert_eq!(r.stats.committed_uops, r.baseline.committed_uops);
        assert_eq!(r.policy, "8_8_8");
    }

    #[test]
    fn run_many_reuses_a_single_baseline() {
        let e = Experiment::default();
        let rs = e.run_many(&trace(), &[PolicyKind::P888, PolicyKind::P888Br]);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].baseline.cycles, rs[1].baseline.cycles);
    }

    #[test]
    fn ed2_comparison_is_computable() {
        let e = Experiment::default();
        let r = e.run(&trace(), PolicyKind::P888);
        let cmp = r.ed2();
        assert!(cmp.baseline_ed2 > 0.0);
        assert!(cmp.candidate_ed2 > 0.0);
    }

    #[test]
    fn invalid_configs_produce_typed_errors() {
        let mut cfg = SimConfig::paper_baseline();
        cfg.rob_entries = 1;
        let err = Experiment::try_new(cfg).unwrap_err();
        assert!(matches!(
            err,
            ConfigError::RobSmallerThanCommitGroup { rob_entries: 1, .. }
        ));
    }

    #[test]
    fn warmup_runs_keep_results_deterministic() {
        let e = Experiment::default();
        let t = trace();
        let a = e.run_policy_warmed(&t, PolicyKind::P888, 1);
        let b = e.run_policy_warmed(&t, PolicyKind::P888, 1);
        assert_eq!(a, b);
        // A warmed predictor must not lose µops.
        assert_eq!(a.committed_uops, 4_000);
    }
}
