//! Running one trace under one policy and comparing against the monolithic
//! baseline — the basic experiment unit behind every figure.

use crate::policy::PolicyKind;
use hc_power::{Ed2Comparison, PowerModel};
use hc_sim::{SimConfig, SimStats, Simulator};
use hc_trace::Trace;
use serde::{Deserialize, Serialize};

/// The result of running one trace under one policy, with its baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Policy that was evaluated.
    pub policy: String,
    /// Trace name.
    pub trace: String,
    /// Statistics of the helper-cluster run.
    pub stats: SimStats,
    /// Statistics of the monolithic baseline run on the same trace.
    pub baseline: SimStats,
}

impl ExperimentResult {
    /// Speedup over the monolithic baseline (1.0 = same performance).
    pub fn speedup(&self) -> f64 {
        self.stats.speedup_over(&self.baseline)
    }

    /// Performance increase in percent, as the paper's figures plot it.
    pub fn performance_increase_pct(&self) -> f64 {
        (self.speedup() - 1.0) * 100.0
    }

    /// Energy-delay² comparison against the baseline under the default power model.
    pub fn ed2(&self) -> Ed2Comparison {
        Ed2Comparison::compare(&PowerModel::default(), &self.baseline, &self.stats)
    }
}

/// Experiment runner: owns the helper-cluster and baseline configurations.
#[derive(Debug, Clone)]
pub struct Experiment {
    helper_config: SimConfig,
    baseline_config: SimConfig,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment::new(SimConfig::paper_baseline())
    }
}

impl Experiment {
    /// Create an experiment from the helper-cluster configuration; the
    /// baseline uses the same parameters with the helper cluster removed.
    pub fn new(helper_config: SimConfig) -> Experiment {
        let baseline_config = SimConfig {
            helper_enabled: false,
            ..helper_config.clone()
        };
        Experiment {
            helper_config,
            baseline_config,
        }
    }

    /// The helper-cluster configuration.
    pub fn helper_config(&self) -> &SimConfig {
        &self.helper_config
    }

    /// Run the monolithic baseline on a trace.
    pub fn run_baseline(&self, trace: &Trace) -> SimStats {
        let sim = Simulator::new(self.baseline_config.clone())
            .expect("baseline configuration is valid by construction");
        let mut policy = PolicyKind::Baseline.build();
        sim.run(trace, policy.as_mut())
    }

    /// Run one policy on a trace (no baseline comparison).
    pub fn run_policy(&self, trace: &Trace, kind: PolicyKind) -> SimStats {
        let config = if kind == PolicyKind::Baseline {
            self.baseline_config.clone()
        } else {
            self.helper_config.clone()
        };
        let sim = Simulator::new(config).expect("configuration is valid by construction");
        let mut policy = kind.build();
        sim.run(trace, policy.as_mut())
    }

    /// Run one policy and the baseline on the same trace.
    pub fn run(&self, trace: &Trace, kind: PolicyKind) -> ExperimentResult {
        let baseline = self.run_baseline(trace);
        let stats = if kind == PolicyKind::Baseline {
            baseline.clone()
        } else {
            self.run_policy(trace, kind)
        };
        ExperimentResult {
            policy: kind.name().to_string(),
            trace: trace.name.clone(),
            stats,
            baseline,
        }
    }

    /// Run a set of policies against one trace, reusing one baseline run.
    pub fn run_many(&self, trace: &Trace, kinds: &[PolicyKind]) -> Vec<ExperimentResult> {
        let baseline = self.run_baseline(trace);
        kinds
            .iter()
            .map(|&kind| {
                let stats = if kind == PolicyKind::Baseline {
                    baseline.clone()
                } else {
                    self.run_policy(trace, kind)
                };
                ExperimentResult {
                    policy: kind.name().to_string(),
                    trace: trace.name.clone(),
                    stats,
                    baseline: baseline.clone(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_trace::SpecBenchmark;

    fn trace() -> Trace {
        SpecBenchmark::Gzip.trace(4_000)
    }

    #[test]
    fn baseline_experiment_has_speedup_one() {
        let e = Experiment::default();
        let r = e.run(&trace(), PolicyKind::Baseline);
        assert!((r.speedup() - 1.0).abs() < 1e-9);
        assert_eq!(r.performance_increase_pct(), 0.0);
    }

    #[test]
    fn policy_runs_retire_the_whole_trace() {
        let e = Experiment::default();
        let r = e.run(&trace(), PolicyKind::P888);
        assert_eq!(r.stats.committed_uops, r.baseline.committed_uops);
        assert_eq!(r.policy, "8_8_8");
    }

    #[test]
    fn run_many_reuses_a_single_baseline() {
        let e = Experiment::default();
        let rs = e.run_many(&trace(), &[PolicyKind::P888, PolicyKind::P888Br]);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].baseline.cycles, rs[1].baseline.cycles);
    }

    #[test]
    fn ed2_comparison_is_computable() {
        let e = Experiment::default();
        let r = e.run(&trace(), PolicyKind::P888);
        let cmp = r.ed2();
        assert!(cmp.baseline_ed2 > 0.0);
        assert!(cmp.candidate_ed2 > 0.0);
    }
}
